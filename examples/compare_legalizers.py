#!/usr/bin/env python3
"""Compare the placement legalizers on a scattered placement.

The CR&P paper's key enabling component is its ILP-based *window*
legalizer, which proposes multiple legalized micro-moves.  This example
contrasts it with the classic full-design legalizers the library also
ships (Tetris and Abacus): scatter a placement, legalize it both ways,
then use the window legalizer to generate candidate moves for the most
expensive cell of a routed design.

Run:  python examples/compare_legalizers.py
"""

from __future__ import annotations

import random

from repro.benchgen.generator import DesignSpec, generate_design
from repro.db import check_legality
from repro.groute import GlobalRouter
from repro.legalizer import WindowLegalizer, abacus_legalize, tetris_legalize


def scattered(seed: int):
    design = generate_design(
        DesignSpec(
            name="scatter",
            num_cells=150,
            num_nets=130,
            utilization=0.7,
            gcells_per_axis=10,
            seed=8,
        )
    )
    rng = random.Random(seed)
    for cell in design.cells.values():
        cell.x = rng.randint(0, design.die.ux - cell.width)
        cell.y = rng.randint(0, design.die.uy - cell.height)
        design.spatial.move(cell.name, cell.bbox())
    return design


def main() -> None:
    for name, legalize in (("tetris", tetris_legalize), ("abacus", abacus_legalize)):
        design = scattered(seed=5)
        displacement = legalize(design)
        report = check_legality(design, check_orient=False)
        print(
            f"{name:<7} total displacement = {displacement:>9} dbu   "
            f"legal(no overlaps) = {not report.overlaps}"
        )

    print("\nwindow legalizer (the paper's Eq. 11) on a routed design:")
    design = generate_design(
        DesignSpec(
            name="windowed",
            num_cells=150,
            num_nets=130,
            utilization=0.8,
            gcells_per_axis=10,
            seed=9,
        )
    )
    router = GlobalRouter(design)
    router.route_all()
    target = max(design.cells, key=router.cell_cost)
    print(f"most expensive cell: {target} (cost {router.cell_cost(target):.1f})")
    legalizer = WindowLegalizer(design, n_sites=20, n_rows=5, max_cells=3)
    for cand in legalizer.run(target):
        x, y, orient = cand.position
        moves = ", ".join(
            f"{n}->({p[0]},{p[1]})" for n, p in cand.conflict_moves.items()
        ) or "none"
        print(
            f"  candidate ({x:>7},{y:>7}) {orient.value:<3} "
            f"displacement={cand.displacement:>9.0f}  conflicts: {moves}"
        )


if __name__ == "__main__":
    main()

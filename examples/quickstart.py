#!/usr/bin/env python3
"""Quickstart: run the full CR&P flow on one synthetic benchmark.

Generates an ISPD-2018-shaped design, runs global routing, one CR&P
iteration, and detailed routing, and prints the quality comparison
against the plain GR+DR baseline — the smallest end-to-end use of the
library's public API.

Run:  python examples/quickstart.py [benchmark]  (default ispd18_test1)
"""

from __future__ import annotations

import sys

from repro.benchgen import make_design
from repro.flow import run_flow


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "ispd18_test1"

    print(f"=== {bench}: baseline (global route + detailed route) ===")
    baseline = run_flow(make_design(bench), mode="baseline")
    print(baseline.summary())

    print(f"\n=== {bench}: with one CR&P iteration in between ===")
    crp = run_flow(make_design(bench), mode="crp", crp_iterations=1)
    print(crp.summary())
    stats = crp.crp.iterations[0]
    print(
        f"CR&P moved {stats.num_moved} cells "
        f"(from {stats.num_critical} critical, "
        f"{stats.num_candidates} candidates), "
        f"rerouted {stats.num_rerouted} nets"
    )

    print("\n=== improvement vs baseline ===")
    improvement = crp.quality.improvement_over(baseline.quality)
    print(f"wirelength: {improvement['wirelength']:+.2f}%")
    print(f"vias:       {improvement['vias']:+.2f}%")
    print(f"DRV delta:  {improvement['drvs']:+d}")


if __name__ == "__main__":
    main()

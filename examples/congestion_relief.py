#!/usr/bin/env python3
"""Congestion relief deep-dive: watch CR&P drain a hot-spot.

Builds a deliberately congested design (macro blockage + dense, highly
local netlist), routes it, then runs CR&P iterations one at a time,
printing the congestion picture after each: total overflow, the worst
GCell utilization, via count, and which cells moved.  This is the
scenario the paper's introduction motivates — placement-level slack is
spent exactly where routing needs it.

Run:  python examples/congestion_relief.py
"""

from __future__ import annotations

import numpy as np

from repro.benchgen.generator import DesignSpec, generate_design
from repro.core import CrpConfig, CrpFramework
from repro.groute import GlobalRouter


def congestion_snapshot(router: GlobalRouter) -> str:
    cmap = router.graph.congestion_map()
    worst = float(cmap.max())
    hot = int((cmap > 0.9).sum())
    return (
        f"overflow={router.total_overflow():7.1f}  "
        f"worst gcell util={worst:5.2f}  gcells>90%={hot:3d}  "
        f"vias={router.total_vias():5d}  wl={router.total_wirelength_dbu()}"
    )


def main() -> None:
    spec = DesignSpec(
        name="hotspot",
        num_cells=400,
        num_nets=420,
        utilization=0.8,
        locality=0.92,          # tight clusters -> local congestion
        num_blockages=2,        # carve routing hot-spots
        gcells_per_axis=16,
        seed=17,
    )
    design = generate_design(spec)
    print(f"design: {design.stats()}")

    router = GlobalRouter(design)
    router.route_all()
    print(f"\nafter global routing : {congestion_snapshot(router)}")

    framework = CrpFramework(design, router, CrpConfig(seed=3))
    for k in range(5):
        stats = framework.run_iteration(k)
        print(
            f"after CR&P iter {k + 1}   : {congestion_snapshot(router)}  "
            f"(moved {stats.num_moved} cells, {stats.runtime['ECC']:.1f}s est.)"
        )

    cmap = router.graph.congestion_map()
    print("\nfinal congestion heat map (utilization, rows = y, top = north):")
    for gy in reversed(range(cmap.shape[1])):
        row = "".join(
            "#" if cmap[gx, gy] > 0.9 else
            "+" if cmap[gx, gy] > 0.7 else
            "." if cmap[gx, gy] > 0.4 else " "
            for gx in range(cmap.shape[0])
        )
        print(f"  |{row}|")


if __name__ == "__main__":
    main()

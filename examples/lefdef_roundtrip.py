#!/usr/bin/env python3
"""Interoperate through LEF/DEF and route-guide files.

Demonstrates the file-level API a downstream user integrating CR&P into
an existing flow would use:

1. dump a synthetic benchmark to ``out/`` as LEF + DEF,
2. re-read those files into a fresh database (as an external tool
   would),
3. globally route, run CR&P, and write the improved placement DEF and
   the route guides a detailed router consumes.

Run:  python examples/lefdef_roundtrip.py [outdir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.benchgen import make_design
from repro.core import CrpConfig, CrpFramework
from repro.groute import GlobalRouter
from repro.lefdef import parse_def, parse_lef, write_def, write_guides, write_lef


def main() -> None:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "out")
    out.mkdir(parents=True, exist_ok=True)

    # 1. Produce the benchmark files.
    original = make_design("ispd18_test2")
    (out / "test2.lef").write_text(write_lef(original.tech))
    (out / "test2.def").write_text(write_def(original))
    print(f"wrote {out}/test2.lef and {out}/test2.def")

    # 2. Read them back, as an external tool would.
    tech = parse_lef((out / "test2.lef").read_text(), name="reparsed")
    design = parse_def((out / "test2.def").read_text(), tech)
    print(f"re-parsed: {design.stats()}")

    # 3. Route, improve, and emit the handoff files.
    router = GlobalRouter(design)
    router.route_all()
    print(f"routed: wl={router.total_wirelength_dbu()} vias={router.total_vias()}")

    framework = CrpFramework(design, router, CrpConfig(seed=1))
    result = framework.run(2)
    print(
        f"CR&P moved {result.total_moved} cells over "
        f"{len(result.iterations)} iterations "
        f"-> wl={router.total_wirelength_dbu()} vias={router.total_vias()}"
    )

    (out / "test2.crp.def").write_text(write_def(design))
    (out / "test2.crp.guide").write_text(write_guides(router.guides(), tech))
    print(f"wrote {out}/test2.crp.def and {out}/test2.crp.guide")


if __name__ == "__main__":
    main()

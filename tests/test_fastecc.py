"""Bit-exact parity suite for the incremental CR&P kernel.

Every optimization behind ``CrpConfig.use_fast_ecc`` must be a pure
speedup: the cached/incremental paths are asserted *equal* — not
approximately equal — to the full-recompute oracles they replace, over
randomized designs, mutation sequences, and executor widths.
"""

from __future__ import annotations

import random

import pytest

from helpers import fresh_small

from repro.core.config import CrpConfig
from repro.core.crp import CrpFramework
from repro.core.estimate import estimate_candidate_cost
from repro.core.candidates import MoveCandidate, generate_candidates
from repro.core.fastecc import EccCache
from repro.core.labeling import label_critical_cells
from repro.groute import GlobalRouter
from repro.groute.costcache import NetCostCache
from repro.guard import GuardPolicy, IterationTransaction
from repro.legalizer import WindowLegalizer
from repro.par import ParallelExecutor


def routed(seed: int = 42, **overrides) -> tuple:
    design = fresh_small(seed=seed, **overrides)
    router = GlobalRouter(design)
    router.route_all(rrr_passes=2)
    return design, router


def snapshot(design, router) -> tuple:
    positions = sorted(
        (name, cell.x, cell.y, str(cell.orient))
        for name, cell in design.cells.items()
    )
    routes = sorted(
        (name, tuple(sorted(map(str, route.edges))))
        for name, route in router.routes.items()
    )
    return positions, routes


# ------------------------------------------------------------ ECC cache


@pytest.mark.parametrize("seed", [3, 42, 99])
def test_ecc_cache_matches_uncached_costs(seed):
    design, router = routed(seed=seed)
    config = CrpConfig()
    framework = CrpFramework(design, router, config)
    critical = label_critical_cells(
        design, router, config, random.Random(seed)
    )
    candidates = generate_candidates(design, critical, config)
    cache = EccCache()
    for cell_candidates in candidates.values():
        for candidate in cell_candidates:
            uncached = estimate_candidate_cost(design, router, candidate)
            cached = estimate_candidate_cost(
                design, router, candidate, cache=cache
            )
            # bit-exact: same terminal walk, same RSMT, same DP op order
            assert cached == uncached
            # and a second query must hit the memo yet stay identical
            again = estimate_candidate_cost(
                design, router, candidate, cache=cache
            )
            assert again == uncached
    assert cache.hits > 0


def test_ecc_cache_include_conflicts_parity():
    design, router = routed(seed=7)
    config = CrpConfig()
    CrpFramework(design, router, config)
    critical = label_critical_cells(design, router, config, random.Random(7))
    candidates = generate_candidates(design, critical, config)
    cache = EccCache()
    for cell_candidates in candidates.values():
        for candidate in cell_candidates:
            assert estimate_candidate_cost(
                design, router, candidate, include_conflicts=True, cache=cache
            ) == estimate_candidate_cost(
                design, router, candidate, include_conflicts=True
            )


# ------------------------------------------------ O(dirty) cost accounting


def full_rescan(design, router) -> float:
    return sum(router._net_cost_fresh(name) for name in design.nets)


@pytest.mark.parametrize("seed", [5, 42])
def test_running_total_tracks_commit_and_rip(seed):
    design, router = routed(seed=seed)
    router.enable_incremental_cost(True)
    assert isinstance(router.cost_cache, NetCostCache)
    rng = random.Random(seed)
    names = sorted(router.routes)
    assert router.total_route_cost() == full_rescan(design, router)
    for _ in range(12):
        name = rng.choice(names)
        action = rng.random()
        if action < 0.4 and name in router.routes:
            router.rip_up(name)
        elif name in design.nets:
            if name in router.routes:
                router.rip_up(name)
            router.route_net(name)
        assert router.total_route_cost() == full_rescan(design, router)
    # rescans must stay sub-linear: untouched nets never re-price
    assert router.cost_cache.hits > 0


def test_running_total_survives_out_of_band_invalidation():
    design, router = routed(seed=11)
    router.enable_incremental_cost(True)
    before = router.total_route_cost()
    router.invalidate_cost_fields()  # drops every cached value
    assert router.total_route_cost() == before == full_rescan(design, router)


def test_running_total_survives_rollback():
    design, router = routed(seed=13)
    router.enable_incremental_cost(True)
    baseline = router.total_route_cost()
    positions0, routes0 = snapshot(design, router)
    moved = next(iter(design.cells))
    cell0 = design.cells[moved]
    chosen = {
        moved: MoveCandidate(
            cell=moved,
            position=(cell0.x, cell0.y, cell0.orient),
            displacement=1.0,
        )
    }
    txn = IterationTransaction.capture(design, router, chosen)
    # mutate: move a cell and reroute one of its nets
    cell = design.cells[moved]
    target = sorted(router.routes)[0]
    design.move_cell(moved, cell.x, cell.y, cell.orient)
    router.rip_up(target)
    router.route_net(target)
    txn.rollback()
    assert snapshot(design, router) == (positions0, routes0)
    assert router.total_route_cost() == baseline == full_rescan(design, router)


def test_disabling_incremental_cost_detaches_cache():
    design, router = routed(seed=17)
    router.enable_incremental_cost(True)
    assert router.cost_cache is not None
    router.enable_incremental_cost(False)
    assert router.cost_cache is None
    assert router.net_cost(sorted(router.routes)[0]) == router._net_cost_fresh(
        sorted(router.routes)[0]
    )


# -------------------------------------------------------- window-ILP memo


@pytest.mark.parametrize("seed", [3, 42, 77])
def test_window_legalizer_fast_matches_slow(seed):
    design, router = routed(seed=seed)
    config = CrpConfig()
    CrpFramework(design, router, config)
    critical = label_critical_cells(
        design, router, config, random.Random(seed)
    )

    def legalize(fast: bool):
        legalizer = WindowLegalizer(
            design,
            n_sites=config.n_sites,
            n_rows=config.n_rows,
            max_cells=config.max_cells,
            max_targets=config.max_targets,
            backend=config.ilp_backend,
            ilp_budget_s=config.ilp_budget_s,
            fast=fast,
        )
        outcome = {name: legalizer.run(name) for name in critical}
        return outcome, legalizer

    fast_result, fast_legalizer = legalize(True)
    slow_result, _ = legalize(False)
    assert {
        name: [
            (c.position, dict(c.conflict_moves), c.displacement)
            for c in candidates
        ]
        for name, candidates in fast_result.items()
    } == {
        name: [
            (c.position, dict(c.conflict_moves), c.displacement)
            for c in candidates
        ]
        for name, candidates in slow_result.items()
    }
    # the memo must answer repeat windows without re-solving
    repeat, legalizer2 = legalize(True)
    assert legalizer2.memo_misses == fast_legalizer.memo_misses


def test_window_memo_hits_are_deterministic():
    design, router = routed(seed=21)
    config = CrpConfig()
    CrpFramework(design, router, config)
    critical = label_critical_cells(design, router, config, random.Random(21))
    legalizer = WindowLegalizer(
        design,
        n_sites=config.n_sites,
        n_rows=config.n_rows,
        max_cells=config.max_cells,
        max_targets=config.max_targets,
        fast=True,
    )
    for name in critical:
        first = [
            (c.position, dict(c.conflict_moves), c.displacement)
            for c in legalizer.run(name)
        ]
        second = [
            (c.position, dict(c.conflict_moves), c.displacement)
            for c in legalizer.run(name)
        ]
        assert first == second
    assert legalizer.memo_hits > 0


# --------------------------------------------------- end-to-end iteration


def run_iterations(seed: int, fast: bool, workers: int = 0, k: int = 2):
    design = fresh_small(seed=seed)
    router = GlobalRouter(design)
    executor = None
    if workers:
        executor = ParallelExecutor(workers, chunk=1).bind(router)
    try:
        router.route_all(rrr_passes=2)
        framework = CrpFramework(
            design, router, CrpConfig(use_fast_ecc=fast)
        )
        framework.run(iterations=k)
        total = framework._total_route_cost()
    finally:
        if executor is not None:
            executor.close()
    return snapshot(design, router), total


@pytest.mark.parametrize("seed", [9, 42])
def test_framework_fast_slow_parity(seed):
    assert run_iterations(seed, fast=True) == run_iterations(seed, fast=False)


def test_framework_parity_across_workers():
    reference = run_iterations(42, fast=False)
    for fast in (True, False):
        for workers in (1, 2):
            assert run_iterations(42, fast=fast, workers=workers) == reference


def test_converged_parity_and_single_scan_per_pass():
    def converge(fast: bool):
        design = fresh_small(seed=31)
        router = GlobalRouter(design)
        router.route_all(rrr_passes=2)
        framework = CrpFramework(
            design, router, CrpConfig(use_fast_ecc=fast)
        )
        result = framework.run_until_converged(max_iterations=4)
        return snapshot(design, router), len(result.iterations)

    assert converge(True) == converge(False)


def test_guarded_rollback_keeps_parity():
    def run(fast: bool):
        design = fresh_small(seed=55)
        router = GlobalRouter(design)
        router.route_all(rrr_passes=2)
        framework = CrpFramework(
            design,
            router,
            CrpConfig(use_fast_ecc=fast),
            guard=GuardPolicy(cost_tolerance=-1.0),  # force rollbacks
        )
        result = framework.run(iterations=2)
        return snapshot(design, router), [
            stats.rolled_back for stats in result.iterations
        ]

    assert run(True) == run(False)

"""Tests for ``repro.ckpt`` and the self-healing ``repro.par`` pool.

The contract under test, both halves of the durability story:

* checkpoints are atomic, checksummed, versioned; corruption or
  staleness is *skipped and reported*, never fatal, and a resumed run
  reproduces the uninterrupted run byte-for-byte (``routes_digest`` /
  ``placement_digest``);
* a worker that dies or hangs is respawned (mutation-log replay) or
  shrunk out of the rotation, and either way parallel results stay
  bit-identical to the serial baseline.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from helpers import fresh_small
from repro.ckpt import (
    CheckpointError,
    CheckpointStore,
    FlowCheckpointer,
    atomic_write,
    capture_state,
    positions_digest,
    restore_design,
    restore_router,
    routes_digest,
    run_fingerprint,
)
from repro.ckpt.store import FORMAT_VERSION, MAGIC
from repro.core import CrpConfig
from repro.flow import run_flow
from repro.groute import GlobalRouter
from repro.guard import FaultPlan, use_faults
from repro.obs import MetricsRegistry, use_metrics
from repro.par import ParallelExecutor

SRC = str(Path(__file__).resolve().parent.parent / "src")
TESTS = str(Path(__file__).resolve().parent)


def routed_router(seed: int = 11):
    design = fresh_small(seed=seed)
    router = GlobalRouter(design)
    router.route_all()
    return design, router


def flow_signature(result):
    return (
        result.routes_digest,
        result.placement_digest,
        None
        if result.quality is None
        else (
            result.quality.wirelength_dbu,
            result.quality.vias,
            result.quality.drvs,
            result.quality.score,
        ),
    )


# ------------------------------------------------------------ atomic_write


class TestAtomicWrite:
    def test_round_trip_text_and_bytes(self, tmp_path):
        p = atomic_write(tmp_path / "a.json", '{"x": 1}\n')
        assert p.read_text() == '{"x": 1}\n'
        p = atomic_write(tmp_path / "b.bin", b"\x00\x01")
        assert p.read_bytes() == b"\x00\x01"

    def test_overwrites_and_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "report.json"
        atomic_write(target, "old")
        atomic_write(target, "new")
        assert target.read_text() == "new"
        assert [f.name for f in tmp_path.iterdir()] == ["report.json"]

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "er" / "out.json"
        atomic_write(target, "x")
        assert target.read_text() == "x"


# ----------------------------------------------------------------- store


class TestCheckpointStore:
    def make_state(self, seed: int = 11) -> tuple[dict, dict]:
        design, router = routed_router(seed)
        state = capture_state(design, router, stage="GR", iteration=0)
        meta = {"stage": "GR", "iteration": 0, "fingerprint": {"k": 1}}
        return meta, state

    def test_save_load_round_trip(self, tmp_path):
        meta, state = self.make_state()
        store = CheckpointStore(tmp_path)
        path = store.save(meta, state)
        assert path.name == "ckpt-0000-GR0.ckpt"
        got_meta, got_state = store.load(path)
        assert got_meta["stage"] == "GR"
        assert got_meta["fingerprint"] == {"k": 1}
        assert got_state["routes"] == state["routes"]
        assert got_state["positions"] == state["positions"]

    def test_paths_are_sequence_ordered(self, tmp_path):
        meta, state = self.make_state()
        store = CheckpointStore(tmp_path)
        for i in range(3):
            store.save({**meta, "stage": "CRP", "iteration": i}, state)
        names = [p.name for p in store.paths()]
        assert names == sorted(names)
        assert len(names) == 3

    def test_checksum_corruption_is_rejected(self, tmp_path):
        meta, state = self.make_state()
        store = CheckpointStore(tmp_path)
        path = store.save(meta, state)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            store.load(path)

    def test_version_mismatch_is_rejected(self, tmp_path):
        meta, state = self.make_state()
        store = CheckpointStore(tmp_path)
        path = store.save(meta, state)
        raw = path.read_bytes()
        header_len = int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 8], "big")
        header = json.loads(raw[len(MAGIC) + 8 : len(MAGIC) + 8 + header_len])
        header["format"] = FORMAT_VERSION + 1
        encoded = json.dumps(header, sort_keys=True).encode()
        path.write_bytes(
            MAGIC
            + len(encoded).to_bytes(8, "big")
            + encoded
            + raw[len(MAGIC) + 8 + header_len :]
        )
        with pytest.raises(CheckpointError, match="format"):
            store.load(path)

    def test_truncated_and_garbage_files_are_rejected(self, tmp_path):
        meta, state = self.make_state()
        store = CheckpointStore(tmp_path)
        path = store.save(meta, state)
        path.write_bytes(path.read_bytes()[: len(MAGIC) + 4])
        with pytest.raises(CheckpointError):
            store.load(path)
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError):
            store.load(path)

    def test_load_latest_skips_corrupt_and_reports(self, tmp_path):
        meta, state = self.make_state()
        store = CheckpointStore(tmp_path)
        good = store.save({**meta, "iteration": 0}, state)
        bad = store.save({**meta, "iteration": 1}, state)
        blob = bytearray(bad.read_bytes())
        blob[-1] ^= 0xFF
        bad.write_bytes(bytes(blob))
        got_meta, got_state, reports = store.load_latest({"k": 1})
        assert got_state is not None
        assert got_meta["iteration"] == 0  # newest valid one wins
        assert [r.stage for r in reports] == ["ckpt.load"]
        assert "CheckpointError" in reports[0].error_type

    def test_load_latest_skips_stale_fingerprint(self, tmp_path):
        meta, state = self.make_state()
        store = CheckpointStore(tmp_path)
        store.save(meta, state)
        got_meta, got_state, reports = store.load_latest({"k": 2})
        assert got_state is None and got_meta is None
        assert reports and reports[0].error_type == "StaleCheckpoint"


# ------------------------------------------------------------ fingerprint


class TestFingerprint:
    def test_workers_and_checkpoint_dir_are_excluded(self):
        a = run_fingerprint("d", "crp", CrpConfig(seed=5))
        b = run_fingerprint(
            "d", "crp", CrpConfig(seed=5, workers=4, checkpoint_dir="/x")
        )
        assert a == b

    def test_result_relevant_knobs_are_included(self):
        a = run_fingerprint("d", "crp", CrpConfig(seed=5))
        assert a != run_fingerprint("d", "crp", CrpConfig(seed=6))
        assert a != run_fingerprint("d", "baseline", CrpConfig(seed=5))
        assert a != run_fingerprint("e", "crp", CrpConfig(seed=5))


# ------------------------------------------------------- state round trip


class TestStateRestore:
    def test_restore_reproduces_router_bit_for_bit(self):
        design, router = routed_router()
        state = capture_state(design, router, stage="GR", iteration=0)
        design2 = fresh_small(seed=11)
        restore_design(design2, state)
        router2 = restore_router(design2, state)
        assert routes_digest(router2) == routes_digest(router)
        assert positions_digest(design2) == positions_digest(design)
        for a, b in zip(router.graph.wire_usage, router2.graph.wire_usage):
            assert (a == b).all()
        for a, b in zip(router.graph.via_usage, router2.graph.via_usage):
            assert (a == b).all()

    def test_restore_design_rejects_unknown_cells(self):
        design, router = routed_router()
        state = capture_state(design, router, stage="GR", iteration=0)
        state["positions"]["__no_such_cell__"] = (0, 0, "N")
        with pytest.raises(ValueError, match="__no_such_cell__"):
            restore_design(fresh_small(seed=11), state)


# --------------------------------------------------------- flow + faults


class TestFlowCheckpointing:
    def run_crp(self, tmp_path=None, resume=False, k=2, **kwargs):
        return run_flow(
            fresh_small(seed=11),
            mode="crp",
            crp_iterations=k,
            config=CrpConfig(seed=5),
            checkpoint_dir=None if tmp_path is None else str(tmp_path),
            resume=resume,
            **kwargs,
        )

    def test_boundary_checkpoints_are_written(self, tmp_path):
        self.run_crp(tmp_path)
        names = [p.name for p in CheckpointStore(tmp_path).paths()]
        assert names == [
            "ckpt-0000-GR0.ckpt",
            "ckpt-0001-CRP1.ckpt",
            "ckpt-0002-CRP2.ckpt",
        ]

    def test_resume_from_intermediate_iteration_is_byte_identical(
        self, tmp_path
    ):
        ref = self.run_crp(tmp_path, k=3)
        store = CheckpointStore(tmp_path)
        for path in store.paths()[2:]:  # drop CRP2, CRP3: resume at CRP1
            path.unlink()
        resumed = self.run_crp(tmp_path, resume=True, k=3)
        assert resumed.resumed_from == "CRP:1"
        assert flow_signature(resumed) == flow_signature(ref)
        assert resumed.crp is not None
        assert len(resumed.crp.iterations) == 3  # restored + redone

    def test_resume_without_directory_raises(self):
        with pytest.raises(ValueError, match="checkpoint"):
            self.run_crp(None, resume=True)

    def test_write_fault_degrades_to_uncheckpointed_run(self, tmp_path):
        ref = self.run_crp()
        reg = MetricsRegistry()
        plan = FaultPlan().fail("ckpt.write", times=-1)
        with use_metrics(reg), use_faults(plan):
            result = self.run_crp(tmp_path)
        assert plan.fired("ckpt.write") >= 3
        assert not CheckpointStore(tmp_path).paths()
        assert not result.failed
        assert result.ckpt_failures
        assert all(r.stage == "ckpt.write" for r in result.ckpt_failures)
        assert flow_signature(result) == flow_signature(ref)
        assert reg.raw()["counters"]["ckpt.write_failures"] >= 3

    def test_load_fault_degrades_to_cold_start(self, tmp_path):
        ref = self.run_crp(tmp_path)
        plan = FaultPlan().fail("ckpt.load", times=-1)
        with use_faults(plan):
            result = self.run_crp(tmp_path, resume=True)
        assert plan.fired("ckpt.load") >= 1
        assert result.resumed_from is None  # every load failed -> cold
        assert not result.failed
        assert result.ckpt_failures
        assert flow_signature(result) == flow_signature(ref)


class TestSigkillResume:
    CHILD = textwrap.dedent(
        """
        import os, signal, sys
        sys.path.insert(0, {src!r})
        sys.path.insert(0, {tests!r})
        from helpers import fresh_small
        from repro.core import CrpConfig
        from repro.flow import run_flow
        from repro.guard import FaultPlan, install_faults

        class KillSelf(Exception):
            def __init__(self, *args):
                os.kill(os.getpid(), signal.SIGKILL)

        # First crp.select call (iteration 1) passes through untouched
        # (a forced None is ignored by select_moves); the second one —
        # mid-iteration 2, after the CRP:1 boundary checkpoint landed —
        # SIGKILLs the process: no atexit, no flushing, no mercy.
        plan = FaultPlan()
        plan.force("crp.select", None, times=1)
        plan.fail("crp.select", KillSelf, times=1)
        install_faults(plan)
        run_flow(
            fresh_small(seed=11),
            mode="crp",
            crp_iterations=3,
            config=CrpConfig(seed=5),
            checkpoint_dir={ckpt_dir!r},
        )
        """
    )

    def test_resume_after_sigkill_matches_uninterrupted_run(self, tmp_path):
        ckpt_dir = tmp_path / "ckpt"
        child = subprocess.run(
            [sys.executable, "-c", self.CHILD.format(
                src=SRC, tests=TESTS, ckpt_dir=str(ckpt_dir)
            )],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr
        names = [p.name for p in CheckpointStore(ckpt_dir).paths()]
        assert names == ["ckpt-0000-GR0.ckpt", "ckpt-0001-CRP1.ckpt"]

        resumed = run_flow(
            fresh_small(seed=11),
            mode="crp",
            crp_iterations=3,
            config=CrpConfig(seed=5),
            checkpoint_dir=str(ckpt_dir),
            resume=True,
        )
        assert resumed.resumed_from == "CRP:1"

        ref = run_flow(
            fresh_small(seed=11),
            mode="crp",
            crp_iterations=3,
            config=CrpConfig(seed=5),
        )
        assert flow_signature(resumed) == flow_signature(ref)


# ------------------------------------------------------- pool supervision


def reference_routes(router, names):
    import repro.par.worker as parworker

    return {n: parworker.compute_pattern_route(router, n) for n in names}


class TestPoolSupervision:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_death_respawns_with_replay_parity(self, workers):
        serial_design, serial_router = routed_router()
        from repro.core import CrpFramework

        CrpFramework(serial_design, serial_router, CrpConfig(seed=3)).run(2)
        ref = (
            routes_digest(serial_router),
            positions_digest(serial_design),
        )

        reg = MetricsRegistry()
        with use_metrics(reg):
            design, router = fresh_small(seed=11), None
            router = GlobalRouter(design)
            executor = ParallelExecutor(
                workers=workers, chunk=1, poll_s=0.2, respawn_backoff_s=0.01
            ).bind(router)
            router.route_all()
            assert executor._started
            os.kill(executor._procs[0].pid, signal.SIGKILL)
            time.sleep(0.3)
            CrpFramework(design, router, CrpConfig(seed=3)).run(2)
            got = (routes_digest(router), positions_digest(design))
            executor.close()
        assert got == ref
        assert reg.raw()["counters"]["par.respawns"] >= 1

    def test_hung_worker_is_detected_and_tasks_requeued(self):
        design, router = routed_router()
        names = sorted(design.nets)[:8]
        reg = MetricsRegistry()
        with use_metrics(reg):
            executor = ParallelExecutor(
                workers=2,
                chunk=1,
                poll_s=0.2,
                hang_timeout_s=1.0,
                respawn_backoff_s=0.01,
            ).bind(router)
            router.route_all()
            assert executor._started
            ref = reference_routes(router, names)
            # SIGSTOP freezes the heartbeat thread too: to the
            # supervisor a stopped worker is indistinguishable from a
            # deadlocked one, which is exactly the point.
            os.kill(executor._procs[0].pid, signal.SIGSTOP)
            got = executor.run_route_batch(names)
            executor.close()
        counters = reg.raw()["counters"]
        assert got == ref
        assert counters["par.hung_workers"] >= 1
        assert counters["par.respawns"] >= 1
        assert counters["par.retries"] >= 1

    def test_injected_heartbeat_fault_forces_respawn(self):
        design, router = routed_router()
        names = sorted(design.nets)[:6]
        reg = MetricsRegistry()
        plan = FaultPlan().force("par.heartbeat", 0, times=1)
        with use_metrics(reg), use_faults(plan):
            executor = ParallelExecutor(
                workers=2, chunk=1, poll_s=0.2, respawn_backoff_s=0.01
            ).bind(router)
            router.route_all()
            assert executor._started
            deadline = time.monotonic() + 10.0
            while plan.fired("par.heartbeat") == 0:
                assert time.monotonic() < deadline, "supervisor never scanned"
                time.sleep(0.05)
            ref = reference_routes(router, names)
            got = executor.run_route_batch(names)
            executor.close()
        assert got == ref
        assert plan.fired("par.heartbeat") == 1
        assert reg.raw()["counters"]["par.respawns"] >= 1

    def test_exhausted_respawn_budget_shrinks_pool(self):
        design, router = routed_router()
        names = sorted(design.nets)[:6]
        reg = MetricsRegistry()
        with use_metrics(reg):
            executor = ParallelExecutor(
                workers=2,
                chunk=1,
                poll_s=0.2,
                max_respawns=0,
                respawn_backoff_s=0.01,
            ).bind(router)
            router.route_all()
            assert executor._started
            ref = reference_routes(router, names)
            os.kill(executor._procs[0].pid, signal.SIGKILL)
            time.sleep(0.3)
            got = executor.run_route_batch(names)
            assert executor._started  # pool survives on the last worker
            assert executor._live_workers() == [1]
            executor.close()
        assert got == ref
        assert reg.raw()["counters"]["par.pool_shrinks"] >= 1

    ORPHAN_CHILD = textwrap.dedent(
        """
        import os, signal, sys
        sys.path.insert(0, {src!r})
        sys.path.insert(0, {tests!r})
        from helpers import fresh_small
        from repro.groute import GlobalRouter
        from repro.par import ParallelExecutor

        design = fresh_small(seed=11)
        router = GlobalRouter(design)
        executor = ParallelExecutor(workers=2, chunk=1).bind(router)
        router.route_all()
        assert executor._started
        print("POOL-UP", flush=True)
        os.kill(os.getpid(), signal.SIGKILL)
        """
    )

    def test_workers_self_exit_when_parent_dies_hard(self):
        # capture_output only returns once every inherited pipe fd is
        # closed — if the orphaned workers lingered on task_queue.get()
        # they would hold stdout/stderr open and this run would hang
        # until the timeout.  The heartbeat thread's getppid() watchdog
        # is what makes them exit.
        child = subprocess.run(
            [sys.executable, "-c", self.ORPHAN_CHILD.format(
                src=SRC, tests=TESTS
            )],
            capture_output=True, text=True, timeout=120,
        )
        assert child.returncode == -signal.SIGKILL
        assert "POOL-UP" in child.stdout

    def test_close_reaps_stopped_workers(self):
        design, router = routed_router()
        executor = ParallelExecutor(workers=2, chunk=1, poll_s=0.2).bind(router)
        router.route_all()
        assert executor._started
        procs = list(executor._procs)
        os.kill(procs[0].pid, signal.SIGSTOP)  # immune to cooperative STOP
        executor.close()
        for proc in procs:
            assert not proc.is_alive()

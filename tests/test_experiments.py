"""Tests for the programmatic experiments API and convergence mode."""

import pytest

from repro.groute import GlobalRouter
from repro.core import CrpConfig, CrpFramework

from helpers import fresh_small


def test_run_until_converged_stops():
    design = fresh_small(seed=3)
    router = GlobalRouter(design)
    router.route_all()
    framework = CrpFramework(design, router, CrpConfig(seed=1, max_targets=3))
    result = framework.run_until_converged(max_iterations=6, min_gain=0.01, patience=1)
    assert 1 <= len(result.iterations) <= 6


def test_run_until_converged_does_not_regress():
    design = fresh_small(seed=3)
    router = GlobalRouter(design)
    router.route_all()
    before = sum(router.net_cost(n) for n in design.nets)
    framework = CrpFramework(design, router, CrpConfig(seed=1, max_targets=3))
    framework.run_until_converged(max_iterations=4, patience=1)
    after = sum(router.net_cost(n) for n in design.nets)
    assert after <= before * 1.001


def test_table3_row_api():
    # Use the smallest suite design to keep this an actual unit test.
    from repro.flow import fig2_runtimes, fig3_breakdown, table3_row

    row = table3_row("ispd18_test1", k10=2)
    assert row.baseline.quality is not None
    imps = row.improvements()
    assert set(imps) == {"fontana", "crp_k1", "crp_k10"}
    for values in imps.values():
        if values is not None:
            assert {"wirelength", "vias", "drvs", "score"} <= set(values)
    runtimes = fig2_runtimes(row)
    assert runtimes.seconds["baseline"] > 0
    breakdown = fig3_breakdown(row)
    assert breakdown["ECC"] >= 0
    assert sum(breakdown.values()) == pytest.approx(100.0, abs=0.1)

"""Unit tests for the visualization helpers."""

from repro.groute import GlobalRouter
from repro.viz import (
    congestion_heatmap,
    layer_usage_table,
    placement_map,
    svg_die_plot,
)

from helpers import fresh_small


def _routed():
    design = fresh_small()
    router = GlobalRouter(design)
    router.route_all()
    return design, router


def test_congestion_heatmap_shape():
    design, router = _routed()
    art = congestion_heatmap(router)
    lines = art.splitlines()
    assert lines[-1].startswith("legend")
    body = lines[:-1]
    assert len(body) == router.grid.ny
    widths = {len(line) for line in body}
    assert widths == {router.grid.nx + 2}  # content + two border pipes
    assert all(line.startswith("|") and line.endswith("|") for line in body)


def test_layer_usage_table_lists_all_layers():
    design, router = _routed()
    table = layer_usage_table(router)
    for layer in design.tech.layers:
        assert layer.name in table
    # Used wire exists somewhere after routing.
    assert any(
        float(line.split()[2]) > 0
        for line in table.splitlines()[1:]
    )


def test_placement_map_marks_blockages():
    from repro.db import Blockage
    from repro.geom import Rect

    design, _ = _routed()
    design.add_blockage(Blockage(-1, Rect(0, 0, design.die.ux // 2, design.die.uy // 2)))
    art = placement_map(design, width=32)
    assert "X" in art
    lines = art.splitlines()
    assert all(len(line) == 34 for line in lines)


def test_svg_die_plot_well_formed():
    design, router = _routed()
    nets = list(design.nets)[:3]
    svg = svg_die_plot(design, router, nets=nets)
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert svg.count("<rect") >= len(design.cells)
    assert "<line" in svg  # routed nets drawn


def test_svg_without_router():
    design, _ = _routed()
    svg = svg_die_plot(design)
    assert "<line" not in svg
    assert svg.count("<rect") >= len(design.cells)

"""Tests for ``repro.obs``: tracer, metrics, exporters, flow wiring."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    NOOP_METRICS,
    NOOP_TRACER,
    Span,
    Tracer,
    bench_summary,
    get_metrics,
    get_tracer,
    observe,
    span_from_dict,
    span_to_dict,
    traced,
    use_tracer,
)
from repro.obs.render import render_metrics, render_tree


# ------------------------------------------------------------------ tracer


def test_nested_span_timing_correctness():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner.a") as a:
            time.sleep(0.02)
        with tracer.span("inner.b") as b:
            time.sleep(0.01)
    assert tracer.roots == [outer]
    assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
    assert a.wall_s >= 0.02
    assert b.wall_s >= 0.01
    # The parent covers its children (plus its own overhead).
    assert outer.wall_s >= a.wall_s + b.wall_s
    assert outer.self_wall_s == pytest.approx(
        outer.wall_s - a.wall_s - b.wall_s
    )
    assert outer.total("inner.a") == a.wall_s
    assert outer.find("inner.b") is b
    assert outer.child_walls() == {"inner.a": a.wall_s, "inner.b": b.wall_s}


def test_span_stack_unwinds_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    assert tracer.current() is None
    assert len(tracer.roots) == 1
    assert tracer.roots[0].children[0].name == "inner"


def test_traced_decorator_uses_ambient_tracer():
    @traced("layer.event")
    def work():
        return 7

    tracer = Tracer()
    with use_tracer(tracer):
        assert work() == 7
    assert work() == 7  # noop ambient afterwards: no new roots
    assert [s.name for s in tracer.roots] == ["layer.event"]


def test_tracer_threads_build_independent_trees():
    tracer = Tracer()
    errors: list[Exception] = []

    def worker(tag: str) -> None:
        try:
            for _ in range(50):
                with tracer.span(f"thread.{tag}"):
                    with tracer.span("thread.child"):
                        pass
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(str(i),)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(tracer.roots) == 4 * 50
    assert all(len(root.children) == 1 for root in tracer.roots)


def test_global_default_is_noop():
    assert get_tracer() is NOOP_TRACER
    assert not get_tracer().recording
    assert get_metrics() is NOOP_METRICS
    assert not get_metrics().recording


def test_noop_mode_overhead_is_tiny():
    @traced("noop.call")
    def instrumented():
        return 1

    # Warm up, then time 20k instrumented calls through the no-op
    # tracer; budget 10 microseconds per call (the real cost is well
    # under 2 us — the slack absorbs CI noise).
    for _ in range(100):
        instrumented()
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        instrumented()
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 10e-6, f"no-op span cost {per_call * 1e6:.2f} us/call"


# ----------------------------------------------------------------- metrics


def test_metrics_registry_thread_safety():
    registry = MetricsRegistry()
    n_threads, n_ops = 8, 1000

    def worker() -> None:
        for i in range(n_ops):
            registry.count("c.hits")
            registry.observe("h.values", float(i))
            registry.gauge("g.last", float(i))

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = registry.snapshot()
    assert snap["counters"]["c.hits"] == n_threads * n_ops
    hist = snap["histograms"]["h.values"]
    assert hist["count"] == n_threads * n_ops
    assert hist["min"] == 0.0
    assert hist["max"] == float(n_ops - 1)
    assert snap["gauges"]["g.last"] == float(n_ops - 1)


def test_histogram_percentiles():
    registry = MetricsRegistry()
    for v in range(1, 101):
        registry.observe("h", float(v))
    hist = registry.snapshot()["histograms"]["h"]
    assert hist["count"] == 100
    assert hist["mean"] == pytest.approx(50.5)
    assert 45 <= hist["p50"] <= 55
    assert 90 <= hist["p95"] <= 100
    assert hist["max"] == 100.0


def test_histogram_reservoir_keeps_exact_aggregates():
    from repro.obs.metrics import RESERVOIR_SIZE

    registry = MetricsRegistry()
    n = RESERVOIR_SIZE + 500
    for v in range(n):
        registry.observe("h", float(v))
    hist = registry.snapshot()["histograms"]["h"]
    assert hist["count"] == n
    assert hist["sum"] == pytest.approx(sum(range(n)))
    assert hist["max"] == float(n - 1)


# --------------------------------------------------------------- exporters


def test_json_exporter_round_trip():
    tracer = Tracer()
    with tracer.span("root", design="d1") as root:
        with tracer.span("child.a", k=1):
            pass
        with tracer.span("child.b"):
            with tracer.span("grand"):
                pass
    # Through dicts and an actual JSON string.
    reloaded = span_from_dict(json.loads(json.dumps(span_to_dict(root))))
    for original, copy in zip(root.walk(), reloaded.walk()):
        assert original.name == copy.name
        assert original.meta == copy.meta
        assert copy.wall_s == pytest.approx(original.wall_s)
        assert copy.cpu_s == pytest.approx(original.cpu_s)
        assert [c.name for c in original.children] == [
            c.name for c in copy.children
        ]


def test_bench_summary_flattens_and_merges_siblings():
    root = Span(name="root", wall_s=2.0)
    root.children = [
        Span(name="stage", wall_s=0.5),
        Span(name="stage", wall_s=0.25),
    ]
    flat = bench_summary(root)
    assert flat["root"] == pytest.approx(2.0)
    assert flat["root/stage"] == pytest.approx(0.75)


def test_render_tree_and_metrics_smoke():
    tracer = Tracer()
    with tracer.span("root") as root:
        for _ in range(3):
            with tracer.span("leaf"):
                pass
    tree = render_tree(root)
    assert "root" in tree and "leaf x3" in tree
    registry = MetricsRegistry()
    registry.count("a.b", 5)
    registry.observe("a.h", 1.0)
    registry.gauge("a.g", 2.0)
    text = render_metrics(registry.snapshot())
    assert "a.b" in text and "a.h" in text and "a.g" in text
    assert render_metrics(NOOP_METRICS.snapshot()) == "(no metrics recorded)"


# ------------------------------------------------------------- flow wiring


def test_run_flow_trace_backs_runtime_dict():
    from repro.flow import run_flow

    from helpers import fresh_small

    result = run_flow(fresh_small(), mode="crp", crp_iterations=1)
    assert result.trace is not None
    assert result.trace.name == "flow.run"
    stage_walls = result.trace.child_walls()
    assert result.runtime["GR"] == stage_walls["flow.GR"]
    assert result.runtime["CRP"] == stage_walls["flow.CRP"]
    assert result.runtime["DR"] == stage_walls["flow.DR"]
    # CR&P step spans are children of flow.CRP, one tree per iteration.
    crp_span = result.trace.find("flow.CRP")
    assert crp_span is not None
    breakdown = result.crp.runtime_breakdown()
    for step in ("label", "GCP", "ECC", "ILP", "UD"):
        assert breakdown[step] == pytest.approx(
            crp_span.total(f"crp.{step}")
        )
    # Metrics snapshot rode along on the result.
    assert result.metrics is not None
    assert result.metrics["counters"]["groute.nets_routed"] > 0


def test_run_flow_nests_under_outer_observation():
    from repro.flow import run_flow

    from helpers import fresh_small

    with observe() as obs:
        result = run_flow(fresh_small(), mode="baseline", skip_detailed=True)
    assert [s.name for s in obs.tracer.roots] == ["flow.run"]
    assert result.trace is obs.tracer.roots[0]
    assert obs.metrics.counter("groute.nets_routed") > 0


def test_flow_summary_without_quality_reports_gr_stats():
    from repro.flow import run_flow

    from helpers import fresh_small

    result = run_flow(fresh_small(), mode="baseline", skip_detailed=True)
    line = result.summary()
    assert "None" not in line
    assert f"gr_wl={result.gr_wirelength_dbu}" in line
    assert f"gr_vias={result.gr_vias}" in line


def test_runtime_breakdown_pct_rejects_missing_step_spans():
    from repro.core import CrpResult, IterationStats
    from repro.flow import run_flow, runtime_breakdown_pct

    from helpers import fresh_small

    result = run_flow(fresh_small(), mode="baseline", skip_detailed=True)
    broken = CrpResult()
    broken.iterations.append(
        IterationStats(iteration=0, runtime={"GCP": 1.0, "ECC": 1.0})
    )
    result.crp = broken
    with pytest.raises(KeyError, match="UD"):
        runtime_breakdown_pct(result)


def test_crp_iteration_records_runtime_without_global_tracing():
    """run_iteration standalone (noop ambient) still fills its runtimes."""
    from repro.core import CrpConfig, CrpFramework
    from repro.groute import GlobalRouter

    from helpers import fresh_small

    design = fresh_small()
    router = GlobalRouter(design)
    router.route_all()
    assert not get_tracer().recording
    stats = CrpFramework(design, router, CrpConfig(seed=0)).run_iteration(0)
    assert set(stats.runtime) == {"label", "GCP", "ECC", "ILP", "UD"}
    assert all(v >= 0.0 for v in stats.runtime.values())


# --------------------------------------------------------------------- CLI


def test_cli_profile_smoke(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_obs.json"
    assert main(
        ["profile", "ispd18_test1", "-m", "crp", "-k", "1", "-o", str(out)]
    ) == 0
    printed = capsys.readouterr().out
    assert "flow.run" in printed
    assert "flow.GR" in printed and "flow.CRP" in printed
    assert "counters" in printed

    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.obs/bench-1"
    (entry,) = doc["designs"]
    assert entry["design"] == "ispd18_test1"
    # The exported stage totals agree with the span tree by construction.
    for stage in ("GR", "CRP", "DR"):
        assert entry["runtime_s"][stage] == pytest.approx(
            entry["spans"][f"flow.run/flow.{stage}"], abs=1e-5
        )
    assert set(entry["fig3_breakdown_pct"]) == {
        "GR", "GCP", "ECC", "UD", "Misc", "DR"
    }
    assert sum(entry["fig3_breakdown_pct"].values()) == pytest.approx(
        100.0, abs=0.1
    )
    assert entry["metrics"]["counters"]["ilp.solves"] > 0
    assert entry["trace"]["name"] == "flow.run"


def test_cli_run_trace_out(tmp_path, capsys):
    from repro.cli import main
    from repro.obs import load_trace_document

    trace_path = tmp_path / "trace.json"
    assert main(
        [
            "run", "-b", "ispd18_test1", "-m", "baseline", "--skip-detailed",
            "--profile", "--trace-out", str(trace_path),
        ]
    ) == 0
    printed = capsys.readouterr().out
    assert "flow.run" in printed  # --profile tree
    spans, doc = load_trace_document(trace_path)
    assert doc["design"] == "ispd18_test1"
    assert [s.name for s in spans] == ["flow.run"]
    assert spans[0].find("flow.GR") is not None

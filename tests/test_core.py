"""Unit tests for the CR&P core: labeling, candidates, estimation,
selection, update, and the iteration driver."""

import random

import pytest

from repro.db import check_legality
from repro.groute import GlobalRouter
from repro.core import (
    CrpConfig,
    CrpFramework,
    MoveCandidate,
    apply_moves,
    estimate_candidate_cost,
    generate_candidates,
    label_critical_cells,
    select_moves,
)

from helpers import fresh_small


@pytest.fixture()
def routed():
    design = fresh_small()
    router = GlobalRouter(design)
    router.route_all()
    return design, router


# ---------------------------------------------------------------- config


def test_config_validation():
    CrpConfig().validate()
    with pytest.raises(ValueError):
        CrpConfig(gamma=0.0).validate()
    with pytest.raises(ValueError):
        CrpConfig(gamma=1.5).validate()
    with pytest.raises(ValueError):
        CrpConfig(temperature=0).validate()
    with pytest.raises(ValueError):
        CrpConfig(n_rows=0).validate()


# -------------------------------------------------------------- labeling


def test_labeling_respects_gamma(routed):
    design, router = routed
    config = CrpConfig(gamma=0.1, seed=1)
    critical = label_critical_cells(design, router, config, random.Random(1))
    movable = [c for c in design.cells.values() if not c.fixed]
    assert len(critical) <= max(1, int(0.1 * len(movable)))


def test_labeling_no_connected_pairs(routed):
    design, router = routed
    config = CrpConfig(gamma=0.6, seed=1)
    critical = set(
        label_critical_cells(design, router, config, random.Random(1))
    )
    for name in critical:
        assert not (design.connected_cells(name) & (critical - {name}))


def test_labeling_prioritizes_expensive_cells(routed):
    design, router = routed
    config = CrpConfig(gamma=0.2, seed=3)
    critical = label_critical_cells(design, router, config, random.Random(3))
    costs = [router.cell_cost(name) for name in critical]
    movable = [c.name for c in design.cells.values() if not c.fixed]
    median_cost = sorted(router.cell_cost(n) for n in movable)[len(movable) // 2]
    # Selected cells skew expensive (independence constraint allows
    # exceptions, but the average must clear the median).
    assert sum(costs) / len(costs) >= median_cost


def test_labeling_history_damps_reselection(routed):
    design, router = routed
    config = CrpConfig(gamma=0.6, temperature=1.0, seed=5)
    first = set(label_critical_cells(design, router, config, random.Random(5)))
    assert design.critical_history >= first
    # Mark everything moved too: acceptance drops to exp(-2) ~ 13.5%.
    design.moved_history.update(first)
    repeats = []
    for trial in range(20):
        again = label_critical_cells(
            design, router, config, random.Random(100 + trial)
        )
        repeats.append(len(first & set(again)) / max(1, len(again)))
    assert sum(repeats) / len(repeats) < 0.6


def test_labeling_skips_fixed(routed):
    design, router = routed
    some = next(iter(design.cells.values()))
    some.fixed = True
    config = CrpConfig(seed=2)
    critical = label_critical_cells(design, router, config, random.Random(2))
    assert some.name not in critical


# ------------------------------------------------------------ candidates


def test_generate_candidates_includes_current(routed):
    design, router = routed
    config = CrpConfig(seed=1)
    critical = label_critical_cells(design, router, config, random.Random(1))[:5]
    candidates = generate_candidates(design, critical, config)
    for name in critical:
        assert candidates[name], name
        first = candidates[name][0]
        cell = design.cells[name]
        assert first.position == (cell.x, cell.y, cell.orient)
        assert first.is_current


def test_candidates_are_legal_positions(routed):
    design, router = routed
    config = CrpConfig(seed=1, max_targets=4)
    critical = label_critical_cells(design, router, config, random.Random(1))[:4]
    candidates = generate_candidates(design, critical, config)
    for name, options in candidates.items():
        for cand in options:
            x, y, orient = cand.position
            row = design.row_at_y(y)
            assert row is not None
            assert (x - row.origin_x) % row.site.width == 0
            assert orient == row.orient


# -------------------------------------------------------------- estimate


def test_estimate_current_position_close_to_routed_cost(routed):
    design, router = routed
    name = max(design.cells, key=lambda n: router.cell_cost(n))
    cell = design.cells[name]
    cand = MoveCandidate(cell=name, position=(cell.x, cell.y, cell.orient))
    estimated = estimate_candidate_cost(design, router, cand)
    assert estimated > 0


def test_estimate_penalizes_distant_position(tech45):
    """Moving a cell away from its only neighbour must cost more."""
    from helpers import add_cell, add_two_pin_net, build_tiny_design
    from repro.db.design import GCellGridSpec

    design = build_tiny_design(tech45, num_rows=8, sites_per_row=60)
    design.gcell_grid = GCellGridSpec(
        0, 0, design.die.width // 8, design.die.height // 8, 8, 8
    )
    add_cell(design, "a", "INV_X1", 2, 0)
    add_cell(design, "b", "INV_X1", 4, 0)
    add_two_pin_net(design, "n", "a", "b")
    router = GlobalRouter(design)
    router.route_all()
    cell = design.cells["a"]
    here = estimate_candidate_cost(
        design, router, MoveCandidate("a", (cell.x, cell.y, cell.orient))
    )
    far_row = design.rows[-1]
    far = estimate_candidate_cost(
        design,
        router,
        MoveCandidate(
            "a",
            (far_row.site_x(far_row.num_sites - 5), far_row.origin_y, far_row.orient),
        ),
    )
    assert far > here


def test_estimate_includes_conflicts_option(routed):
    design, router = routed
    name = next(
        n for n in design.cells
        if not design.cells[n].fixed and design.connected_cells(n)
    )
    neighbour = next(iter(design.connected_cells(name)))
    cell = design.cells[name]
    other = design.cells[neighbour]
    cand = MoveCandidate(
        cell=name,
        position=(cell.x, cell.y, cell.orient),
        conflict_moves={neighbour: (other.x, other.y, other.orient)},
    )
    base = estimate_candidate_cost(design, router, cand)
    extended = estimate_candidate_cost(
        design, router, cand, include_conflicts=True
    )
    assert extended >= base


# ---------------------------------------------------------------- select


def test_select_picks_cheapest_per_cell(routed):
    design, _ = routed
    names = list(design.cells)[:2]
    candidates = {}
    for name in names:
        cell = design.cells[name]
        keep = MoveCandidate(name, (cell.x, cell.y, cell.orient))
        keep.route_cost = 10.0
        move = MoveCandidate(
            name, (cell.x, cell.y, cell.orient), displacement=1.0
        )
        move.route_cost = 2.0
        candidates[name] = [keep, move]
    chosen = select_moves(design, candidates)
    for name in names:
        assert chosen[name].route_cost == 2.0


def test_select_mutual_exclusion(routed):
    """Two cells targeting the same slot cannot both win."""
    design, _ = routed
    names = [n for n in design.cells if not design.cells[n].fixed][:2]
    a, b = names
    row = design.rows[0]
    target = (row.site_x(0), row.origin_y, row.orient)
    candidates = {}
    for name in (a, b):
        cell = design.cells[name]
        keep = MoveCandidate(name, (cell.x, cell.y, cell.orient))
        keep.route_cost = 10.0
        move = MoveCandidate(name, target, displacement=1.0)
        move.route_cost = 0.0
        candidates[name] = [keep, move]
    chosen = select_moves(design, candidates)
    winners = [n for n in (a, b) if chosen[n].position == target]
    assert len(winners) == 1


def test_select_handles_infinite_cost(routed):
    design, _ = routed
    name = next(iter(design.cells))
    cell = design.cells[name]
    keep = MoveCandidate(name, (cell.x, cell.y, cell.orient))
    keep.route_cost = 5.0
    bad = MoveCandidate(name, (cell.x, cell.y, cell.orient), displacement=2.0)
    bad.route_cost = float("inf")
    chosen = select_moves(design, {name: [keep, bad]})
    assert chosen[name] is keep


# ---------------------------------------------------------------- update


def test_apply_moves_reroutes_and_tracks_history(routed):
    design, router = routed
    name = next(
        n for n in design.cells
        if not design.cells[n].fixed and design.cells[n].nets
    )
    cell = design.cells[name]
    row = design.row_at_y(cell.y)
    # Shift one site right if free, else left.
    new_x = cell.x + row.site.width
    cand = MoveCandidate(name, (new_x, cell.y, cell.orient), displacement=1.0)
    stats = apply_moves(design, router, {name: cand})
    assert name in stats.moved_cells
    assert name in design.moved_history
    assert set(stats.rerouted_nets) == {
        n.name for n in design.nets_of_cell(name)
    }
    assert design.cells[name].x == new_x


def test_apply_moves_skips_current(routed):
    design, router = routed
    name = next(iter(design.cells))
    cell = design.cells[name]
    cand = MoveCandidate(name, (cell.x, cell.y, cell.orient))
    stats = apply_moves(design, router, {name: cand})
    assert stats.moved_cells == []
    assert stats.rerouted_nets == []


# ---------------------------------------------------------------- driver


def test_crp_framework_single_iteration(routed):
    design, router = routed
    framework = CrpFramework(design, router, CrpConfig(seed=1, max_targets=3))
    result = framework.run(1)
    assert len(result.iterations) == 1
    stats = result.iterations[0]
    assert stats.num_critical > 0
    assert stats.num_candidates >= stats.num_critical
    assert set(stats.runtime) == {"label", "GCP", "ECC", "ILP", "UD"}
    # Design must remain perfectly legal after movement.
    assert check_legality(design).is_legal


def test_crp_framework_improves_route_cost():
    design = fresh_small(seed=11)
    router = GlobalRouter(design)
    router.route_all()
    total_before = sum(router.net_cost(n) for n in design.nets)
    framework = CrpFramework(design, router, CrpConfig(seed=1))
    framework.run(2)
    total_after = sum(router.net_cost(n) for n in design.nets)
    assert total_after <= total_before * 1.001


def test_crp_framework_history_accumulates(routed):
    design, router = routed
    framework = CrpFramework(design, router, CrpConfig(seed=1))
    framework.run(2)
    assert design.critical_history
    # runtime breakdown keys available for Fig. 3
    breakdown = framework.run(1).runtime_breakdown()
    assert {"label", "GCP", "ECC", "ILP", "UD"} <= set(breakdown)


def test_use_penalty_ablation_changes_estimates():
    """CrpConfig.use_penalty=False must actually go congestion-blind."""
    from repro.benchgen.generator import DesignSpec, generate_design

    def run(up):
        design = fresh_small(seed=13)
        router = GlobalRouter(design)
        router.route_all()
        framework = CrpFramework(design, router, CrpConfig(seed=0, use_penalty=up))
        framework.run(2)
        return router.total_wirelength_dbu(), router.total_vias()

    on = run(True)
    off = run(False)
    assert on != off  # the knob is live


# ------------------------------------------------- run_until_converged


def _stub_framework(costs):
    """A CrpFramework shell whose cost trace is the given schedule.

    ``costs[0]`` is the pre-loop baseline; each ``run_iteration`` call
    advances to the next entry.
    """
    from repro.core.crp import IterationStats

    framework = CrpFramework.__new__(CrpFramework)
    schedule = list(costs)
    state = {"i": 0}

    def total_cost():
        return schedule[min(state["i"], len(schedule) - 1)]

    def run_iteration(k, pre_cost=None):
        state["i"] += 1
        return IterationStats(iteration=k)

    framework._total_route_cost = total_cost
    framework.run_iteration = run_iteration
    return framework


def test_converged_zero_cost_does_not_divide():
    # previous == 0 must not raise ZeroDivisionError; a zero-cost design
    # has nothing to gain, so the loop stops after `patience` tries.
    framework = _stub_framework([0.0, 0.0, 0.0, 0.0, 0.0])
    result = framework.run_until_converged(max_iterations=10, patience=2)
    assert len(result.iterations) == 2


def test_converged_patience_resets_after_good_iteration():
    # stale, good (reset), stale, stale -> stop at 4 iterations
    framework = _stub_framework([100.0, 99.99, 80.0, 79.999, 79.998])
    result = framework.run_until_converged(
        max_iterations=10, min_gain=0.001, patience=2
    )
    assert len(result.iterations) == 4


def test_converged_max_iterations_cutoff():
    # every iteration improves 10%: only max_iterations can stop it
    costs = [100.0 * (0.9 ** i) for i in range(30)]
    framework = _stub_framework(costs)
    result = framework.run_until_converged(max_iterations=5, min_gain=0.001)
    assert len(result.iterations) == 5

"""Tests for ``repro.analyze``: lint rules, suppression, invariants."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analyze import (
    Finding,
    LintConfig,
    RULES,
    Severity,
    check_accounting,
    check_connectivity,
    check_flow_state,
    check_guide_coverage,
    check_model,
    check_placement,
    finding_from_dict,
    finding_to_dict,
    lint_paths,
    lint_source,
    load_report,
    render_findings,
    report_document,
    rule_table,
    suppressions,
    write_report,
)
from repro.analyze.__main__ import main as analyze_main
from repro.grid import EdgeKind, GridEdge
from helpers import fresh_small
from repro.groute import GlobalRouter
from repro.ilp import IlpModel, Sense
from repro.ilp.model import Constraint


def lint_snippet(code: str, path: str = "src/repro/mod.py", **config):
    findings, _ = lint_source(
        textwrap.dedent(code), path, LintConfig(**config)
    )
    return findings


def rules_fired(code: str, path: str = "src/repro/mod.py", **config):
    return {f.rule for f in lint_snippet(code, path, **config)}


# ------------------------------------------------------------ rule: D001


class TestGlobalRandom:
    def test_fires_on_global_rng_call(self):
        assert "REPRO-D001" in rules_fired(
            """
            import random

            def pick(items):
                return random.choice(items)
            """
        )

    def test_fires_on_unseeded_random_and_from_import(self):
        assert "REPRO-D001" in rules_fired(
            """
            import random
            rng = random.Random()
            """
        )
        assert "REPRO-D001" in rules_fired(
            """
            from random import shuffle

            def mix(items):
                shuffle(items)
            """
        )

    def test_quiet_on_seeded_rng(self):
        assert "REPRO-D001" not in rules_fired(
            """
            import random

            def pick(items, seed):
                rng = random.Random(seed)
                return rng.choice(items)
            """
        )


# ------------------------------------------------------------ rule: D002


class TestSetIteration:
    def test_fires_on_set_typed_local(self):
        assert "REPRO-D002" in rules_fired(
            """
            def order(nets):
                dirty: set[str] = set(nets)
                for name in dirty:
                    route(name)
            """
        )

    def test_fires_on_direct_set_expression(self):
        assert "REPRO-D002" in rules_fired(
            """
            def order(a, b):
                for name in set(a) | set(b):
                    route(name)
            """
        )

    def test_escalates_to_error_on_decision_paths(self):
        code = """
        def order(nets):
            dirty = set(nets)
            for name in dirty:
                route(name)
        """
        (plain,) = lint_snippet(code, "src/repro/viz/mod.py")
        assert plain.severity is Severity.WARNING
        (hot,) = lint_snippet(code, "src/repro/groute/mod.py")
        assert hot.severity is Severity.ERROR

    def test_quiet_on_sorted_and_order_free_consumers(self):
        assert "REPRO-D002" not in rules_fired(
            """
            def order(nets):
                dirty = set(nets)
                for name in sorted(dirty):
                    route(name)
                total = sum(cost(n) for n in dirty)
                return sorted(n for n in dirty if n), total
            """
        )

    def test_nested_function_scopes_are_independent(self):
        assert "REPRO-D002" not in rules_fired(
            """
            def outer():
                items = set((1, 2))

                def inner(items):
                    for x in items:  # a parameter here, not outer's set
                        use(x)
                return inner
            """
        )


# ------------------------------------------------------------ rule: D003


class TestFloatEquality:
    def test_fires_on_float_literal_compare(self):
        assert "REPRO-D003" in rules_fired("ok = displacement == 0.0\n")
        assert "REPRO-D003" in rules_fired("bad = cost != 1.5\n")

    def test_quiet_on_int_literals_and_inequalities(self):
        assert "REPRO-D003" not in rules_fired(
            """
            exact = count == 0
            below = cost <= 0.0
            near = abs(cost) <= 1e-9
            """
        )

    def test_excluded_under_tests_paths(self):
        assert "REPRO-D003" not in rules_fired(
            "assert x == 0.5\n", path="tests/test_mod.py"
        )


# ------------------------------------------------------------ rule: D004


class TestFilesystemOrder:
    def test_fires_on_unsorted_listing(self):
        assert "REPRO-D004" in rules_fired(
            """
            import os

            def load(d):
                for name in os.listdir(d):
                    read(name)
            """
        )
        assert "REPRO-D004" in rules_fired(
            "names = [p for p in path.glob('*.lef')]\n"
        )

    def test_quiet_when_sorted(self):
        assert "REPRO-D004" not in rules_fired(
            """
            import os

            def load(d):
                for name in sorted(os.listdir(d)):
                    read(name)
            """
        )


# ------------------------------------------------------------ rule: G001


class TestUnboundedLoops:
    def test_fires_in_deadline_scoped_paths(self):
        code = """
        def drain(stack):
            while stack:
                stack.pop()
        """
        assert "REPRO-G001" in rules_fired(code, "src/repro/groute/mod.py")
        assert "REPRO-G001" in rules_fired(code, "src/repro/droute/mod.py")
        assert "REPRO-G001" in rules_fired(code, "src/repro/ilp/mod.py")

    def test_quiet_outside_scoped_paths(self):
        code = """
        def drain(stack):
            while stack:
                stack.pop()
        """
        assert "REPRO-G001" not in rules_fired(code, "src/repro/viz/mod.py")

    def test_quiet_with_deadline_check_or_bound(self):
        assert "REPRO-G001" not in rules_fired(
            """
            def drain(stack):
                while stack:
                    check_deadline("groute.drain")
                    stack.pop()

            def bounded(stack, n):
                while len(stack) > n:
                    stack.pop()
            """,
            "src/repro/groute/mod.py",
        )

    def test_inner_loop_covered_by_checking_outer_loop(self):
        assert "REPRO-G001" not in rules_fired(
            """
            def sweep(groups):
                while groups:
                    check_deadline("droute.sweep")
                    stack = groups.pop()
                    while stack:
                        stack.pop()
            """,
            "src/repro/droute/mod.py",
        )

    def test_quiet_with_deadline_ticker_tick(self):
        # DeadlineTicker batches check_deadline behind .tick(); the rule
        # must recognize the strided checkpoint as a deadline check.
        assert "REPRO-G001" not in rules_fired(
            """
            def expand(heap, ticker):
                while heap:
                    ticker.tick()
                    heap.pop()
            """,
            "src/repro/groute/mod.py",
        )


# ------------------------------------------------------------ rule: P001


class TestScalarCostLoops:
    def test_fires_on_edge_cost_in_loop(self):
        code = """
        def price(edges, cost):
            total = 0.0
            for edge in edges:
                total += cost.edge_cost(edge)
            return total
        """
        assert "REPRO-P001" in rules_fired(code, "src/repro/groute/mod.py")
        assert "REPRO-P001" in rules_fired(code, "src/repro/droute/mod.py")

    def test_fires_in_while_loops_and_comprehensions(self):
        assert "REPRO-P001" in rules_fired(
            """
            def drain(heap, cost):
                while heap:
                    step = cost.edge_cost(heap.pop())
            """,
            "src/repro/groute/mod.py",
        )
        assert "REPRO-P001" in rules_fired(
            "def f(es, c):\n    return sum(c.edge_cost(e) for e in es)\n",
            "src/repro/groute/mod.py",
        )

    def test_quiet_outside_router_paths_and_loops(self):
        code = """
        def price(edges, cost):
            total = 0.0
            for edge in edges:
                total += cost.edge_cost(edge)
            return total
        """
        # Scoped to the routers: the oracle itself may loop.
        assert "REPRO-P001" not in rules_fired(code, "src/repro/grid/cost.py")
        # A single call outside any loop is not a hot path.
        assert "REPRO-P001" not in rules_fired(
            "def one(cost, e):\n    return cost.edge_cost(e)\n",
            "src/repro/groute/mod.py",
        )

    def test_is_warning_severity_and_noqa_suppressible(self):
        findings = lint_snippet(
            """
            def price(edges, cost):
                return sum(cost.edge_cost(e) for e in edges)  # repro: noqa:REPRO-P001
            """,
            "src/repro/groute/mod.py",
        )
        assert not [f for f in findings if f.rule == "REPRO-P001"]
        fired = [
            f
            for f in lint_snippet(
                """
                def price(edges, cost):
                    return sum(cost.edge_cost(e) for e in edges)
                """,
                "src/repro/groute/mod.py",
            )
            if f.rule == "REPRO-P001"
        ]
        assert fired and all(
            f.severity.value == "warning" for f in fired
        )


# ------------------------------------------------------------ rule: X001


class TestWorkerModuleState:
    PAR_PATH = "src/repro/par/mod.py"

    def test_fires_on_module_level_mutable_bindings(self):
        assert "REPRO-X001" in rules_fired(
            "CACHE = {}\n", self.PAR_PATH
        )
        assert "REPRO-X001" in rules_fired(
            "PENDING = []\n", self.PAR_PATH
        )
        assert "REPRO-X001" in rules_fired(
            "SEEN = set()\n", self.PAR_PATH
        )
        assert "REPRO-X001" in rules_fired(
            """
            from collections import defaultdict
            BY_NET = defaultdict(list)
            """,
            self.PAR_PATH,
        )
        assert "REPRO-X001" in rules_fired(
            "SQUARES = [i * i for i in range(4)]\n", self.PAR_PATH
        )

    def test_fires_on_module_level_rng_even_when_seeded(self):
        # REPRO-D001 already catches *unseeded* RNGs everywhere; X001 is
        # about the binding living at module scope at all — a seeded
        # stream still diverges once parent and workers draw from it.
        assert "REPRO-X001" in rules_fired(
            """
            import random
            RNG = random.Random(42)
            """,
            self.PAR_PATH,
        )

    def test_quiet_on_immutable_bindings_and_all(self):
        assert "REPRO-X001" not in rules_fired(
            """
            CHUNK = 8
            KINDS = ("route", "maze", "estimate")
            NAMES = frozenset(("a", "b"))
            __all__ = ["ParallelExecutor"]
            """,
            self.PAR_PATH,
        )

    def test_quiet_on_function_locals_and_class_attributes(self):
        assert "REPRO-X001" not in rules_fired(
            """
            class WorkerState:
                __slots__ = ("cache",)

            def worker_main(queue):
                results = []
                cache = {}
                return results, cache
            """,
            self.PAR_PATH,
        )

    def test_scoped_to_par_and_error_severity(self):
        code = "CACHE = {}\n"
        assert "REPRO-X001" not in rules_fired(code, "src/repro/groute/mod.py")
        fired = [
            f
            for f in lint_snippet(code, self.PAR_PATH)
            if f.rule == "REPRO-X001"
        ]
        assert fired and all(f.severity is Severity.ERROR for f in fired)


# ------------------------------------------------------------ rule: G002


class TestBroadExcept:
    def test_fires_on_bare_and_broad_except(self):
        assert "REPRO-G002" in rules_fired(
            """
            try:
                work()
            except:
                pass
            """
        )
        assert "REPRO-G002" in rules_fired(
            """
            try:
                work()
            except Exception:
                log()
            """
        )

    def test_quiet_with_reraise_or_deadline_clause(self):
        assert "REPRO-G002" not in rules_fired(
            """
            try:
                work()
            except Exception:
                cleanup()
                raise
            """
        )
        assert "REPRO-G002" not in rules_fired(
            """
            try:
                work()
            except DeadlineExceeded:
                record()
                raise
            except Exception:
                fallback()
            """
        )


# ------------------------------------------------------------ rule: G003


class TestWallClock:
    def test_fires_on_time_time(self):
        assert "REPRO-G003" in rules_fired(
            """
            import time
            start = time.time()
            """
        )

    def test_quiet_on_monotonic_clocks(self):
        assert "REPRO-G003" not in rules_fired(
            """
            import time
            start = time.perf_counter()
            tick = time.monotonic()
            """
        )


# ------------------------------------------------------------ rule: O001


class TestObsNames:
    def test_fires_on_convention_violations(self):
        assert "REPRO-O001" in rules_fired(
            'get_metrics().count("Flow Failures")\n'
        )
        assert "REPRO-O001" in rules_fired(
            """
            def f(tracer):
                with tracer.span("justoneword"):
                    pass
            """
        )

    def test_quiet_on_conforming_names_and_fstring_prefixes(self):
        assert "REPRO-O001" not in rules_fired(
            """
            def f(metrics, name):
                metrics.count("groute.maze_calls")
                metrics.gauge("flow.gr_overflow", 1.0)
                metrics.count(f"flow.failed.{name}")
            """
        )

    def test_quiet_on_unrelated_receivers(self):
        # list.count() is not a metrics call even though the method
        # name collides.
        assert "REPRO-O001" not in rules_fired(
            'hits = ["A", "B"].count("A")\n'
        )


# ------------------------------------------------------------ rule: R001


class TestNonAtomicWrites:
    def test_fires_on_write_text_of_serialized_data(self):
        assert "REPRO-R001" in rules_fired(
            """
            import json
            def save(path, doc):
                path.write_text(json.dumps(doc, indent=1))
            """
        )
        assert "REPRO-R001" in rules_fired(
            """
            import pickle
            def save(path, state):
                path.write_bytes(pickle.dumps(state))
            """
        )

    def test_fires_on_dump_into_open_handle(self):
        assert "REPRO-R001" in rules_fired(
            """
            import json
            def save(fh, doc):
                json.dump(doc, fh)
            """
        )

    def test_fires_on_open_w_of_json_or_checkpoint_path(self):
        assert "REPRO-R001" in rules_fired(
            'fh = open("report.json", "w")\n'
        )
        assert "REPRO-R001" in rules_fired(
            'fh = open("run.ckpt", "wb")\n'
        )
        assert "REPRO-R001" in rules_fired(
            'fh = open("checkpoints/state.bin", "wb")\n'
        )

    def test_is_error_and_repo_wide(self):
        spec = RULES["REPRO-R001"]
        assert spec.severity is Severity.ERROR
        assert spec.path_scope == ()
        assert "atomic_write" in spec.hint

    def test_quiet_on_atomic_and_plain_writes(self):
        # The sanctioned pattern: serialize, then atomic_write.
        assert "REPRO-R001" not in rules_fired(
            """
            import json
            from repro.ckpt import atomic_write
            def save(path, doc):
                atomic_write(path, json.dumps(doc, indent=1))
            """
        )
        # Plain text artifacts (LEF/DEF/SVG) are out of scope.
        assert "REPRO-R001" not in rules_fired(
            'def save(path, text):\n    path.write_text(text)\n'
        )
        # Reads are fine, as is the atomic writer's own implementation path.
        assert "REPRO-R001" not in rules_fired(
            'fh = open("report.json", "r")\n'
        )
        assert "REPRO-R001" not in rules_fired(
            "import json\npath.write_text(json.dumps(d))\n",
            path="src/repro/ckpt/atomic.py",
        )


# ------------------------------------------------------- rules: classics


class TestClassics:
    def test_mutable_default_fires_and_none_is_quiet(self):
        assert "REPRO-C001" in rules_fired("def f(x, acc=[]):\n    pass\n")
        assert "REPRO-C001" in rules_fired(
            "def f(x, acc=dict()):\n    pass\n"
        )
        assert "REPRO-C001" not in rules_fired(
            "def f(x, acc=None):\n    pass\n"
        )

    def test_shadowed_builtin_fires_for_locals_not_methods(self):
        assert "REPRO-C002" in rules_fired("id = 7\n")
        assert "REPRO-C002" in rules_fired("def f(type):\n    pass\n")
        assert "REPRO-C002" not in rules_fired(
            """
            class Lexer:
                def next(self):
                    return None
            """
        )


# -------------------------------------------------------- suppressions


class TestSuppression:
    def test_noqa_suppresses_named_rule(self):
        code = "start = displacement == 0.0  # repro: noqa:REPRO-D003\n"
        findings, suppressed = lint_source(code, "src/repro/mod.py")
        assert not findings
        assert suppressed == 1

    def test_noqa_with_justification_and_multiple_rules(self):
        noqa = suppressions(
            "x = 1  # repro: noqa:REPRO-D003,REPRO-C002 — because\n"
        )
        assert noqa[1] == frozenset({"REPRO-D003", "REPRO-C002"})

    def test_bare_noqa_suppresses_everything(self):
        code = "id = displacement == 0.0  # repro: noqa\n"
        findings, suppressed = lint_source(code, "src/repro/mod.py")
        assert not findings
        assert suppressed == 2  # D003 + C002

    def test_noqa_for_other_rule_does_not_suppress(self):
        code = "start = displacement == 0.0  # repro: noqa:REPRO-G001\n"
        findings, _ = lint_source(code, "src/repro/mod.py")
        assert {f.rule for f in findings} == {"REPRO-D003"}


# ------------------------------------------------------ engine plumbing


class TestEngine:
    def test_select_and_ignore(self):
        code = "import time\nid = 7\nstart = time.time()\n"
        only = lint_snippet(code, select=("REPRO-G003",))
        assert {f.rule for f in only} == {"REPRO-G003"}
        rest = lint_snippet(code, ignore=("REPRO-G003",))
        assert "REPRO-G003" not in {f.rule for f in rest}

    def test_syntax_error_becomes_parse_error_finding(self):
        findings, _ = lint_source("def broken(:\n", "src/repro/mod.py")
        assert [f.rule for f in findings] == ["PARSE-ERROR"]
        assert findings[0].severity is Severity.ERROR

    def test_lint_paths_walks_tree_and_reports_relative(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "bad.py").write_text("import time\nstart = time.time()\n")
        result = lint_paths([pkg], relative_to=tmp_path)
        assert result.files_scanned == 2
        assert {f.path for f in result.findings} == {"pkg/bad.py"}
        assert result.ok  # G003 is only a warning

    def test_every_rule_has_metadata(self):
        table = rule_table()
        for rule_id, spec in RULES.items():
            assert spec.hint, rule_id
            assert rule_id in table

    def test_finding_roundtrip_and_report_io(self, tmp_path):
        finding = Finding(
            rule="REPRO-D003",
            severity=Severity.ERROR,
            path="src/repro/mod.py",
            line=3,
            message="float literal compared with ==/!=",
            hint="use isclose",
            col=8,
        )
        assert finding_from_dict(finding_to_dict(finding)) == finding
        doc = report_document([finding], files_scanned=1)
        path = write_report(tmp_path / "report.json", doc)
        loaded, loaded_doc = load_report(path)
        assert loaded == [finding]
        assert loaded_doc["schema"] == "repro.analyze/1"
        assert loaded_doc["summary"]["error"] == 1

    def test_render_orders_errors_first(self):
        warn = Finding(
            rule="REPRO-C002", severity=Severity.WARNING,
            path="a.py", line=1, message="w",
        )
        err = Finding(
            rule="REPRO-D003", severity=Severity.ERROR,
            path="z.py", line=9, message="e",
        )
        text = render_findings([warn, err])
        assert text.index("z.py") < text.index("a.py")
        assert "1 error, 1 warning" in text

    def test_main_exit_codes_and_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = displacement == 0.0\n")
        out = tmp_path / "report.json"
        code = analyze_main(
            [str(bad), "--format", "json", "-o", str(out),
             "--relative-to", str(tmp_path)]
        )
        assert code == 1
        document = json.loads(out.read_text())
        assert document["findings"][0]["ruleId"] == "REPRO-D003"
        printed = json.loads(capsys.readouterr().out)
        assert printed == document

    def test_repo_source_tree_lints_clean(self):
        # The acceptance bar: `python -m repro.analyze src/` exits 0.
        result = lint_paths(["src"])
        errors = [f for f in result.findings if f.severity is Severity.ERROR]
        assert errors == []


# --------------------------------------------------------- invariants


@pytest.fixture()
def routed_small():
    design = fresh_small()
    router = GlobalRouter(design)
    router.route_all(rrr_passes=1)
    return design, router


def _corrupting_edge(router, need_uncovered=False):
    """A (net, wire edge) pair where the edge is disjoint from the net's
    route — and, optionally, outside its guides — so adding it corrupts
    connectivity (and coverage) without touching accounting."""
    graph, grid = router.graph, router.grid
    guides = router.guides() if need_uncovered else {}
    shape = graph.wire_edge_shape(1)
    for name in sorted(router.routes):
        route = router.routes[name]
        if not route.terminals:
            continue
        nodes = route.nodes(graph)
        rects = [g.rect for g in guides.get(name, ()) if g.layer == 1]
        for gx in range(shape[0]):
            for gy in range(shape[1]):
                edge = GridEdge(1, gx, gy, EdgeKind.WIRE)
                a, b = edge.endpoints(graph)
                if a in nodes or b in nodes or edge in route.edges:
                    continue
                if need_uncovered:
                    centers = (
                        grid.rect_of(a[1], a[2]).center,
                        grid.rect_of(b[1], b[2]).center,
                    )
                    if any(
                        r.contains_point(c) for r in rects for c in centers
                    ):
                        continue
                return name, edge
    raise AssertionError("no corrupting edge found")


class TestInvariants:
    def test_clean_flow_state_passes(self, routed_small):
        design, router = routed_small
        assert check_flow_state(design, router) == []

    def test_accounting_corruption_flagged(self, routed_small):
        design, router = routed_small
        router.graph.wire_usage[1][0, 0] += 1.0
        rules = {f.rule for f in check_accounting(router)}
        assert "FLOW-A001" in rules

    def test_negative_usage_flagged(self, routed_small):
        _, router = routed_small
        router.graph.via_usage[0][0, 0] = -1
        rules = {f.rule for f in check_accounting(router)}
        assert "FLOW-A002" in rules

    def test_dangling_segment_flagged(self, routed_small):
        design, router = routed_small
        name, far = _corrupting_edge(router)
        router.routes[name].edges.add(far)
        router.graph.apply_route([far])
        rules = {f.rule for f in check_connectivity(router)}
        assert "FLOW-C002" in rules
        # accounting stays clean: the corruption classes are independent
        assert check_accounting(router) == []

    def test_disconnected_terminals_flagged(self, routed_small):
        design, router = routed_small
        multi = next(
            name
            for name in sorted(router.routes)
            if len(router.routes[name].terminals) >= 2
            and router.routes[name].edges
        )
        route = router.routes[multi]
        removed = sorted(route.edges)[: max(1, len(route.edges) // 2)]
        for edge in removed:
            route.edges.discard(edge)
        router.graph.apply_route(removed, sign=-1)
        rules = {f.rule for f in check_connectivity(router)}
        assert "FLOW-C001" in rules or "FLOW-C002" in rules

    def test_invalid_edge_flagged(self, routed_small):
        _, router = routed_small
        name = sorted(router.routes)[0]
        router.routes[name].edges.add(
            GridEdge(1, 10_000, 10_000, EdgeKind.WIRE)
        )
        rules = {f.rule for f in check_connectivity(router)}
        assert "FLOW-C004" in rules

    def test_stale_guides_flagged(self, routed_small):
        design, router = routed_small
        stale = router.guides()
        name, far = _corrupting_edge(router, need_uncovered=True)
        router.routes[name].edges.add(far)
        rules = {f.rule for f in check_guide_coverage(router, stale)}
        assert "FLOW-C003" in rules
        # freshly-emitted guides cover by construction
        assert check_guide_coverage(router) == []

    def test_overlapping_cells_flagged(self, routed_small):
        design, router = routed_small
        names = sorted(design.cells)
        a, b = design.cells[names[0]], design.cells[names[1]]
        design.move_cell(b.name, a.x, a.y)
        findings = check_placement(design)
        assert any(
            f.rule == "FLOW-L001" and "overlaps" in f.message
            for f in findings
        )

    def test_off_site_cell_flagged(self, routed_small):
        design, _ = routed_small
        name = sorted(design.cells)[0]
        cell = design.cells[name]
        design.move_cell(name, cell.x + 1, cell.y)
        findings = check_placement(design)
        assert any(
            f.rule == "FLOW-L001" and "off_site" in f.message
            for f in findings
        )

    def test_bad_ilp_model_flagged(self):
        model = IlpModel("bad")
        x = model.add_variable("x", cost=float("nan"), lower=2.0, upper=1.0)
        model.add_constraint([(x, 1.0)], Sense.LE, float("inf"))
        model.constraints.append(
            Constraint(terms=[], sense=Sense.LE, rhs=1.0)
        )
        rules = {f.rule for f in check_model(model)}
        assert rules == {"FLOW-M001", "FLOW-M002"}

    def test_well_formed_ilp_model_passes(self):
        model = IlpModel("good")
        x = model.add_binary("x", cost=1.0)
        y = model.add_binary("y", cost=2.0)
        model.add_exactly_one([x, y])
        assert check_model(model) == []


# ------------------------------------------- suppression edge cases


class TestSuppressionEdgeCases:
    def test_multi_rule_comma_list_with_spaces(self):
        noqa = suppressions(
            "x = 1  # repro: noqa: REPRO-D003 , REPRO-C002\n"
        )
        assert noqa[1] == frozenset({"REPRO-D003", "REPRO-C002"})

    def test_trailing_justification_after_dash(self):
        noqa = suppressions(
            "x = 1  # repro: noqa:REPRO-G002 — any unpickle death is corrupt\n"
        )
        assert noqa[1] == frozenset({"REPRO-G002"})

    def test_noqa_on_continuation_line_maps_to_that_line(self):
        source = (
            "value = compute(\n"
            "    arg,  # repro: noqa:REPRO-D003\n"
            ")\n"
        )
        noqa = suppressions(source)
        assert list(noqa) == [2]
        # ...so it does NOT suppress a finding anchored on line 1
        code = (
            "start = (displacement\n"
            "    == 0.0)  # repro: noqa:REPRO-D003\n"
        )
        findings, suppressed = lint_source(code, "src/repro/mod.py")
        assert {f.rule for f in findings} == {"REPRO-D003"}
        assert suppressed == 0

    def test_lowercase_and_malformed_ids_are_ignored(self):
        noqa = suppressions("x = 1  # repro: noqa:repro-d003, bogus\n")
        assert noqa[1] == frozenset()


class TestFileWalkDeterminism:
    def test_iter_python_files_sorted_and_deduplicated(self, tmp_path):
        from repro.analyze import iter_python_files

        pkg = tmp_path / "pkg"
        sub = pkg / "sub"
        sub.mkdir(parents=True)
        b = pkg / "b.py"
        a = pkg / "a.py"
        c = sub / "c.py"
        for f in (b, a, c):
            f.write_text("x = 1\n")
        (pkg / "notes.txt").write_text("not python\n")
        listed = iter_python_files([pkg, a, tmp_path / "pkg"])
        assert listed == sorted({a, b, c})
        # stable under permutation of the input paths
        assert iter_python_files([a, pkg]) == listed


# --------------------------------------- REPRO-U001 (stale noqa)


class TestUnusedSuppressions:
    def _analyze(self, tmp_path, source):
        from repro.analyze import run_source_analysis

        mod = tmp_path / "mod.py"
        mod.write_text(textwrap.dedent(source))
        return run_source_analysis(
            [mod], dataflow=False, relative_to=tmp_path
        )

    def test_live_suppression_is_quiet(self, tmp_path):
        analysis = self._analyze(
            tmp_path,
            "start = displacement == 0.0  # repro: noqa:REPRO-D003\n",
        )
        assert "REPRO-U001" not in {f.rule for f in analysis.findings}
        assert analysis.suppressed == 1

    def test_stale_suppression_fires(self, tmp_path):
        analysis = self._analyze(
            tmp_path,
            "x = 1  # repro: noqa:REPRO-D003\n",
        )
        fired = [
            f for f in analysis.findings if f.rule == "REPRO-U001"
        ]
        assert len(fired) == 1
        assert "REPRO-D003" in fired[0].message

    def test_unknown_rule_id_fires(self, tmp_path):
        analysis = self._analyze(
            tmp_path,
            "x = 1  # repro: noqa:REPRO-Z999\n",
        )
        fired = [
            f for f in analysis.findings if f.rule == "REPRO-U001"
        ]
        assert len(fired) == 1
        assert "unknown rule ID" in fired[0].message

    def test_bare_noqa_suppressing_nothing_fires(self, tmp_path):
        analysis = self._analyze(tmp_path, "x = 1  # repro: noqa\n")
        fired = [
            f for f in analysis.findings if f.rule == "REPRO-U001"
        ]
        assert len(fired) == 1
        assert "bare" in fired[0].message

    def test_docstring_noqa_text_is_not_flagged(self, tmp_path):
        analysis = self._analyze(
            tmp_path,
            '''
            def helper():
                """Suppress with `# repro: noqa:REPRO-D003` inline."""
                return 1
            ''',
        )
        assert "REPRO-U001" not in {f.rule for f in analysis.findings}


# ----------------------------------------------- baseline lifecycle


class TestBaseline:
    def _project(self, tmp_path, dirty=False):
        pkg = tmp_path / "pkg"
        pkg.mkdir(exist_ok=True)
        body = "import time\nstart = time.time()\n" if dirty else "x = 1\n"
        (pkg / "mod.py").write_text(body)
        return pkg

    def test_update_baseline_is_byte_stable(self, tmp_path):
        from repro.analyze import update_baseline

        pkg = self._project(tmp_path, dirty=True)
        baseline = tmp_path / "ANALYZE_baseline.json"
        update_baseline(baseline, [pkg], relative_to=tmp_path)
        first = baseline.read_bytes()
        update_baseline(baseline, [pkg], relative_to=tmp_path)
        assert baseline.read_bytes() == first
        assert first.endswith(b"\n")

    def test_check_baseline_passes_after_update(self, tmp_path):
        from repro.analyze import check_baseline, update_baseline

        pkg = self._project(tmp_path, dirty=True)
        baseline = tmp_path / "ANALYZE_baseline.json"
        update_baseline(baseline, [pkg], relative_to=tmp_path)
        ok, lines = check_baseline(baseline, [pkg], relative_to=tmp_path)
        assert ok and lines == []

    def test_check_baseline_flags_new_findings(self, tmp_path):
        from repro.analyze import check_baseline, update_baseline

        pkg = self._project(tmp_path)
        baseline = tmp_path / "ANALYZE_baseline.json"
        update_baseline(baseline, [pkg], relative_to=tmp_path)
        (pkg / "mod.py").write_text("import time\nstart = time.time()\n")
        ok, lines = check_baseline(baseline, [pkg], relative_to=tmp_path)
        assert not ok
        assert any(line.startswith("NEW") for line in lines)

    def test_check_baseline_flags_stale_entries(self, tmp_path):
        from repro.analyze import check_baseline, update_baseline

        pkg = self._project(tmp_path, dirty=True)
        baseline = tmp_path / "ANALYZE_baseline.json"
        update_baseline(baseline, [pkg], relative_to=tmp_path)
        (pkg / "mod.py").write_text("x = 1\n")  # the finding is fixed
        ok, lines = check_baseline(baseline, [pkg], relative_to=tmp_path)
        assert not ok
        assert any(line.startswith("GONE") for line in lines)

    def test_check_baseline_missing_file_fails(self, tmp_path):
        from repro.analyze import check_baseline

        pkg = self._project(tmp_path)
        ok, lines = check_baseline(
            tmp_path / "nope.json", [pkg], relative_to=tmp_path
        )
        assert not ok
        assert "unreadable" in lines[0]

    def test_main_update_and_check_roundtrip(self, tmp_path):
        pkg = self._project(tmp_path, dirty=True)
        baseline = tmp_path / "ANALYZE_baseline.json"
        assert analyze_main(
            [str(pkg), "--baseline", str(baseline), "--update-baseline",
             "--relative-to", str(tmp_path)]
        ) == 0
        assert analyze_main(
            [str(pkg), "--baseline", str(baseline), "--check-baseline",
             "--relative-to", str(tmp_path)]
        ) == 0
        (pkg / "mod.py").write_text("x = displacement == 0.0\n")
        assert analyze_main(
            [str(pkg), "--baseline", str(baseline), "--check-baseline",
             "--relative-to", str(tmp_path)]
        ) == 1

    def test_repo_baseline_matches_committed(self):
        from repro.analyze import check_baseline

        ok, lines = check_baseline("ANALYZE_baseline.json", ["src"])
        assert ok, "\n".join(lines)

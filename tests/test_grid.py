"""Unit tests for the GCell grid, routing graph, and cost model."""

import math

import pytest

from repro.geom import Point, Rect
from repro.db import Blockage
from repro.db.design import GCellGridSpec
from repro.grid import (
    CostModel,
    CostParams,
    EdgeKind,
    GCellGrid,
    GridEdge,
    RoutingGraph,
)

from helpers import build_tiny_design


@pytest.fixture()
def grid():
    return GCellGrid(GCellGridSpec(0, 0, 1000, 1000, 10, 8))


def test_gcell_of_clamps(grid):
    assert grid.gcell_of(Point(-50, -50)) == (0, 0)
    assert grid.gcell_of(Point(10**9, 10**9)) == (9, 7)
    assert grid.gcell_of(Point(1500, 2500)) == (1, 2)


def test_center_and_rect(grid):
    assert grid.center_of(0, 0) == Point(500, 500)
    assert grid.rect_of(2, 3) == Rect(2000, 3000, 3000, 4000)


def test_gcells_overlapping(grid):
    cells = grid.gcells_overlapping(Rect(500, 500, 2500, 1500))
    assert (0, 0) in cells and (2, 1) in cells
    assert len(cells) == 6


def test_manhattan_centers(grid):
    assert grid.manhattan_centers((0, 0), (3, 2)) == 3 * 1000 + 2 * 1000


def test_degenerate_grid_rejected():
    with pytest.raises(ValueError):
        GCellGrid(GCellGridSpec(0, 0, 0, 100, 5, 5))


def test_for_design_derives_grid(tech45):
    design = build_tiny_design(tech45)
    design.gcell_grid = None
    grid = GCellGrid.for_design(design, target_gcells=6)
    assert grid.nx >= 6
    assert design.gcell_grid is not None


# ------------------------------------------------------------------ graph


@pytest.fixture()
def graph(tech45):
    design = build_tiny_design(tech45, num_rows=8, sites_per_row=50)
    design.gcell_grid = GCellGridSpec(0, 0, 2000, 2000, 5, 5)
    g = RoutingGraph(GCellGrid(design.gcell_grid), tech45)
    g.init_fixed_usage(design)
    return g


def test_wire_edge_shapes(graph):
    # Horizontal layer 0: (nx-1, ny); vertical layer 1: (nx, ny-1)
    assert graph.wire_edge_shape(0) == (4, 5)
    assert graph.wire_edge_shape(1) == (5, 4)


def test_capacity_is_tracks_per_gcell(graph, tech45):
    edge = GridEdge(2, 0, 0, EdgeKind.WIRE)
    assert graph.capacity(edge) == 2000 // tech45.layers[2].pitch


def test_wire_usage_roundtrip(graph):
    edge = GridEdge(2, 1, 1, EdgeKind.WIRE)
    before = graph.demand(edge)
    graph.add_wire(edge)
    assert graph.demand(edge) == before + 1
    graph.remove_wire(edge)
    assert graph.demand(edge) == before


def test_invalid_edges_rejected(graph):
    with pytest.raises(ValueError):
        graph.add_wire(GridEdge(0, 99, 0, EdgeKind.WIRE))
    with pytest.raises(ValueError):
        graph.add_via(GridEdge(8, 0, 0, EdgeKind.VIA))  # top layer has no up-via
    with pytest.raises(ValueError):
        graph.demand(GridEdge(0, 0, 0, EdgeKind.VIA))


def test_via_demand_term(graph):
    """Eq. 9: vias at edge endpoints add beta * sqrt((Vsrc+Vdst)/2)."""
    edge = GridEdge(2, 1, 1, EdgeKind.WIRE)
    base = graph.demand(edge)
    graph.add_via(GridEdge(2, 1, 1, EdgeKind.VIA))  # via touching src gcell
    after = graph.demand(edge)
    assert after == pytest.approx(base + 1.5 * math.sqrt(0.5))
    graph.add_via(GridEdge(1, 2, 1, EdgeKind.VIA))  # via touching dst gcell
    assert graph.demand(edge) == pytest.approx(base + 1.5 * math.sqrt(1.0))


def test_apply_route_sign(graph):
    edges = [
        GridEdge(2, 0, 0, EdgeKind.WIRE),
        GridEdge(2, 0, 0, EdgeKind.VIA),
    ]
    graph.apply_route(edges, sign=1)
    assert graph.wire_usage[2][0, 0] == 1
    assert graph.via_usage[2][0, 0] == 1
    graph.apply_route(edges, sign=-1)
    assert graph.total_vias() == 0
    assert graph.overflow() == 0.0


def test_neighbors_respect_layer_direction(graph):
    # Layer 2 horizontal: wire moves change gx only.
    wire_moves = [
        n for n, e in graph.neighbors((2, 2, 2)) if e.kind is EdgeKind.WIRE
    ]
    assert all(n[0] == 2 and n[2] == 2 for n in wire_moves)
    # Layer 1 vertical: wire moves change gy only.
    wire_moves = [
        n for n, e in graph.neighbors((1, 2, 2)) if e.kind is EdgeKind.WIRE
    ]
    assert all(n[0] == 1 and n[1] == 2 for n in wire_moves)


def test_neighbors_min_wire_layer(graph):
    moves = graph.neighbors((0, 2, 2))
    assert all(e.kind is EdgeKind.VIA for _, e in moves)


def test_fixed_usage_from_blockage(tech45):
    design = build_tiny_design(tech45, num_rows=8, sites_per_row=50)
    design.gcell_grid = GCellGridSpec(0, 0, 2000, 2000, 5, 5)
    design.add_blockage(Blockage(2, Rect(0, 0, 4000, 4000)))
    graph = RoutingGraph(GCellGrid(design.gcell_grid), tech45)
    graph.init_fixed_usage(design)
    # Fully covered gcells lose whole capacity but never exceed it.
    assert graph.fixed_usage[2][0, 0] > 0
    assert (graph.fixed_usage[2] <= graph.wire_capacity[2] + 1e-9).all()
    # Other layers untouched.
    assert graph.fixed_usage[3].sum() == 0


def test_congestion_map_shape_and_range(graph):
    graph.add_wire(GridEdge(2, 0, 0, EdgeKind.WIRE), amount=5)
    cmap = graph.congestion_map()
    assert cmap.shape == (5, 5)
    assert cmap.max() > 0


# ------------------------------------------------------------------- cost


def test_penalty_increases_with_demand(graph):
    model = CostModel(graph, CostParams(slope=1.0))
    edge = GridEdge(2, 0, 0, EdgeKind.WIRE)
    empty = model.penalty(edge)
    graph.add_wire(edge, amount=graph.capacity(edge))
    assert model.penalty(edge) > empty
    assert model.penalty(edge) == pytest.approx(0.5, abs=0.01)
    graph.add_wire(edge, amount=100)
    assert model.penalty(edge) > 0.99


def test_penalty_disabled(graph):
    model = CostModel(graph, CostParams(use_penalty=False))
    edge = GridEdge(2, 0, 0, EdgeKind.WIRE)
    graph.add_wire(edge, amount=1000)
    assert model.penalty(edge) == 0.0


def test_via_edge_cost_is_weight(graph):
    model = CostModel(graph)
    assert model.edge_cost(GridEdge(0, 0, 0, EdgeKind.VIA)) == 2.0


def test_wire_cost_scales_with_distance(graph):
    model = CostModel(graph, CostParams(use_penalty=False))
    cost = model.edge_cost(GridEdge(2, 0, 0, EdgeKind.WIRE))
    # one gcell step = 2000 DBU = 10 M2 pitches, weight 0.5
    assert cost == pytest.approx(0.5 * 10)


def test_lower_bound_is_admissible(graph):
    model = CostModel(graph)
    a, b = (0, 0, 0), (3, 4, 2)
    lb = model.lower_bound(a, b)
    # congestion-free direct cost: wire + via stack
    direct = 0.5 * (4 * 2000 + 2 * 2000) / 200 + 2.0 * 3
    assert lb == pytest.approx(direct)


def test_path_cost_sums(graph):
    model = CostModel(graph)
    edges = [GridEdge(2, 0, 0, EdgeKind.WIRE), GridEdge(2, 0, 0, EdgeKind.VIA)]
    assert model.path_cost(edges) == pytest.approx(
        model.edge_cost(edges[0]) + model.edge_cost(edges[1])
    )

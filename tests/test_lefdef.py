"""Unit tests for the LEF/DEF/guide parsers and writers."""

import pytest

from repro.geom import Orientation, Rect
from repro.lefdef import (
    parse_def,
    parse_guides,
    parse_lef,
    tokenize,
    write_def,
    write_guides,
    write_lef,
)
from repro.lefdef.lexer import TokenStream
from repro.lefdef.guides import GuideRect
from repro.benchgen import build_tech
from repro.benchgen.generator import DesignSpec, generate_design


# ------------------------------------------------------------------ lexer


def test_tokenize_semicolons_and_comments():
    tokens = tokenize("UNITS ;\n# a comment\nSIZE 0.2 BY 1.4 ; # tail\n")
    assert tokens == ["UNITS", ";", "SIZE", "0.2", "BY", "1.4", ";"]


def test_tokenize_glued_semicolon():
    assert tokenize("END UNITS;") == ["END", "UNITS", ";"]


def test_token_stream_expect_and_errors():
    stream = TokenStream(["A", "1", ";"])
    assert stream.next() == "A"
    assert stream.next_int() == 1
    stream.expect(";")
    assert stream.at_end()
    with pytest.raises(ValueError):
        stream.next()


def test_token_stream_expect_mismatch():
    stream = TokenStream(["X"])
    with pytest.raises(ValueError):
        stream.expect("Y")


def test_skip_statement():
    stream = TokenStream(["FOO", "1", "2", ";", "BAR"])
    stream.skip_statement()
    assert stream.next() == "BAR"


# -------------------------------------------------------------------- LEF

LEF_SNIPPET = """
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 2000 ;
END UNITS
SITE core
  CLASS CORE ;
  SIZE 0.2 BY 1.4 ;
END core
LAYER Metal1
  TYPE ROUTING ;
  DIRECTION HORIZONTAL ;
  PITCH 0.2 ;
  WIDTH 0.06 ;
  SPACING 0.14 ;
  AREA 0.0072 ;
  OFFSET 0.1 ;
END Metal1
LAYER via1
  TYPE CUT ;
END via1
LAYER Metal2
  TYPE ROUTING ;
  DIRECTION VERTICAL ;
  PITCH 0.2 ;
  WIDTH 0.06 ;
  SPACING 0.14 ;
END Metal2
VIA via12 DEFAULT
  LAYER Metal1 ;
    RECT -0.05 -0.05 0.05 0.05 ;
  LAYER Metal2 ;
    RECT -0.05 -0.05 0.05 0.05 ;
END via12
MACRO INV
  CLASS CORE ;
  SIZE 0.4 BY 1.4 ;
  SITE core ;
  PIN A
    DIRECTION INPUT ;
    PORT
      LAYER Metal1 ;
        RECT 0.08 0.6 0.12 0.8 ;
    END
  END A
  OBS
    LAYER Metal1 ;
      RECT 0.0 0.0 0.4 0.1 ;
  END
END INV
END LIBRARY
"""


def test_parse_lef_units_scaling():
    tech = parse_lef(LEF_SNIPPET)
    assert tech.dbu_per_micron == 2000
    site = tech.sites["core"]
    assert (site.width, site.height) == (400, 2800)


def test_parse_lef_layers_skip_cut():
    tech = parse_lef(LEF_SNIPPET)
    assert tech.num_layers == 2
    m1 = tech.layer_by_name("Metal1")
    assert m1.pitch == 400
    assert m1.min_area == 0.0072 * 2000 * 2000
    assert m1.is_horizontal
    assert tech.layer_by_name("Metal2").is_vertical


def test_parse_lef_via():
    tech = parse_lef(LEF_SNIPPET)
    assert len(tech.vias) == 1
    via = tech.vias[0]
    assert via.bottom == 0
    assert via.bottom_shape == Rect(-100, -100, 100, 100)


def test_parse_lef_macro_pin_and_obs():
    tech = parse_lef(LEF_SNIPPET)
    inv = tech.macros["INV"]
    assert inv.width == 800
    assert inv.site_name == "core"
    pin = inv.pin("A")
    assert pin.shapes[0].layer == 0
    assert pin.shapes[0].rect == Rect(160, 1200, 240, 1600)
    assert len(inv.obstructions) == 1


def test_lef_round_trip():
    tech = build_tech("45nm")
    text = write_lef(tech)
    back = parse_lef(text)
    assert back.dbu_per_micron == tech.dbu_per_micron
    assert back.num_layers == tech.num_layers
    assert set(back.macros) == set(tech.macros)
    for name, macro in tech.macros.items():
        parsed = back.macros[name]
        assert parsed.width == macro.width
        assert parsed.height == macro.height
        assert set(parsed.pins) == set(macro.pins)
        for pin_name, pin in macro.pins.items():
            assert parsed.pins[pin_name].shapes == pin.shapes


# -------------------------------------------------------------------- DEF


def _generated():
    return generate_design(
        DesignSpec(
            name="roundtrip",
            num_cells=30,
            num_nets=25,
            utilization=0.6,
            gcells_per_axis=6,
            num_iopins=4,
            num_blockages=1,
            seed=7,
        )
    )


def test_def_round_trip():
    design = _generated()
    text = write_def(design)
    back = parse_def(text, design.tech)
    assert back.name == design.name
    assert back.die == design.die
    assert len(back.rows) == len(design.rows)
    assert set(back.cells) == set(design.cells)
    for name, cell in design.cells.items():
        parsed = back.cells[name]
        assert (parsed.x, parsed.y) == (cell.x, cell.y)
        assert parsed.orient == cell.orient
        assert parsed.macro.name == cell.macro.name
        assert parsed.fixed == cell.fixed
    assert set(back.nets) == set(design.nets)
    for name, net in design.nets.items():
        assert [p.key() for p in back.nets[name].pins] == [
            p.key() for p in net.pins
        ]
    assert set(back.iopins) == set(design.iopins)
    assert len(back.blockages) == len(design.blockages)
    grid = back.gcell_grid
    assert grid is not None
    assert (grid.nx, grid.ny) == (design.gcell_grid.nx, design.gcell_grid.ny)


def test_def_parse_minimal():
    tech = build_tech("45nm")
    text = """
VERSION 5.8 ;
DESIGN mini ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 4000 2800 ) ;
ROW ROW_0 core 0 0 N DO 20 BY 1 STEP 200 0 ;
COMPONENTS 1 ;
  - u1 INV_X1 + PLACED ( 200 0 ) N ;
END COMPONENTS
PINS 0 ;
END PINS
NETS 0 ;
END NETS
END DESIGN
"""
    design = parse_def(text, tech)
    assert design.name == "mini"
    assert design.cells["u1"].x == 200
    assert not design.cells["u1"].fixed


def test_def_fixed_component():
    tech = build_tech("45nm")
    text = """
DESIGN f ;
DIEAREA ( 0 0 ) ( 4000 2800 ) ;
COMPONENTS 1 ;
  - blk INV_X1 + FIXED ( 0 0 ) FS ;
END COMPONENTS
END DESIGN
"""
    design = parse_def(text, tech)
    assert design.cells["blk"].fixed
    assert design.cells["blk"].orient is Orientation.FS


# ------------------------------------------------------------------ guides


def test_guides_round_trip():
    tech = build_tech("45nm")
    guides = {
        "net1": [
            GuideRect(0, Rect(0, 0, 3000, 3000)),
            GuideRect(1, Rect(0, 0, 3000, 6000)),
        ],
        "net2": [GuideRect(2, Rect(100, 100, 200, 200))],
    }
    text = write_guides(guides, tech)
    back = parse_guides(text, tech)
    assert back == guides


def test_parse_guides_rejects_orphan_rect():
    tech = build_tech("45nm")
    with pytest.raises(ValueError):
        parse_guides("0 0 10 10 Metal1\n", tech)

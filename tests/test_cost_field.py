"""Parity and invalidation tests for the dense cost-field kernel.

The contract under test: :class:`repro.grid.field.CostField` is a pure
speedup over the scalar :class:`repro.grid.cost.CostModel` oracle —
edge costs are *bit-identical*, prefix-sum run costs agree to 1e-9
(float association is the only permitted difference), and the field
stays coherent through every mutation path: ``apply_route`` in both
signs, rip-up/reroute, and guard-transaction rollback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import (
    CostField,
    CostModel,
    CostParams,
    EdgeKind,
    GridEdge,
    RoutingGraph,
)
from repro.groute import GlobalRouter
from repro.groute.pattern3d import PatternRouter3D
from repro.guard.deadline import (
    DeadlineExceeded,
    DeadlineTicker,
    deadline_scope,
)
from repro.guard.transaction import IterationTransaction

from helpers import fresh_small


def all_wire_edges(graph: RoutingGraph) -> list[GridEdge]:
    edges = []
    for layer in range(graph.min_wire_layer, graph.num_layers):
        ex, ey = graph.wire_edge_shape(layer)
        for gx in range(ex):
            for gy in range(ey):
                edges.append(GridEdge(layer, gx, gy, EdgeKind.WIRE))
    return edges


def randomize_usage(graph: RoutingGraph, seed: int) -> None:
    """Drive usage through the graph mutators so listeners fire."""
    rng = np.random.RandomState(seed)
    for edge in all_wire_edges(graph):
        if rng.rand() < 0.3:
            graph.add_wire(edge, float(rng.randint(1, 5)))
    for layer in range(graph.num_layers - 1):
        nx, ny = graph.via_usage[layer].shape
        for _ in range(nx * ny // 3):
            gx, gy = rng.randint(nx), rng.randint(ny)
            graph.add_via(GridEdge(layer, int(gx), int(gy), EdgeKind.VIA))


def assert_field_matches_oracle(
    graph: RoutingGraph, field: CostField, oracle: CostModel
) -> None:
    """Every edge cost bit-equal; no tolerance."""
    for edge in all_wire_edges(graph):
        assert field.edge_cost(edge) == oracle.edge_cost(edge), edge
    via = GridEdge(0, 0, 0, EdgeKind.VIA)
    assert field.edge_cost(via) == oracle.edge_cost(via)


@pytest.fixture()
def routed_graph(tech45):
    """A small routed design's graph + a (field, oracle) pair."""
    design = fresh_small(seed=7)
    router = GlobalRouter(design, use_cost_field=False)
    router.route_all(rrr_passes=1)
    field = CostField(router.graph, router.cost.params)
    return router, field, router.cost


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_parity_bit_exact(tech45, seed):
    design = fresh_small(seed=seed)
    router = GlobalRouter(design, use_cost_field=False)
    field = CostField(router.graph, router.cost.params)
    randomize_usage(router.graph, seed=100 + seed)
    assert_field_matches_oracle(router.graph, field, router.cost)


def test_parity_without_penalty(tech45):
    design = fresh_small(seed=5)
    router = GlobalRouter(design, use_cost_field=False)
    params = CostParams(use_penalty=False)
    field = CostField(router.graph, params)
    oracle = CostModel(router.graph, params)
    randomize_usage(router.graph, seed=11)
    assert_field_matches_oracle(router.graph, field, oracle)


def test_parity_after_apply_route_both_signs(routed_graph):
    router, field, oracle = routed_graph
    graph = router.graph
    name = next(iter(router.routes))
    edges = list(router.routes[name].edges)
    graph.apply_route(edges, sign=-1)
    assert_field_matches_oracle(graph, field, oracle)
    graph.apply_route(edges, sign=1)
    assert_field_matches_oracle(graph, field, oracle)


def test_parity_after_ripup_reroute(routed_graph):
    router, field, oracle = routed_graph
    for name in list(router.routes)[:5]:
        router.rip_up(name)
        assert_field_matches_oracle(router.graph, field, oracle)
        router.route_net(name)
    assert_field_matches_oracle(router.graph, field, oracle)


def test_invalidation_is_incremental(routed_graph):
    """A single add_wire recomputes one line, not the whole layer."""
    router, field, _ = routed_graph
    field.ensure()  # start clean
    edge = all_wire_edges(router.graph)[0]
    before = field._lines_recomputed
    router.graph.add_wire(edge)
    field.ensure()
    assert field._lines_recomputed == before + 1
    # A clean field is a hit: no further recompute.
    flushes = field._flushes
    field.ensure()
    assert field._flushes == flushes


def test_via_change_dirties_adjacent_wire_layers(routed_graph):
    """delta_e couples a via at cut layer l to wire layers l and l+1."""
    router, field, oracle = routed_graph
    graph = router.graph
    field.ensure()
    cut = graph.min_wire_layer  # cut between wire layers cut and cut+1
    via = GridEdge(cut, 1, 1, EdgeKind.VIA)
    graph.add_via(via)
    assert field._dirty_lines[cut] or field._all_dirty[cut]
    assert field._dirty_lines[cut + 1] or field._all_dirty[cut + 1]
    assert_field_matches_oracle(graph, field, oracle)


def test_prefix_run_cost_matches_scalar(routed_graph):
    router, field, oracle = routed_graph
    graph = router.graph
    pr_scalar = PatternRouter3D(graph, oracle, graph.min_wire_layer)
    pr_field = PatternRouter3D(
        graph, oracle, graph.min_wire_layer, field=field
    )
    field.ensure()
    rng = np.random.RandomState(3)
    for layer in range(graph.min_wire_layer, graph.num_layers):
        ex, ey = graph.wire_edge_shape(layer)
        if ex == 0 or ey == 0:
            continue
        horizontal = graph.tech.layers[layer].is_horizontal
        for _ in range(20):
            if horizontal:
                line = int(rng.randint(ey))
                a, b = sorted(rng.randint(0, ex + 1, size=2))
                run = ((int(a), line), (int(b), line))
            else:
                line = int(rng.randint(ex))
                a, b = sorted(rng.randint(0, ey + 1, size=2))
                run = ((line, int(a)), (line, int(b)))
            if a == b:
                continue
            scalar = pr_scalar._run_cost(run, layer)
            dense = pr_field._run_cost(run, layer)
            assert dense == pytest.approx(scalar, abs=1e-9)


def test_overflow_edges_matches_scalar_scan(routed_graph):
    router, field, _ = routed_graph
    graph = router.graph
    randomize_usage(graph, seed=23)
    expected = [
        e
        for e in all_wire_edges(graph)
        if graph.demand(e) > graph.capacity(e)
    ]
    assert field.overflow_edges() == expected
    assert expected  # the randomized usage must actually overflow


def test_parity_after_transaction_rollback(tech45):
    design = fresh_small(seed=9)
    router = GlobalRouter(design)  # field mode: router.field is the kernel
    router.route_all(rrr_passes=1)
    oracle = router.cost
    field = router.field
    assert field is not None

    txn = IterationTransaction(design, router)
    names = list(router.routes)[:4]
    for name in names:
        txn.routes[name] = router.copy_route(name)
    before = {n: sorted(router.routes[n].edges) for n in names}
    for name in names:
        router.rip_up(name)
    txn.rollback()
    after = {n: sorted(router.routes[n].edges) for n in names}
    assert after == before
    assert_field_matches_oracle(router.graph, field, oracle)


def test_routing_mode_parity(tech45):
    """Scalar and field modes produce byte-identical flow results."""
    results = {}
    for use_field in (False, True):
        design = fresh_small(seed=13)
        router = GlobalRouter(design, use_cost_field=use_field)
        router.route_all(rrr_passes=2)
        results[use_field] = (
            {n: sorted(rt.edges) for n, rt in router.routes.items()},
            router.total_wirelength_dbu(),
            router.total_vias(),
            router.total_overflow(),
        )
    assert results[False] == results[True]


def test_edge_nets_prunes_empty_sets(tech45):
    design = fresh_small(seed=17)
    router = GlobalRouter(design)
    router.route_all(rrr_passes=1)
    for name in list(router.routes):
        router.rip_up(name)
    assert router._edge_nets == {}


def test_deadline_ticker_first_tick_checks():
    """Stride batching must not delay the very first deadline check."""
    ticker = DeadlineTicker("test.site", stride=64)
    with deadline_scope(0.0, "zero"):
        with pytest.raises(DeadlineExceeded):
            ticker.tick()


def test_deadline_ticker_strides():
    ticker = DeadlineTicker("test.site", stride=8)
    with deadline_scope(1e9, "slack"):
        for _ in range(100):
            ticker.tick()
    # After the scope closes an expired check would raise; ticks between
    # checkpoint ticks must not consult the (now absent) deadline stack.
    ticker2 = DeadlineTicker("test.site", stride=4)
    ticker2.tick()  # checkpoint (no scope open: no-op)
    with deadline_scope(0.0, "zero"):
        ticker2.tick()  # 1 of 4: batched, must not raise
        ticker2.tick()  # 2 of 4
        ticker2.tick()  # 3 of 4
        with pytest.raises(DeadlineExceeded):
            ticker2.tick()  # 4 of 4: checkpoint fires

"""Unit tests for the design database."""

import pytest

from repro.geom import Orientation, Point, Rect
from repro.db import Cell, Design, IOPin, Net, NetPin, Blockage, check_legality
from repro.tech import PinDirection

from helpers import add_cell, add_two_pin_net, build_tiny_design


def test_cell_geometry(tech45):
    inv = tech45.macros["INV_X1"]
    cell = Cell("u", inv, x=1000, y=2800)
    assert cell.width == inv.width
    assert cell.bbox() == Rect(1000, 2800, 1000 + inv.width, 2800 + inv.height)
    assert cell.center == Point(1000 + inv.width // 2, 2800 + inv.height // 2)


def test_cell_pin_position_follows_orientation(tech45):
    inv = tech45.macros["INV_X1"]
    north = Cell("n", inv, x=0, y=0, orient=Orientation.N)
    flipped = Cell("f", inv, x=0, y=0, orient=Orientation.FS)
    pn = north.pin_position("A")
    pf = flipped.pin_position("A")
    assert pn.x == pf.x
    assert pf.y == inv.height - pn.y


def test_duplicate_cell_rejected(tech45):
    design = build_tiny_design(tech45)
    add_cell(design, "u1", "INV_X1", 0, 0)
    with pytest.raises(ValueError):
        add_cell(design, "u1", "INV_X1", 5, 0)


def test_move_cell_updates_spatial(tech45):
    design = build_tiny_design(tech45)
    cell = add_cell(design, "u1", "INV_X1", 0, 0)
    assert design.spatial.query(cell.bbox()) == ["u1"]
    design.move_cell("u1", design.rows[1].site_x(5), design.rows[1].origin_y)
    assert design.spatial.query(Rect(0, 0, 100, 100)) == []
    assert "u1" in design.spatial.query(design.cells["u1"].bbox())


def test_move_fixed_cell_rejected(tech45):
    design = build_tiny_design(tech45)
    cell = add_cell(design, "u1", "INV_X1", 0, 0)
    cell.fixed = True
    with pytest.raises(ValueError):
        design.move_cell("u1", 0, 0)


def test_nets_and_connectivity(tiny_design):
    d = tiny_design
    assert {n.name for n in d.nets_of_cell("u1")} == {"n1"}
    assert d.connected_cells("u1") == {"u2"}
    assert d.connected_cells("u4") == {"u3"}
    assert d.nets["n1"].degree == 2


def test_net_hpwl_and_bbox(tiny_design):
    d = tiny_design
    net = d.nets["n1"]
    p1 = d.pin_point(net.pins[0])
    p2 = d.pin_point(net.pins[1])
    assert d.net_hpwl(net) == abs(p1.x - p2.x) + abs(p1.y - p2.y)
    assert d.total_hpwl() == sum(d.net_hpwl(n) for n in d.nets.values())


def test_single_pin_net_hpwl_zero(tech45):
    design = build_tiny_design(tech45)
    add_cell(design, "u1", "INV_X1", 0, 0)
    net = Net("loner")
    net.add_pin(NetPin("u1", "Y"))
    design.add_net(net)
    assert design.net_hpwl(net) == 0


def test_iopin_lookup(tech45):
    design = build_tiny_design(tech45)
    pin = IOPin(
        "io0", Point(0, 700), layer=8, rect=Rect(-50, 650, 50, 750),
        direction=PinDirection.INPUT,
    )
    design.add_iopin(pin)
    net = Net("n")
    net.add_pin(NetPin(None, "io0"))
    design.add_net(net)
    assert design.pin_point(net.pins[0]) == Point(0, 700)
    assert design.pin_layer(net.pins[0]) == 8


def test_row_helpers(tech45):
    design = build_tiny_design(tech45)
    row = design.rows[1]
    assert design.row_at_y(row.origin_y) is row
    assert design.row_at_y(row.origin_y + 1) is None
    assert design.row_containing(row.origin_y + 10) is row
    assert row.snap_x(row.site_x(3) + 40) == row.site_x(3)
    assert row.snap_x(-999999) == row.site_x(0)


def test_blockage_split(tech45):
    design = build_tiny_design(tech45)
    design.add_blockage(Blockage(-1, Rect(0, 0, 100, 100)))
    design.add_blockage(Blockage(2, Rect(0, 0, 100, 100)))
    assert len(design.placement_blockages()) == 1
    assert len(design.routing_blockages()) == 1


def test_utilization_and_stats(tiny_design):
    stats = tiny_design.stats()
    assert stats["cells"] == 4
    assert stats["nets"] == 2
    assert 0 < stats["utilization"] < 1


# --------------------------------------------------------------- legality


def test_legal_design_reports_clean(tiny_design):
    report = check_legality(tiny_design)
    assert report.is_legal, report.summary()


def test_overlap_detected(tech45):
    design = build_tiny_design(tech45)
    add_cell(design, "u1", "DFF_X1", 0, 0)
    add_cell(design, "u2", "INV_X1", 2, 0)  # overlaps the 8-site DFF
    report = check_legality(design)
    assert ("u1", "u2") in report.overlaps


def test_abutting_cells_are_legal(tech45):
    design = build_tiny_design(tech45)
    add_cell(design, "u1", "INV_X1", 0, 0)
    add_cell(design, "u2", "INV_X1", 2, 0)
    assert check_legality(design).is_legal


def test_off_site_detected(tech45):
    design = build_tiny_design(tech45)
    cell = add_cell(design, "u1", "INV_X1", 0, 0)
    cell.x += 17  # knock off the site grid
    design.spatial.move("u1", cell.bbox())
    report = check_legality(design)
    assert "u1" in report.off_site


def test_off_row_detected(tech45):
    design = build_tiny_design(tech45)
    cell = add_cell(design, "u1", "INV_X1", 0, 0)
    cell.y += 100
    design.spatial.move("u1", cell.bbox())
    report = check_legality(design)
    assert "u1" in report.off_row


def test_bad_orientation_detected(tech45):
    design = build_tiny_design(tech45)
    cell = add_cell(design, "u1", "INV_X1", 0, 1)
    cell.orient = Orientation.N  # row 1 wants FS
    report = check_legality(design)
    assert "u1" in report.bad_orient
    assert check_legality(design, check_orient=False).is_legal


def test_out_of_die_detected(tech45):
    design = build_tiny_design(tech45)
    cell = add_cell(design, "u1", "INV_X1", 0, 0)
    cell.x = -400
    design.spatial.move("u1", cell.bbox())
    report = check_legality(design)
    assert "u1" in report.out_of_die


def test_blocked_cell_detected(tech45):
    design = build_tiny_design(tech45)
    add_cell(design, "u1", "INV_X1", 0, 0)
    design.add_blockage(Blockage(-1, Rect(0, 0, 10000, 1400)))
    report = check_legality(design)
    assert "u1" in report.blocked

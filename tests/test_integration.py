"""End-to-end integration invariants on a mid-size generated design."""

import pytest

from repro.db import check_legality
from repro.lefdef import parse_def, parse_lef, write_def, write_lef
from repro.flow import run_flow
from repro.core import CrpConfig

from helpers import fresh_small


@pytest.fixture(scope="module")
def crp_flow_result():
    design = fresh_small(seed=77, num_cells=120, num_nets=110)
    result = run_flow(
        design,
        mode="crp",
        crp_iterations=2,
        config=CrpConfig(seed=5, max_targets=3),
    )
    return design, result


def test_flow_leaves_design_legal(crp_flow_result):
    design, result = crp_flow_result
    assert result.legal
    assert check_legality(design).is_legal


def test_flow_routes_every_net(crp_flow_result):
    design, result = crp_flow_result
    assert result.quality is not None
    assert result.quality.vias > 0
    # No open nets: every terminal was reached (possibly via a short).
    assert result.quality.drv_breakdown.get("open", 0) == 0


def test_flow_quality_score_positive(crp_flow_result):
    _, result = crp_flow_result
    assert result.quality.score > 0
    assert result.quality.wirelength_units > 0


def test_post_crp_def_round_trips(crp_flow_result):
    design, _ = crp_flow_result
    tech = parse_lef(write_lef(design.tech))
    back = parse_def(write_def(design), tech)
    assert len(back.cells) == len(design.cells)
    for name, cell in design.cells.items():
        assert (back.cells[name].x, back.cells[name].y) == (cell.x, cell.y)
    # The re-parsed design is as legal as the in-memory one.
    assert check_legality(back).is_legal


def test_crp_histories_populated(crp_flow_result):
    design, result = crp_flow_result
    assert result.crp is not None
    if result.crp.total_moved:
        assert design.moved_history
    assert design.critical_history


def test_runtime_accounting_complete(crp_flow_result):
    _, result = crp_flow_result
    assert set(result.runtime) == {"GR", "CRP", "DR"}
    assert all(v >= 0 for v in result.runtime.values())
    breakdown = result.crp.runtime_breakdown()
    assert sum(breakdown.values()) <= result.runtime["CRP"] + 0.5

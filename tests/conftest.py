"""Shared fixtures: a small technology and hand-built tiny designs."""

from __future__ import annotations

import pytest

from repro.benchgen import build_tech
from repro.benchgen.generator import DesignSpec, generate_design

from helpers import add_cell, add_two_pin_net, build_tiny_design


@pytest.fixture(scope="session")
def tech45():
    """The synthetic 45 nm technology (session-cached, treat as const)."""
    return build_tech("45nm")


@pytest.fixture(scope="session")
def tech32():
    return build_tech("32nm")


@pytest.fixture()
def tiny_design(tech45):
    """Four cells in two rows with two nets — the workhorse fixture."""
    design = build_tiny_design(tech45)
    add_cell(design, "u1", "INV_X1", 0, 0)
    add_cell(design, "u2", "NAND2_X1", 10, 0)
    add_cell(design, "u3", "INV_X1", 4, 1)
    add_cell(design, "u4", "DFF_X1", 18, 1)
    add_two_pin_net(design, "n1", "u1", "u2")
    add_two_pin_net(design, "n2", "u3", "u4", pin_b="D")
    return design


@pytest.fixture(scope="session")
def small_generated():
    """A generated ~60-cell design (session-cached; do not mutate)."""
    spec = DesignSpec(
        name="unit_small",
        num_cells=60,
        num_nets=50,
        utilization=0.7,
        gcells_per_axis=8,
        num_iopins=4,
        seed=42,
    )
    return generate_design(spec)

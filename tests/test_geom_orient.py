"""Unit tests for orientations and shape transforms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom import Orientation, Rect, transform_rect

MACRO_W, MACRO_H = 400, 1400


def test_for_row_alternates():
    assert Orientation.for_row(0) is Orientation.N
    assert Orientation.for_row(1) is Orientation.FS
    assert Orientation.for_row(2) is Orientation.N


def test_north_is_identity():
    shape = Rect(10, 20, 30, 40)
    assert transform_rect(shape, Orientation.N, MACRO_W, MACRO_H) == shape


def test_fs_flips_vertically():
    shape = Rect(10, 0, 30, 100)
    out = transform_rect(shape, Orientation.FS, MACRO_W, MACRO_H)
    assert out == Rect(10, MACRO_H - 100, 30, MACRO_H)


def test_s_rotates_180():
    shape = Rect(0, 0, 100, 200)
    out = transform_rect(shape, Orientation.S, MACRO_W, MACRO_H)
    assert out == Rect(MACRO_W - 100, MACRO_H - 200, MACRO_W, MACRO_H)


def test_fn_flips_horizontally():
    shape = Rect(0, 10, 100, 20)
    out = transform_rect(shape, Orientation.FN, MACRO_W, MACRO_H)
    assert out == Rect(MACRO_W - 100, 10, MACRO_W, 20)


def test_rotations_swap_axes():
    for orient in (Orientation.W, Orientation.E, Orientation.FW, Orientation.FE):
        assert orient.swaps_axes
    for orient in (Orientation.N, Orientation.S, Orientation.FN, Orientation.FS):
        assert not orient.swaps_axes


@st.composite
def shapes(draw):
    lx = draw(st.integers(0, MACRO_W - 1))
    ly = draw(st.integers(0, MACRO_H - 1))
    ux = draw(st.integers(lx, MACRO_W))
    uy = draw(st.integers(ly, MACRO_H))
    return Rect(lx, ly, ux, uy)


@given(shapes(), st.sampled_from(list(Orientation)))
def test_transform_preserves_area(shape, orient):
    out = transform_rect(shape, orient, MACRO_W, MACRO_H)
    assert out.area == shape.area


@given(shapes(), st.sampled_from([Orientation.N, Orientation.S, Orientation.FN, Orientation.FS]))
def test_non_rotating_transform_stays_in_macro(shape, orient):
    out = transform_rect(shape, orient, MACRO_W, MACRO_H)
    assert 0 <= out.lx <= out.ux <= MACRO_W
    assert 0 <= out.ly <= out.uy <= MACRO_H


@given(shapes())
def test_double_flip_is_identity(shape):
    once = transform_rect(shape, Orientation.FS, MACRO_W, MACRO_H)
    twice = transform_rect(once, Orientation.FS, MACRO_W, MACRO_H)
    assert twice == shape

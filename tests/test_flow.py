"""Integration tests: the full GR -> movement -> DR flow."""

import pytest

from repro.flow import run_flow, runtime_breakdown_pct
from repro.flow.runtime import FIG3_STAGES
from repro.core import CrpConfig

from helpers import fresh_small


def test_flow_baseline():
    result = run_flow(fresh_small(), mode="baseline")
    assert result.quality is not None
    assert result.quality.wirelength_dbu > 0
    assert result.quality.vias > 0
    assert result.legal
    assert set(result.runtime) == {"GR", "DR"}


def test_flow_crp_k2():
    result = run_flow(
        fresh_small(),
        mode="crp",
        crp_iterations=2,
        config=CrpConfig(seed=1, max_targets=3),
    )
    assert result.crp is not None
    assert len(result.crp.iterations) == 2
    assert result.legal
    assert "CRP" in result.runtime
    pct = runtime_breakdown_pct(result)
    assert set(pct) == set(FIG3_STAGES)
    assert sum(pct.values()) == pytest.approx(100.0)
    assert pct["ECC"] > 0


def test_flow_fontana():
    result = run_flow(fresh_small(), mode="fontana")
    assert result.fontana is not None
    assert not result.failed
    assert result.legal
    assert "BASELINE" in result.runtime


def test_flow_fontana_budget_failure():
    result = run_flow(fresh_small(), mode="fontana", baseline_budget_s=0.0)
    assert result.failed
    assert result.quality is None
    assert "FAILED" in result.summary()


def test_flow_skip_detailed():
    result = run_flow(fresh_small(), mode="baseline", skip_detailed=True)
    assert result.quality is None
    assert result.gr_wirelength_dbu > 0
    assert "DR" not in result.runtime


def test_flow_unknown_mode():
    with pytest.raises(ValueError):
        run_flow(fresh_small(), mode="magic")


def test_flow_crp_improves_or_matches_baseline_gr():
    """On the same design, CR&P must not worsen the GR-level metrics."""
    base = run_flow(fresh_small(seed=33), mode="baseline", skip_detailed=True)
    crp = run_flow(
        fresh_small(seed=33),
        mode="crp",
        crp_iterations=2,
        skip_detailed=True,
        config=CrpConfig(seed=1),
    )
    base_score = 0.5 * base.gr_wirelength_dbu / 200 + 2.0 * base.gr_vias
    crp_score = 0.5 * crp.gr_wirelength_dbu / 200 + 2.0 * crp.gr_vias
    assert crp_score <= base_score * 1.02

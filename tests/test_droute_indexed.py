"""Bit-exact parity suite: indexed detailed-routing kernel vs dict oracle.

The flat-array kernel (``use_indexed=True``, the default) must produce
byte-identical routes, violations, and quality to the dict-of-tuples
oracle (``use_indexed=False``) on every design — same discipline as the
grid cost field's scalar oracle.  Any divergence is a kernel bug, never
an acceptable approximation.
"""

from __future__ import annotations

import pytest

from repro.droute import DetailedRouter
from repro.droute.indexed import BLOCKED_ID, FREE, DrouteIndex
from repro.droute.lattice import TrackLattice
from repro.droute.obstacles import BLOCKED, build_obstacle_map
from repro.groute import GlobalRouter

from helpers import add_cell, add_two_pin_net, build_tiny_design, fresh_small


def signature(result):
    """Everything observable about a DetailedResult, fully ordered."""
    return (
        sorted(
            (name, tuple(tuple(node) for node in path))
            for name, paths in result.paths.items()
            for path in paths
        ),
        sorted(
            (v.kind.value, v.layer, v.net_a, v.net_b, v.node)
            for v in result.violations
        ),
        result.wirelength_dbu,
        result.vias,
    )


def route_both(design_factory, guides_from_gr: bool, **router_kw):
    """Route two fresh copies, oracle and indexed; return signatures."""
    sigs = []
    for use_indexed in (False, True):
        design = design_factory()
        guides = None
        if guides_from_gr:
            gr = GlobalRouter(design)
            gr.route_all()
            guides = gr.guides()
        router = DetailedRouter(design, use_indexed=use_indexed, **router_kw)
        sigs.append(signature(router.route_all(guides)))
    return sigs


# ------------------------------------------------------------------ index


def test_index_interns_owner_map(tech45):
    design = build_tiny_design(tech45, num_rows=4, sites_per_row=30)
    add_cell(design, "a", "INV_X1", 1, 0)
    add_cell(design, "b", "INV_X1", 20, 2)
    add_two_pin_net(design, "n", "a", "b")
    lattice = TrackLattice(design.tech, design.die)
    owner, _ = build_obstacle_map(design, lattice)
    index = DrouteIndex(lattice, owner)
    assert index.intern(BLOCKED) == BLOCKED_ID
    nid_of_net = index.intern("n")
    assert nid_of_net >= 2
    for node, name in owner.items():
        nid = index.nid_of(node)
        assert index.owner[nid] == index.intern(name)
        assert index.node_of(nid) == node
    # Nodes absent from the dict map are FREE in the dense array.
    assert FREE == 0 and index.owner.count(FREE) > 0


def test_index_roundtrips_node_ids(tech45):
    design = build_tiny_design(tech45)
    lattice = TrackLattice(design.tech, design.die)
    index = DrouteIndex(lattice, {})
    for node in [(0, 0, 0), (1, 2, 3), (index.num_layers - 1, 0, 1)]:
        assert index.node_of(index.nid_of(node)) == node


# ----------------------------------------------------------------- parity


@pytest.mark.parametrize("seed", [3, 11, 29, 47])
def test_randomized_parity_with_guides(seed):
    """Guided DR (the production path) is bit-exact across backends."""
    oracle, indexed = route_both(
        lambda: fresh_small(seed=seed, num_cells=80, num_nets=70),
        guides_from_gr=True,
    )
    assert indexed == oracle


@pytest.mark.parametrize("seed", [5, 17])
def test_randomized_parity_unguided(seed):
    """Unguided DR exercises the no-guide kernel loops."""
    oracle, indexed = route_both(
        lambda: fresh_small(seed=seed, num_cells=60, num_nets=50),
        guides_from_gr=False,
    )
    assert indexed == oracle


def test_parity_through_ripup_rounds():
    """Conflict rip-up rounds (soft reroutes) stay bit-exact."""
    oracle, indexed = route_both(
        lambda: fresh_small(seed=23, num_cells=100, num_nets=90,
                            utilization=0.8),
        guides_from_gr=True,
        drc_rounds=3,
    )
    assert indexed == oracle


def test_parity_min_area_patching(tech45):
    """A via-stack net needing min-area patches patches identically."""

    def factory():
        design = build_tiny_design(tech45, num_rows=4, sites_per_row=30)
        add_cell(design, "a", "INV_X1", 1, 0)
        add_cell(design, "b", "INV_X1", 20, 3)
        add_two_pin_net(design, "n", "a", "b")
        return design

    oracle, indexed = route_both(factory, guides_from_gr=False)
    assert indexed == oracle


def test_parity_dense_conflicts(tech45):
    """Nets forced through one corridor (shorts, soft fallbacks)."""

    def factory():
        design = build_tiny_design(tech45, num_rows=2, sites_per_row=20)
        add_cell(design, "a0", "INV_X1", 0, 0)
        add_cell(design, "b0", "INV_X1", 18, 0)
        add_cell(design, "a1", "INV_X1", 2, 0)
        add_cell(design, "b1", "INV_X1", 16, 0)
        add_two_pin_net(design, "n0", "a0", "b0")
        add_two_pin_net(design, "n1", "a1", "b1")
        return design

    oracle, indexed = route_both(factory, guides_from_gr=False)
    assert indexed == oracle


def test_indexed_is_default():
    design = fresh_small()
    assert DetailedRouter(design).use_indexed is True
    assert DetailedRouter(design).ctor_args["use_indexed"] is True

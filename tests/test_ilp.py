"""Unit and property tests for the ILP substrate (all three backends)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import IlpModel, Sense, SolveStatus, solve

BACKENDS = ("scipy", "bnb", "exhaustive")


def knapsack_model():
    """max value knapsack as min of negated values."""
    model = IlpModel("knapsack")
    items = [(-60, 10), (-100, 20), (-120, 30)]
    vars_ = [model.add_binary(f"x{i}", cost=v) for i, (v, _) in enumerate(items)]
    model.add_constraint(
        [(x, w) for x, (_, w) in zip(vars_, items)], Sense.LE, 50.0, "cap"
    )
    return model


@pytest.mark.parametrize("backend", BACKENDS)
def test_knapsack_optimum(backend):
    solution = solve(knapsack_model(), backend=backend)
    assert solution.ok
    assert solution.objective == pytest.approx(-220.0)
    assert solution.chosen() == ["x1", "x2"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_infeasible_detected(backend):
    model = IlpModel()
    x = model.add_binary("x")
    model.add_constraint([(x, 1.0)], Sense.GE, 2.0)
    assert solve(model, backend=backend).status is SolveStatus.INFEASIBLE


@pytest.mark.parametrize("backend", ("scipy", "bnb"))
def test_empty_model(backend):
    model = IlpModel()
    solution = solve(model, backend=backend)
    assert solution.ok
    assert solution.objective == 0.0


def test_exactly_one_convenience():
    model = IlpModel()
    a = model.add_binary("a", cost=5.0)
    b = model.add_binary("b", cost=3.0)
    c = model.add_binary("c", cost=9.0)
    model.add_exactly_one([a, b, c])
    solution = solve(model)
    assert solution.chosen() == ["b"]


def test_duplicate_variable_rejected():
    model = IlpModel()
    model.add_binary("x")
    with pytest.raises(ValueError):
        model.add_binary("x")


def test_constraint_unknown_variable_rejected():
    model = IlpModel()
    with pytest.raises(ValueError):
        model.add_constraint([(3, 1.0)], Sense.LE, 1.0)


def test_exhaustive_rejects_large_models():
    model = IlpModel()
    for i in range(30):
        model.add_binary(f"x{i}")
    with pytest.raises(ValueError):
        solve(model, backend="exhaustive")


def test_exhaustive_rejects_non_binary():
    model = IlpModel()
    model.add_variable("x", lower=0.0, upper=5.0)
    with pytest.raises(ValueError):
        solve(model, backend="exhaustive")


def test_is_feasible_checks_everything():
    model = IlpModel()
    x = model.add_binary("x")
    y = model.add_binary("y")
    model.add_constraint([(x, 1.0), (y, 1.0)], Sense.EQ, 1.0)
    assert model.is_feasible([1.0, 0.0])
    assert not model.is_feasible([1.0, 1.0])
    assert not model.is_feasible([0.5, 0.5])  # integrality
    assert not model.is_feasible([2.0, -1.0])  # bounds


def test_unknown_backend():
    with pytest.raises(ValueError):
        solve(IlpModel(), backend="cplex")


@st.composite
def random_models(draw):
    """Small random assignment-flavoured ILPs."""
    n_groups = draw(st.integers(1, 3))
    per_group = draw(st.integers(1, 3))
    model = IlpModel("random")
    groups = []
    for g in range(n_groups):
        vars_ = [
            model.add_binary(
                f"y{g}_{i}",
                cost=draw(
                    st.floats(min_value=0, max_value=100, allow_nan=False)
                ),
            )
            for i in range(per_group)
        ]
        model.add_exactly_one(vars_)
        groups.append(vars_)
    # Random LE couplings
    all_vars = [v for vs in groups for v in vs]
    if len(all_vars) >= 2:
        n_extra = draw(st.integers(0, 3))
        for _ in range(n_extra):
            chosen = draw(
                st.lists(
                    st.sampled_from(all_vars), min_size=2, max_size=4, unique=True
                )
            )
            model.add_constraint([(v, 1.0) for v in chosen], Sense.LE, 1.0)
    return model


@settings(max_examples=30, deadline=None)
@given(random_models())
def test_backends_agree(model):
    """HiGHS, branch-and-bound, and enumeration find the same optimum."""
    results = {}
    for backend in BACKENDS:
        results[backend] = solve(model, backend=backend)
    statuses = {backend: r.status for backend, r in results.items()}
    assert len(set(statuses.values())) == 1, statuses
    if results["scipy"].ok:
        objectives = [r.objective for r in results.values()]
        assert max(objectives) - min(objectives) < 1e-6
        for r in results.values():
            values = [r.values[v.name] for v in model.variables]
            assert model.is_feasible(values)

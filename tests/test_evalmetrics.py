"""Unit tests for the ISPD-2018-style scorer."""

import pytest

from repro.droute.router import DetailedResult
from repro.droute.drc import DrcKind, DrcViolation
from repro.evalmetrics import EvalWeights, evaluate
from repro.benchgen import build_tech


def make_result(wl=10000, vias=10, shorts=0, min_area=0, opens=0):
    result = DetailedResult(wirelength_dbu=wl, vias=vias)
    for _ in range(shorts):
        result.violations.append(
            DrcViolation(DrcKind.SHORT, 1, "a", "b")
        )
    for _ in range(min_area):
        result.violations.append(DrcViolation(DrcKind.MIN_AREA, 1, "a"))
    for _ in range(opens):
        result.violations.append(DrcViolation(DrcKind.OPEN, 0, "a"))
    return result


def test_score_weights(tech45):
    score = evaluate("d", tech45, make_result(wl=2000, vias=3, shorts=2))
    # 2000 DBU = 10 pitches of 200; 0.5*10 + 2*3 + 500*2
    assert score.wirelength_units == pytest.approx(10.0)
    assert score.score == pytest.approx(0.5 * 10 + 2.0 * 3 + 500.0 * 2)
    assert score.drvs == 2
    assert score.drv_breakdown == {"short": 2}


def test_custom_weights(tech45):
    weights = EvalWeights(wire=1.0, via=1.0, short=0.0)
    score = evaluate("d", tech45, make_result(wl=200, vias=1, shorts=5), weights)
    assert score.score == pytest.approx(1.0 + 1.0)


def test_open_penalty_dominates(tech45):
    with_open = evaluate("d", tech45, make_result(opens=1))
    without = evaluate("d", tech45, make_result())
    assert with_open.score - without.score == pytest.approx(1500.0)


def test_improvement_over(tech45):
    base = evaluate("d", tech45, make_result(wl=10000, vias=100))
    better = evaluate("d", tech45, make_result(wl=9900, vias=90))
    imp = better.improvement_over(base)
    assert imp["wirelength"] == pytest.approx(1.0)
    assert imp["vias"] == pytest.approx(10.0)
    assert imp["drvs"] == 0


def test_improvement_zero_baseline(tech45):
    base = evaluate("d", tech45, make_result(wl=0, vias=0))
    other = evaluate("d", tech45, make_result(wl=100, vias=1))
    imp = other.improvement_over(base)
    assert imp["wirelength"] == 0.0

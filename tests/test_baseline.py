"""Unit tests for the Fontana et al. [18] reimplementation."""

import pytest

from repro.db import check_legality
from repro.groute import GlobalRouter
from repro.baseline import FontanaBaseline

from helpers import fresh_small


@pytest.fixture()
def routed():
    design = fresh_small(seed=21)
    router = GlobalRouter(design)
    router.route_all()
    return design, router


def test_baseline_moves_cells_and_stays_legal(routed):
    design, router = routed
    baseline = FontanaBaseline(design, router)
    result = baseline.run()
    assert not result.failed
    assert result.iterations == 1
    assert result.moved_cells >= 0
    assert check_legality(design).is_legal


def test_baseline_does_not_worsen_flat_cost(routed):
    design, router = routed
    before = sum(router.net_cost(n) for n in design.nets)
    FontanaBaseline(design, router).run()
    after = sum(router.net_cost(n) for n in design.nets)
    # The selection ILP only takes non-worsening moves under its own
    # (congestion-blind) metric; the congested metric may differ but
    # should not explode.
    assert after <= before * 1.1


def test_baseline_time_budget_reports_failure(routed):
    design, router = routed
    baseline = FontanaBaseline(design, router, time_budget_s=0.0)
    result = baseline.run()
    assert result.failed


def test_baseline_reroutes_dirty_nets(routed):
    design, router = routed
    baseline = FontanaBaseline(design, router)
    result = baseline.run()
    if result.moved_cells:
        assert result.rerouted_nets > 0
    # Routing state stays consistent after rerouting.
    expected_vias = sum(r.via_count() for r in router.routes.values())
    assert router.total_vias() == expected_vias

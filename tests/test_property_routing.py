"""Property-based tests for the routing engines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geom import Point
from repro.db.design import GCellGridSpec
from repro.grid import EdgeKind, GCellGrid, RoutingGraph, CostModel
from repro.groute import PatternRouter3D, maze_route, pattern_paths_2d
from repro.benchgen import build_tech

_TECH = build_tech("45nm")
_GRID = GCellGrid(GCellGridSpec(0, 0, 2000, 2000, 12, 12))


def _fresh_graph() -> RoutingGraph:
    return RoutingGraph(_GRID, _TECH)


gpoints = st.tuples(st.integers(0, 11), st.integers(0, 11))


@settings(max_examples=50, deadline=None)
@given(gpoints, gpoints)
def test_patterns_are_monotone_and_terminal_correct(a, b):
    for path in pattern_paths_2d(a, b):
        assert path[0] == a and path[-1] == b
        # Each run is axis aligned and total length equals manhattan.
        length = 0
        for (x0, y0), (x1, y1) in zip(path[:-1], path[1:]):
            assert x0 == x1 or y0 == y1
            length += abs(x1 - x0) + abs(y1 - y0)
        assert length == abs(a[0] - b[0]) + abs(a[1] - b[1])


def _edges_connect(graph, edges, src, dst):
    if src == dst and not edges:
        return True
    adjacency = {}
    for edge in edges:
        p, q = edge.endpoints(graph)
        adjacency.setdefault(p, set()).add(q)
        adjacency.setdefault(q, set()).add(p)
    if src not in adjacency:
        return False
    seen = {src}
    stack = [src]
    while stack:
        cur = stack.pop()
        for nxt in adjacency.get(cur, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return dst in seen


@settings(max_examples=40, deadline=None)
@given(gpoints, gpoints, st.integers(0, 8), st.integers(0, 8))
def test_pattern3d_routes_connect_endpoints(a, b, src_layer, dst_layer):
    graph = _fresh_graph()
    router = PatternRouter3D(graph, CostModel(graph), min_layer=1)
    paths = pattern_paths_2d(a, b)
    result = router.route(paths[0], src_layer, dst_layer)
    assert result is not None
    src = (src_layer, a[0], a[1])
    dst = (dst_layer, b[0], b[1])
    assert _edges_connect(graph, result.edges, src, dst)
    # Cost is the sum of edge costs under the same model.
    model = CostModel(graph)
    assert abs(result.cost - model.path_cost(result.edges)) < 1e-6


@settings(max_examples=25, deadline=None)
@given(gpoints, gpoints, st.integers(1, 8), st.integers(1, 8))
def test_maze_matches_pattern_quality_or_better(a, b, src_layer, dst_layer):
    """On an empty graph, maze routing never loses to pattern routing."""
    graph = _fresh_graph()
    cost = CostModel(graph)
    pattern = PatternRouter3D(graph, cost, min_layer=1)
    best_pattern = None
    for path in pattern_paths_2d(a, b):
        result = pattern.route(path, src_layer, dst_layer)
        if result and (best_pattern is None or result.cost < best_pattern):
            best_pattern = result.cost
    maze = maze_route(
        graph, cost, {(src_layer, a[0], a[1])}, {(dst_layer, b[0], b[1])},
        margin=12,
    )
    assert maze is not None
    maze_cost = cost.path_cost(maze)
    assert best_pattern is not None
    assert maze_cost <= best_pattern + 1e-6


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 8), st.integers(0, 11), st.integers(0, 11)),
                min_size=2, max_size=6, unique=True))
def test_maze_multi_source_reaches_some_target(nodes):
    graph = _fresh_graph()
    cost = CostModel(graph)
    sources = {nodes[0]}
    targets = set(nodes[1:])
    path = maze_route(graph, cost, sources, targets, margin=12)
    assert path is not None
    if not path:
        assert sources & targets
        return
    endpoints = set()
    for edge in path:
        p, q = edge.endpoints(graph)
        endpoints.add(p)
        endpoints.add(q)
    assert endpoints & sources
    assert endpoints & targets

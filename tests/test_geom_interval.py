"""Unit tests for 1-D intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom import Interval, merge_intervals, subtract_interval


def test_malformed_interval():
    with pytest.raises(ValueError):
        Interval(5, 2)


def test_length_and_contains():
    iv = Interval(2, 10)
    assert iv.length == 8
    assert iv.contains(2) and iv.contains(10) and iv.contains(5)
    assert not iv.contains(11)


def test_overlaps():
    assert Interval(0, 5).overlaps(Interval(4, 9))
    assert not Interval(0, 5).overlaps(Interval(5, 9))  # touching, strict
    assert Interval(0, 5).overlaps(Interval(5, 9), strict=False)


def test_intersection():
    assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
    assert Interval(0, 2).intersection(Interval(5, 9)) is None


def test_merge_intervals():
    merged = merge_intervals(
        [Interval(5, 7), Interval(0, 2), Interval(2, 4), Interval(10, 12)]
    )
    assert merged == [Interval(0, 4), Interval(5, 7), Interval(10, 12)]
    assert merge_intervals([]) == []


def test_subtract_disjoint():
    assert subtract_interval(Interval(0, 10), Interval(20, 30)) == [Interval(0, 10)]


def test_subtract_middle():
    assert subtract_interval(Interval(0, 10), Interval(3, 7)) == [
        Interval(0, 3),
        Interval(7, 10),
    ]


def test_subtract_edge():
    assert subtract_interval(Interval(0, 10), Interval(0, 4)) == [Interval(4, 10)]
    assert subtract_interval(Interval(0, 10), Interval(6, 10)) == [Interval(0, 6)]


def test_subtract_covering():
    assert subtract_interval(Interval(2, 8), Interval(0, 10)) == []


@st.composite
def intervals(draw):
    lo = draw(st.integers(-1000, 1000))
    hi = draw(st.integers(lo, lo + 500))
    return Interval(lo, hi)


@given(st.lists(intervals(), max_size=20))
def test_merge_produces_disjoint_sorted(ivs):
    merged = merge_intervals(ivs)
    for a, b in zip(merged[:-1], merged[1:]):
        assert a.hi < b.lo


@given(intervals(), intervals())
def test_subtract_never_overlaps_hole(base, hole):
    for piece in subtract_interval(base, hole):
        assert not piece.overlaps(hole)
        assert base.lo <= piece.lo <= piece.hi <= base.hi

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "ispd18_test1" in out
    assert "ispd18_test10" in out
    assert "45nm" in out and "32nm" in out


def test_run_requires_bench():
    with pytest.raises(SystemExit):
        main(["run"])


def test_run_skip_detailed(capsys):
    assert main(["run", "-b", "ispd18_test1", "-m", "baseline", "--skip-detailed"]) == 0
    out = capsys.readouterr().out
    assert "ispd18_test1" in out


def test_dump_writes_files(tmp_path, capsys):
    assert main(["dump", "-b", "ispd18_test1", "-o", str(tmp_path)]) == 0
    assert (tmp_path / "ispd18_test1.lef").exists()
    assert (tmp_path / "ispd18_test1.def").exists()
    assert (tmp_path / "ispd18_test1.guide").exists()
    # Round-trip what we dumped.
    from repro.lefdef import parse_def, parse_guides, parse_lef

    tech = parse_lef((tmp_path / "ispd18_test1.lef").read_text())
    design = parse_def((tmp_path / "ispd18_test1.def").read_text(), tech)
    guides = parse_guides((tmp_path / "ispd18_test1.guide").read_text(), tech)
    assert design.name == "ispd18_test1"
    assert set(guides) <= set(design.nets)


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_show_renders_heatmap(tmp_path, capsys):
    svg = tmp_path / "die.svg"
    assert main(["show", "-b", "ispd18_test1", "--svg", str(svg)]) == 0
    out = capsys.readouterr().out
    assert "legend" in out
    assert "Metal1" in out
    assert svg.exists()
    assert svg.read_text().startswith("<svg")


def test_check_clean_flow(tmp_path, capsys):
    report = tmp_path / "check.json"
    assert main(["check", "-b", "ispd18_test1", "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    import json

    document = json.loads(report.read_text())
    assert document["schema"] == "repro.analyze/1"
    assert document["design"] == "ispd18_test1"
    assert document["findings"] == []


def test_check_skip_routing(capsys):
    assert main(["check", "-b", "ispd18_test1", "--skip-routing"]) == 0
    assert "clean" in capsys.readouterr().out


def test_analyze_clean_file(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1\n")
    report = tmp_path / "analysis.json"
    assert main(["analyze", str(mod), "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert report.exists()


def test_analyze_finding_fails(tmp_path, capsys, monkeypatch):
    # chdir so the report path relativizes to `mod.py` — the absolute
    # pytest tmp dir contains `/test_`, which several rules exclude
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text("x = displacement == 0.0\n")
    assert main(["analyze", "mod.py"]) == 1
    out = capsys.readouterr().out
    assert "REPRO-D003" in out


def test_analyze_with_flow_invariants(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1\n")
    report = tmp_path / "analysis.json"
    assert main(
        ["analyze", str(mod), "-b", "ispd18_test1", "--json", str(report)]
    ) == 0
    out = capsys.readouterr().out
    assert "flow invariants: ispd18_test1" in out
    import json

    document = json.loads(report.read_text())
    assert document["flow"]["design"] == "ispd18_test1"
    assert document["flow"]["findings"] == []

"""Tests for repro.guard: deadlines, fault injection, the ILP fallback
ladder, transactional CR&P iterations, and flow stage isolation."""

import time

import pytest

from repro.db import check_legality
from repro.flow import run_flow
from repro.groute import GlobalRouter
from repro.guard import (
    DeadlineExceeded,
    FaultInjected,
    FaultPlan,
    GuardPolicy,
    check_deadline,
    current_deadline,
    deadline_scope,
    fault_point,
    remaining_budget,
    use_faults,
)
from repro.ilp import IlpModel, Sense, SolveStatus, solve
from repro.ilp.greedy import solve_greedy
from repro.core import CrpConfig, CrpFramework
from repro.obs import observe

from helpers import fresh_small


@pytest.fixture()
def routed():
    design = fresh_small()
    router = GlobalRouter(design)
    router.route_all()
    return design, router


def tiny_model() -> IlpModel:
    """Pick the cheaper of two mutually exclusive options."""
    model = IlpModel("tiny")
    a = model.add_binary("a", cost=2.0)
    b = model.add_binary("b", cost=1.0)
    model.add_exactly_one([a, b], name="one")
    return model


# --------------------------------------------------------------- deadlines


def test_no_scope_is_unbounded():
    assert current_deadline() is None
    assert remaining_budget() is None
    check_deadline("anywhere")  # no-op


def test_none_budget_is_noop():
    with deadline_scope(None) as deadline:
        assert deadline is None
        assert current_deadline() is None
        check_deadline("site")


def test_zero_budget_expires_immediately():
    with deadline_scope(0.0, name="t"):
        with pytest.raises(DeadlineExceeded) as err:
            check_deadline("unit.site")
    assert err.value.site == "unit.site"
    assert err.value.name == "t"
    # scope closed: checks pass again
    check_deadline("unit.site")


def test_outer_deadline_fires_inside_looser_inner():
    with deadline_scope(0.0, name="outer"):
        with deadline_scope(60.0, name="inner"):
            assert current_deadline().name == "inner"
            with pytest.raises(DeadlineExceeded) as err:
                check_deadline("nested")
    assert err.value.name == "outer"


def test_remaining_budget_is_tightest_scope():
    with deadline_scope(60.0), deadline_scope(0.5):
        assert remaining_budget() == pytest.approx(0.5, abs=0.2)


def test_deadline_hit_is_counted():
    with observe() as obs:
        with deadline_scope(0.0, name="x"):
            with pytest.raises(DeadlineExceeded):
                check_deadline("s")
        assert obs.metrics.counter("guard.deadline_hits") == 1
        assert obs.metrics.counter("guard.deadline.x") == 1


# --------------------------------------------------------------- faults


def test_fault_point_without_plan_is_noop():
    assert fault_point("nowhere") is None


def test_fault_fail_force_delay_and_counts():
    plan = (
        FaultPlan()
        .fail("site.fail")
        .force("site.force", "payload", times=2)
        .delay("site.delay", 0.01)
    )
    with use_faults(plan):
        with pytest.raises(FaultInjected):
            fault_point("site.fail")
        assert fault_point("site.fail") is None  # times=1 exhausted
        assert fault_point("site.force") == "payload"
        assert fault_point("site.force") == "payload"
        assert fault_point("site.force") is None
        t0 = time.perf_counter()
        assert fault_point("site.delay") is None
        assert time.perf_counter() - t0 >= 0.01
    assert plan.fired("site.fail") == 1
    assert plan.fired("site.force") == 2
    assert plan.fired() == 4
    # plan uninstalled on exit
    assert fault_point("site.force") is None


def test_fault_custom_exception_class():
    with use_faults(FaultPlan().fail("s", exc=KeyError)):
        with pytest.raises(KeyError):
            fault_point("s")


def test_unlimited_fault_times():
    with use_faults(FaultPlan().force("s", 1, times=-1)) as plan:
        for _ in range(5):
            assert fault_point("s") == 1
    assert plan.fired("s") == 5


# ---------------------------------------------------------------- ladder


def test_ladder_falls_back_on_backend_exception():
    with use_faults(FaultPlan().fail("ilp.scipy")), observe() as obs:
        solution = solve(tiny_model(), backend="auto")
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.backend == "bnb"
        assert solution.chosen() == ["b"]
        assert obs.metrics.counter("guard.fallbacks") >= 1
        assert obs.metrics.counter("guard.fallback.scipy") == 1


def test_ladder_cross_checks_single_infeasible_verdict():
    # One backend lying about infeasibility must not lose the solve.
    with use_faults(FaultPlan().force("ilp.scipy", "infeasible")):
        solution = solve(tiny_model(), backend="auto")
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.backend == "bnb"


def test_ladder_reaches_greedy_when_all_exact_rungs_die():
    plan = FaultPlan().fail("ilp.scipy").fail("ilp.bnb").fail("ilp.exhaustive")
    with use_faults(plan), observe() as obs:
        solution = solve(tiny_model(), backend="auto")
        assert solution.status is SolveStatus.FEASIBLE
        assert solution.ok
        assert solution.backend == "greedy"
        assert obs.metrics.counter("guard.fallbacks") == 3


def test_ladder_agreed_infeasible_is_trusted():
    model = IlpModel("impossible")
    a = model.add_binary("a", cost=1.0)
    b = model.add_binary("b", cost=1.0)
    model.add_constraint([(a, 1.0), (b, 1.0)], Sense.GE, 3.0, name="ge3")
    solution = solve(model, backend="auto")
    assert solution.status is SolveStatus.INFEASIBLE
    assert not solution.ok


def test_ladder_deadline_skips_to_greedy():
    with deadline_scope(0.0, name="solve"):
        solution = solve(tiny_model(), backend="auto")
    assert solution.ok
    assert solution.backend == "greedy"


def test_solve_budget_param_opens_scope():
    # A generous per-solve budget leaves the exact path untouched.
    solution = solve(tiny_model(), backend="auto", budget_s=60.0)
    assert solution.status is SolveStatus.OPTIMAL


def test_named_backend_failure_counts_and_reraises():
    with use_faults(FaultPlan().fail("ilp.scipy")), observe() as obs:
        with pytest.raises(FaultInjected):
            solve(tiny_model(), backend="scipy")
        assert obs.metrics.counter("ilp.status.error") == 1
        assert obs.metrics.counter("ilp.solves") == 1


# ---------------------------------------------------------------- greedy


def test_greedy_respects_exclusions():
    solution = solve_greedy(tiny_model())
    assert solution.status is SolveStatus.FEASIBLE
    assert solution.chosen() == ["b"]


def test_greedy_rejects_non_binary_models():
    model = IlpModel("intish")
    model.add_variable("x", cost=1.0, lower=0.0, upper=3.0, integral=True)
    with pytest.raises(ValueError):
        solve_greedy(model)


def test_greedy_empty_model_is_optimal():
    assert solve_greedy(IlpModel("empty")).status is SolveStatus.OPTIMAL


# ---------------------------------------------------------------- groute


def test_maze_disconnect_fault_degrades_to_pattern_routes():
    design = fresh_small()
    with use_faults(FaultPlan().force("groute.maze", "disconnect", times=-1)):
        router = GlobalRouter(design)
        router.route_all()
    assert len(router.routes) == len(design.nets)
    assert router.accounting_errors() == []


def test_initial_routing_propagates_deadline():
    design = fresh_small()
    router = GlobalRouter(design)
    with deadline_scope(0.0, name="gr"):
        with pytest.raises(DeadlineExceeded):
            router.route_all()


def test_improve_degrades_gracefully_under_deadline(routed):
    _, router = routed
    with observe() as obs:
        with deadline_scope(0.0, name="rrr"):
            completed = router.improve(rrr_passes=2)
        assert completed == 0
        assert obs.metrics.counter("groute.rrr_deadline_stops") == 1
    assert router.accounting_errors() == []


def test_route_copy_restore_roundtrip(routed):
    design, router = routed
    net = sorted(design.nets)[0]
    snapshot = router.copy_route(net)
    router.reroute_nets([net])
    router.restore_route(net, snapshot)
    assert router.accounting_errors() == []


# ------------------------------------------------------------ transaction


def test_forced_invariant_violation_rolls_back(routed):
    design, router = routed
    before_pos = {n: (c.x, c.y) for n, c in design.cells.items()}
    before_wl = router.total_wirelength_dbu()
    framework = CrpFramework(design, router, CrpConfig(seed=1))
    plan = FaultPlan().force("crp.invariants", "forced-violation")
    with use_faults(plan), observe() as obs:
        stats = framework.run_iteration(0)
        assert obs.metrics.counter("guard.rollbacks") == 1
    assert plan.fired("crp.invariants") == 1
    assert stats.rolled_back
    assert "forced-violation" in stats.rollback_reasons
    assert stats.num_moved == 0
    # the rollback restored the exact pre-iteration state
    assert {n: (c.x, c.y) for n, c in design.cells.items()} == before_pos
    assert router.total_wirelength_dbu() == before_wl
    assert router.accounting_errors() == []
    assert check_legality(design).is_legal


def test_update_step_exception_rolls_back(routed):
    design, router = routed
    before_pos = {n: (c.x, c.y) for n, c in design.cells.items()}
    framework = CrpFramework(design, router, CrpConfig(seed=1))
    plan = FaultPlan().fail("crp.update.reroute")
    with use_faults(plan):
        stats = framework.run_iteration(0)
    assert plan.fired("crp.update.reroute") == 1
    assert stats.rolled_back
    assert stats.num_moved == 0
    assert {n: (c.x, c.y) for n, c in design.cells.items()} == before_pos
    assert router.accounting_errors() == []
    assert check_legality(design).is_legal


def test_worst_selection_is_contained_by_guard(routed):
    design, router = routed
    framework = CrpFramework(design, router, CrpConfig(seed=1))
    pre_cost = framework._total_route_cost()
    with use_faults(FaultPlan().force("crp.select", "worst")) as plan:
        framework.run_iteration(0)
    assert plan.fired("crp.select") == 1
    post_cost = framework._total_route_cost()
    tolerance = framework.guard.cost_tolerance
    assert post_cost <= pre_cost * (1.0 + tolerance) + 1e-9
    assert check_legality(design).is_legal
    assert router.accounting_errors() == []


def test_guard_can_be_disabled(routed):
    design, router = routed
    framework = CrpFramework(
        design, router, CrpConfig(seed=1), guard=GuardPolicy(transactional=False)
    )
    with use_faults(FaultPlan().fail("crp.update.reroute")):
        with pytest.raises(FaultInjected):
            framework.run_iteration(0)


# ------------------------------------------------------------------ flow


def test_flow_stage_failure_is_isolated():
    design = fresh_small()
    with use_faults(FaultPlan().fail("flow.DR")):
        result = run_flow(design, mode="baseline")
    assert result.failed
    assert result.failure is not None
    assert result.failure.stage == "DR"
    assert result.failure.error_type == "FaultInjected"
    assert result.failure.traceback
    assert "GR" in result.runtime
    assert "FAILED" in result.summary()
    assert result.metrics["counters"]["flow.stage_failures"] == 1


def test_flow_budget_fails_first_stage_cleanly():
    design = fresh_small()
    result = run_flow(design, mode="baseline", budget_s=0.0)
    assert result.failed
    assert result.failure.stage == "GR"
    assert result.failure.error_type == "DeadlineExceeded"


def test_flow_crp_stage_isolated():
    design = fresh_small()
    with use_faults(FaultPlan().fail("flow.CRP")):
        result = run_flow(design, mode="crp", skip_detailed=True)
    assert result.failed
    assert result.failure.stage == "CRP"


def test_flow_survives_injected_solver_failure_and_bad_iteration():
    """The ISSUE acceptance scenario: a scipy-backend failure plus one
    forced-bad CR&P iteration must not sink the flow."""
    design = fresh_small()
    plan = (
        FaultPlan()
        .fail("ilp.scipy", times=1)
        .force("crp.invariants", "forced-violation", times=1)
    )
    with use_faults(plan):
        result = run_flow(design, mode="crp", crp_iterations=2,
                          skip_detailed=True)
    assert not result.failed
    counters = result.metrics["counters"]
    assert counters["guard.fallbacks"] >= 1
    assert counters["guard.rollbacks"] >= 1
    assert result.crp is not None and result.crp.rollbacks >= 1
    assert result.legal
    assert check_legality(design).is_legal


def test_crp_accounting_survives_fault_storm(routed):
    design, router = routed
    plan = (
        FaultPlan()
        .fail("ilp.scipy", times=2)
        .force("crp.invariants", "forced-violation", times=1)
    )
    framework = CrpFramework(design, router, CrpConfig(seed=1))
    with use_faults(plan):
        framework.run(2)
    assert router.accounting_errors() == []
    assert check_legality(design).is_legal


def test_failure_report_summary():
    from repro.guard import FailureReport

    try:
        raise ValueError("boom")
    except ValueError as exc:
        report = FailureReport.from_exception("GR", exc)
    assert report.stage == "GR"
    assert report.error_type == "ValueError"
    assert "boom" in report.message
    assert "ValueError" in report.traceback
    assert "GR" in report.summary() and "ValueError" in report.summary()


# ------------------------------------------------------------------- CLI


def test_cli_run_exits_nonzero_on_stage_failure(capsys):
    from repro.cli import main

    with use_faults(FaultPlan().fail("flow.GR")):
        rc = main(["run", "-b", "ispd18_test1", "-m", "baseline",
                   "--skip-detailed"])
    assert rc != 0
    assert "FAILED" in capsys.readouterr().out


def test_cli_run_exits_nonzero_on_blown_budget(capsys):
    from repro.cli import main

    rc = main(["run", "-b", "ispd18_test1", "-m", "baseline",
               "--skip-detailed", "--budget", "0"])
    assert rc != 0

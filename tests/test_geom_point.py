"""Unit tests for repro.geom.point."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom import Point, manhattan

coords = st.integers(min_value=-(10**6), max_value=10**6)


def test_translated():
    assert Point(1, 2).translated(3, -5) == Point(4, -3)


def test_manhattan_to():
    assert Point(0, 0).manhattan_to(Point(3, 4)) == 7


def test_as_tuple():
    assert Point(7, 9).as_tuple() == (7, 9)


def test_points_are_hashable_and_ordered():
    assert len({Point(1, 1), Point(1, 1), Point(1, 2)}) == 2
    assert Point(1, 2) < Point(2, 0)


def test_points_are_immutable():
    with pytest.raises(AttributeError):
        Point(0, 0).x = 5  # type: ignore[misc]


@given(coords, coords, coords, coords)
def test_manhattan_symmetry(ax, ay, bx, by):
    a, b = Point(ax, ay), Point(bx, by)
    assert manhattan(a, b) == manhattan(b, a)
    assert manhattan(a, a) == 0


@given(coords, coords, coords, coords, coords, coords)
def test_manhattan_triangle_inequality(ax, ay, bx, by, cx, cy):
    a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
    assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)

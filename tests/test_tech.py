"""Unit tests for the technology objects and synthetic libraries."""

import pytest

from repro.geom import Orientation, Rect
from repro.tech import (
    Layer,
    LayerDirection,
    Macro,
    MacroPin,
    PinDirection,
    PinShape,
    Site,
    Technology,
)
from repro.benchgen import build_tech


def test_site_validation():
    with pytest.raises(ValueError):
        Site("bad", 0, 100)


def test_layer_direction_other():
    assert LayerDirection.HORIZONTAL.other is LayerDirection.VERTICAL
    assert LayerDirection.VERTICAL.other is LayerDirection.HORIZONTAL


def test_layer_track_math():
    layer = Layer("M2", 1, LayerDirection.VERTICAL, pitch=200, width=60, spacing=140, offset=100)
    assert layer.track_coord(0) == 100
    assert layer.track_coord(5) == 1100
    assert layer.nearest_track(1100) == 5
    assert layer.nearest_track(1199) == 5
    assert layer.nearest_track(1201) == 6


def test_technology_layer_index_enforced():
    tech = Technology()
    tech.add_layer(Layer("M1", 0, LayerDirection.HORIZONTAL, 200, 60, 140))
    with pytest.raises(ValueError):
        tech.add_layer(Layer("M3", 2, LayerDirection.HORIZONTAL, 200, 60, 140))


def test_technology_lookup():
    tech = build_tech("45nm")
    assert tech.layer_by_name("Metal3").index == 2
    with pytest.raises(KeyError):
        tech.layer_by_name("Metal99")
    via = tech.via_between(0)
    assert via.top == 1


def test_macro_duplicate_pin_rejected():
    macro = Macro("X", 100, 100)
    macro.add_pin(MacroPin("A", PinDirection.INPUT))
    with pytest.raises(ValueError):
        macro.add_pin(MacroPin("A", PinDirection.INPUT))


def test_build_tech_shapes():
    tech = build_tech("45nm")
    assert tech.num_layers == 9
    assert len(tech.vias) == 8
    assert tech.layers[0].is_horizontal
    assert tech.layers[1].is_vertical
    assert "INV_X1" in tech.macros
    inv = tech.macros["INV_X1"]
    assert inv.width == 2 * tech.default_site().width
    assert set(inv.pins) == {"A", "Y"}


def test_build_tech_32nm_row_height_is_pitch_multiple():
    tech = build_tech("32nm")
    site = tech.default_site()
    assert site.height % tech.layers[0].pitch == 0


def test_unknown_node_rejected():
    with pytest.raises(ValueError):
        build_tech("7nm")


def test_pins_land_on_track_crossings():
    """Pin pads must cover exactly one track crossing in N and FS."""
    for node in ("45nm", "32nm"):
        tech = build_tech(node)
        pitch = tech.layers[0].pitch
        offset = pitch // 2
        for macro in tech.macros.values():
            for pin in macro.pins.values():
                for orient in (Orientation.N, Orientation.FS):
                    placed = pin.placed_shapes(
                        0, 0, orient, macro.width, macro.height
                    )
                    center = Rect.bounding([s.rect for s in placed]).center
                    assert (center.x - offset) % pitch == 0, (node, macro.name, pin.name)
                    assert (center.y - offset) % pitch == 0, (node, macro.name, pin.name)


def test_pins_unique_crossings_within_macro():
    tech = build_tech("45nm")
    for macro in tech.macros.values():
        centers = {
            pin.bbox().center.as_tuple() for pin in macro.pins.values()
        }
        assert len(centers) == len(macro.pins)


def test_placed_pin_shapes_translate():
    tech = build_tech("45nm")
    inv = tech.macros["INV_X1"]
    base = inv.pin("A").bbox()
    placed = inv.pin("A").placed_shapes(1000, 2800, Orientation.N, inv.width, inv.height)
    assert placed[0].rect == base.translated(1000, 2800)

"""Tests for ``repro.par``: partitioner properties, byte-identical
parallel routing, commit-stage conflict handling, deadline and fault
behaviour, and worker metrics/span merging."""

from __future__ import annotations

import pickle
import queue
import random

import pytest

from repro.core import CrpConfig, CrpFramework
from repro.groute import GlobalRouter
from repro.guard import DeadlineExceeded, FaultPlan, deadline_scope, use_faults
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracer import Tracer, use_tracer
from repro.par import ParallelExecutor, ParTask, partition, region_of
from repro.par import worker as parworker
from repro.par.partition import rects_overlap
from helpers import fresh_small


def routes_of(router: GlobalRouter) -> dict[str, tuple]:
    return {
        name: tuple(sorted(route.edges))
        for name, route in router.routes.items()
    }


def positions_of(design) -> dict[str, tuple]:
    return {
        name: (cell.x, cell.y, cell.orient)
        for name, cell in design.cells.items()
    }


def route_serial(design, rrr: int = 2) -> GlobalRouter:
    router = GlobalRouter(design)
    router.route_all(rrr_passes=rrr)
    return router


def route_parallel(design, workers: int, rrr: int = 2, **executor_kw):
    """Route with the batched pipeline; returns (router, executor)."""
    router = GlobalRouter(design)
    executor = ParallelExecutor(workers, **executor_kw)
    executor.bind(router)
    router.route_all(rrr_passes=rrr)
    return router, executor


# --------------------------------------------------------------- partition


class TestPartitioner:
    def test_random_rects_conflict_free_and_serial_precedent(self):
        # Property test over random regions: within a batch regions are
        # pairwise disjoint, and an overlapping earlier task always
        # lands in a strictly earlier batch (serial precedence).
        rng = random.Random(7)
        nx = ny = 32
        tasks = []
        for index in range(200):
            x0 = rng.randrange(nx)
            y0 = rng.randrange(ny)
            x1 = min(nx - 1, x0 + rng.randrange(6))
            y1 = min(ny - 1, y0 + rng.randrange(6))
            tasks.append(ParTask(f"net{index}", index, (x0, y0, x1, y1)))
        batches = partition(tasks, nx, ny)

        batch_of = {}
        for b, batch in enumerate(batches):
            for task in batch:
                batch_of[task.name] = b
        assert sorted(batch_of) == sorted(t.name for t in tasks)

        for batch in batches:
            for i, a in enumerate(batch):
                for b in batch[i + 1 :]:
                    assert not rects_overlap(a.rect, b.rect)
            # canonical order survives inside each batch
            assert [t.index for t in batch] == sorted(t.index for t in batch)

        for i, early in enumerate(tasks):
            for late in tasks[i + 1 :]:
                if rects_overlap(early.rect, late.rect):
                    assert batch_of[early.name] < batch_of[late.name]

    def test_disjoint_tasks_form_one_batch(self):
        tasks = [
            ParTask("a", 0, (0, 0, 1, 1)),
            ParTask("b", 1, (4, 4, 5, 5)),
            ParTask("c", 2, (8, 0, 9, 1)),
        ]
        assert [len(b) for b in partition(tasks, 16, 16)] == [3]

    def test_chained_overlaps_serialize(self):
        tasks = [
            ParTask("a", 0, (0, 0, 4, 4)),
            ParTask("b", 1, (3, 3, 7, 7)),
            ParTask("c", 2, (6, 6, 9, 9)),
        ]
        batches = partition(tasks, 16, 16)
        assert [[t.name for t in b] for b in batches] == [["a"], ["b"], ["c"]]

    def test_region_of_expands_and_clips(self):
        terminals = [(0, 0, 3), (1, 7, 5)]
        assert region_of(terminals, 8, 8, expand=2) == (0, 1, 7, 7)
        assert region_of([(0, 4, 4)], 8, 8, expand=0) == (4, 4, 4, 4)

    def test_empty_input(self):
        assert partition([], 8, 8) == []


# ------------------------------------------------------------------ parity


class TestParity:
    def test_workers1_batched_matches_legacy_serial(self):
        serial = route_serial(fresh_small())
        batched, executor = route_parallel(fresh_small(), workers=1)
        try:
            assert routes_of(batched) == routes_of(serial)
            assert batched.total_wirelength_dbu() == serial.total_wirelength_dbu()
            assert batched.total_vias() == serial.total_vias()
        finally:
            executor.close()

    def test_pool_workers_match_serial_byte_for_byte(self):
        serial = route_serial(fresh_small())
        expected = routes_of(serial)
        for workers in (2, 4):
            router, executor = route_parallel(
                fresh_small(), workers=workers, chunk=1
            )
            try:
                assert routes_of(router) == expected, f"workers={workers}"
                assert (
                    router.total_wirelength_dbu()
                    == serial.total_wirelength_dbu()
                )
            finally:
                executor.close()

    def test_crp_iteration_parity_including_estimation(self):
        # Full CR&P iteration: candidate estimation runs on the pool
        # and cell moves + reroutes must land byte-identically.
        design_a = fresh_small()
        serial = route_serial(design_a)
        CrpFramework(design_a, serial, CrpConfig(seed=0)).run(1)

        design_b = fresh_small()
        router, executor = route_parallel(design_b, workers=2, chunk=1)
        try:
            CrpFramework(design_b, router, CrpConfig(seed=0)).run(1)
            assert positions_of(design_b) == positions_of(design_a)
            assert routes_of(router) == routes_of(serial)
        finally:
            executor.close()

    def test_spawn_start_method_parity(self):
        serial = route_serial(fresh_small(), rrr=0)
        router, executor = route_parallel(
            fresh_small(), workers=2, rrr=0, chunk=1, start_method="spawn"
        )
        try:
            assert routes_of(router) == routes_of(serial)
        finally:
            executor.close()


# ------------------------------------------------------ detailed routing


def droute_sig(result) -> tuple:
    """Fully ordered signature of a DetailedResult."""
    return (
        sorted(
            (name, tuple(tuple(node) for node in path))
            for name, paths in result.paths.items()
            for path in paths
        ),
        sorted(
            (v.kind.value, v.layer, v.net_a, v.net_b, v.node)
            for v in result.violations
        ),
        result.wirelength_dbu,
        result.vias,
    )


def droute_serial(design):
    """GR + DR with no executor anywhere: the parity baseline."""
    from repro.droute import DetailedRouter

    router = GlobalRouter(design)
    router.route_all(rrr_passes=1)
    detailed = DetailedRouter(design)
    return detailed.route_all(router.guides())


def droute_parallel(design, workers: int, **executor_kw):
    """GR + batched DR sharing one executor; returns the DR result."""
    from repro.droute import DetailedRouter

    router = GlobalRouter(design)
    executor = ParallelExecutor(workers, **executor_kw)
    executor.bind(router)
    try:
        router.route_all(rrr_passes=1)
        detailed = DetailedRouter(design)
        detailed.executor = executor
        return detailed.route_all(router.guides())
    finally:
        executor.close()


def droute_design():
    """Big enough that the spatial partitioner yields multi-net batches
    (small designs serialize into singleton batches and never pool)."""
    return fresh_small(seed=7, num_cells=120, num_nets=100)


class TestDetailedRoutingParity:
    def test_droute_workers_match_serial_byte_for_byte(self):
        expected = droute_sig(droute_serial(droute_design()))
        for workers in (1, 2, 4):
            result = droute_parallel(droute_design(), workers=workers, chunk=1)
            assert droute_sig(result) == expected, f"workers={workers}"

    def test_droute_session_stashed_until_pool_starts(self):
        # The executor is bound only after GR, so the droute session
        # opens before any pool exists; the stash must replay the
        # session + early serial commits when the pool spins up mid-DR.
        from repro.droute import DetailedRouter

        expected = droute_sig(droute_serial(droute_design()))
        design = droute_design()
        router = GlobalRouter(design)
        router.route_all(rrr_passes=1)
        executor = ParallelExecutor(2, chunk=1)
        executor.bind(router)
        try:
            detailed = DetailedRouter(design)
            detailed.executor = executor
            result = detailed.route_all(router.guides())
            assert executor._started or executor._dead
        finally:
            executor.close()
        assert droute_sig(result) == expected


# ---------------------------------------------------------- commit stage


class TestCommitStage:
    def test_induced_conflict_rerouted_serially_and_counted(self):
        # Hand _commit_batch a doctored result whose route collides
        # with an earlier commit of the same batch: the commit stage
        # must detect the dirtied GCells, count par.conflicts, and
        # re-route the victim serially against live state.
        control = route_serial(fresh_small(), rrr=0)
        names = sorted(control.routes)
        first, second = names[0], names[1]

        router = route_serial(fresh_small(), rrr=0)
        router.rip_up(first)
        router.rip_up(second)
        clean_first = parworker.compute_pattern_route(router, first)
        real_second = parworker.compute_pattern_route(router, second)
        # `second` claims to have computed `first`'s exact edges, which
        # are guaranteed to touch the GCells `first` just dirtied.
        doctored = (clean_first[0], real_second[1])
        tasks = [
            ParTask(first, 0, (0, 0, 0, 0)),
            ParTask(second, 1, (0, 0, 0, 0)),
        ]
        registry = MetricsRegistry()
        with use_metrics(registry):
            router._commit_batch(
                tasks, {first: clean_first, second: doctored}, maze=False
            )
        assert registry.counter("par.conflicts") == 1
        # The serial re-route restored the canonical outcome.
        assert routes_of(router) == routes_of(control)

    def test_missing_result_falls_back_to_serial_route(self):
        control = route_serial(fresh_small(), rrr=0)
        name = sorted(control.routes)[0]
        router = route_serial(fresh_small(), rrr=0)
        router.rip_up(name)
        registry = MetricsRegistry()
        with use_metrics(registry):
            router._commit_batch(
                [ParTask(name, 0, (0, 0, 0, 0))], {name: None}, maze=False
            )
        assert registry.counter("par.conflicts") == 0
        assert routes_of(router) == routes_of(control)


# ------------------------------------------------------ deadlines + faults


class TestDeadlines:
    def test_parent_deadline_propagates_through_batched_route(self):
        router = GlobalRouter(fresh_small())
        executor = ParallelExecutor(1).bind(router)
        try:
            with deadline_scope(0.0, name="test"):
                with pytest.raises(DeadlineExceeded):
                    router.route_all(rrr_passes=0)
        finally:
            executor.close()

    def test_worker_reports_deadline_with_partial_results(self):
        # Run the worker loop in-process with plain queues: a zero
        # budget must come back as RES_DEADLINE (partial, not fatal).
        router = GlobalRouter(fresh_small())
        payload = pickle.dumps((router.design, router.ctor_args))
        names = tuple(sorted(router.design.nets))[:3]
        task_queue: queue.Queue = queue.Queue()
        result_queue: queue.Queue = queue.Queue()
        task_queue.put(
            (parworker.MSG_TASK, 11, "route", (), names, None, 0.0, False)
        )
        task_queue.put((parworker.MSG_STOP,))
        parworker.worker_main(0, task_queue, result_queue, payload)
        tag, task_id, done, wall_s, obs = result_queue.get_nowait()
        assert tag == parworker.RES_DEADLINE
        assert task_id == 11
        assert len(done) < len(names)
        assert obs is None

    def test_worker_computes_full_chunk_with_budget(self):
        router = GlobalRouter(fresh_small())
        payload = pickle.dumps((router.design, router.ctor_args))
        names = tuple(sorted(router.design.nets))[:3]
        task_queue: queue.Queue = queue.Queue()
        result_queue: queue.Queue = queue.Queue()
        task_queue.put(
            (parworker.MSG_TASK, 3, "route", (), names, None, None, False)
        )
        task_queue.put((parworker.MSG_STOP,))
        parworker.worker_main(0, task_queue, result_queue, payload)
        tag, _, done, _, _ = result_queue.get_nowait()
        assert tag == parworker.RES_OK
        state = parworker.WorkerState(GlobalRouter(fresh_small()))
        assert done == [
            parworker.compute_item(state, "route", name, None)
            for name in names
        ]


class TestFaultInjection:
    def test_armed_par_worker_fault_degrades_to_serial(self):
        serial = route_serial(fresh_small(), rrr=0)
        registry = MetricsRegistry()
        plan = FaultPlan().fail("par.worker", times=2)
        router = GlobalRouter(fresh_small())
        executor = ParallelExecutor(2, chunk=1).bind(router)
        try:
            with use_metrics(registry), use_faults(plan):
                router.route_all(rrr_passes=0)
        finally:
            executor.close()
        assert plan.fired("par.worker") == 2
        assert registry.counter("par.worker_failures") == 2
        assert registry.counter("par.serial_fallback_items") >= 2
        assert routes_of(router) == routes_of(serial)


# -------------------------------------------------------------- obs merge


class TestObservabilityMerge:
    def _find_spans(self, span, name, out):
        if span.name == name:
            out.append(span)
        for child in span.children:
            self._find_spans(child, name, out)
        return out

    def test_worker_metrics_and_spans_fold_into_parent(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        with use_metrics(registry), use_tracer(tracer):
            router, executor = route_parallel(
                fresh_small(), workers=2, rrr=0, chunk=1
            )
            executor.close()
        assert registry.counter("groute.nets_routed") == len(router.routes)
        assert registry.counter("par.batches") > 0
        assert registry.counter("par.tasks") > 0
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["par.worker_wall_s"]["count"] > 0
        assert snapshot["gauges"]["par.pool_workers"] == 2

        par_spans: list = []
        for root in tracer.roots:
            self._find_spans(root, "par.route", par_spans)
        assert par_spans
        tasks: list = []
        for span in par_spans:
            self._find_spans(span, "par.task", tasks)
        assert tasks and all(
            span.meta["kind"] == "route" for span in tasks
        )

    def test_metrics_silent_when_not_recording(self):
        router, executor = route_parallel(
            fresh_small(), workers=2, rrr=0, chunk=1
        )
        executor.close()
        # No ambient registry: workers must not have shipped payloads
        # (obs_on False) and the run still completes with full routes.
        assert len(router.routes) == len(router.design.nets)

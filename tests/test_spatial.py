"""Unit and property tests for the spatial index."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geom import Rect
from repro.db import SpatialIndex

DIE = Rect(0, 0, 10000, 10000)


def test_insert_query_remove():
    index = SpatialIndex(DIE)
    index.insert("a", Rect(0, 0, 100, 100))
    index.insert("b", Rect(500, 500, 600, 600))
    assert index.query(Rect(50, 50, 60, 60)) == ["a"]
    assert set(index.query(DIE)) == {"a", "b"}
    index.remove("a")
    assert index.query(Rect(50, 50, 60, 60)) == []
    assert len(index) == 1


def test_remove_unknown_is_noop():
    index = SpatialIndex(DIE)
    index.remove("ghost")
    assert len(index) == 0


def test_move_replaces():
    index = SpatialIndex(DIE)
    index.insert("a", Rect(0, 0, 100, 100))
    index.move("a", Rect(900, 900, 950, 950))
    assert index.query(Rect(0, 0, 200, 200)) == []
    assert index.query(Rect(890, 890, 960, 960)) == ["a"]
    assert index.box_of("a") == Rect(900, 900, 950, 950)


def test_strict_vs_touching_query():
    index = SpatialIndex(DIE)
    index.insert("a", Rect(0, 0, 100, 100))
    assert index.query(Rect(100, 0, 200, 100)) == []
    assert index.query(Rect(100, 0, 200, 100), strict=False) == ["a"]


def test_overlapping_pairs():
    index = SpatialIndex(DIE)
    index.insert("a", Rect(0, 0, 100, 100))
    index.insert("b", Rect(50, 50, 150, 150))
    index.insert("c", Rect(150, 150, 250, 250))  # abuts b at a corner only
    assert index.overlapping_pairs() == [("a", "b")]


def test_contains():
    index = SpatialIndex(DIE)
    index.insert("a", Rect(0, 0, 10, 10))
    assert "a" in index
    assert "b" not in index


@st.composite
def boxes(draw):
    lx = draw(st.integers(0, 9000))
    ly = draw(st.integers(0, 9000))
    w = draw(st.integers(1, 900))
    h = draw(st.integers(1, 900))
    return Rect(lx, ly, lx + w, ly + h)


@settings(max_examples=40, deadline=None)
@given(st.lists(boxes(), min_size=1, max_size=30), boxes())
def test_query_matches_brute_force(all_boxes, window):
    index = SpatialIndex(DIE)
    for i, box in enumerate(all_boxes):
        index.insert(f"c{i}", box)
    expected = sorted(
        f"c{i}" for i, box in enumerate(all_boxes) if box.intersects(window)
    )
    assert index.query(window) == expected


@settings(max_examples=40, deadline=None)
@given(st.lists(boxes(), min_size=2, max_size=20))
def test_overlapping_pairs_matches_brute_force(all_boxes):
    index = SpatialIndex(DIE)
    for i, box in enumerate(all_boxes):
        index.insert(f"c{i}", box)
    expected = set()
    for i in range(len(all_boxes)):
        for j in range(i + 1, len(all_boxes)):
            if all_boxes[i].intersects(all_boxes[j]):
                expected.add(tuple(sorted((f"c{i}", f"c{j}"))))
    assert set(index.overlapping_pairs()) == expected

"""Unit tests for the legalizers (window ILP, Tetris, Abacus)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geom import Point, Rect
from repro.db import check_legality
from repro.legalizer import WindowLegalizer, abacus_legalize, tetris_legalize
from repro.legalizer.median import median_position

from helpers import add_cell, add_two_pin_net, build_tiny_design, fresh_small


# ---------------------------------------------------------------- median


def test_median_position_excludes_own_pins(tech45):
    design = build_tiny_design(tech45)
    a = add_cell(design, "a", "INV_X1", 0, 0)
    b = add_cell(design, "b", "INV_X1", 20, 0)
    add_two_pin_net(design, "n", "a", "b")
    med = median_position(design, "a")
    # a's only external terminal is b's pin: the median is exactly there.
    assert med == design.cells["b"].pin_position("A")


def test_median_position_disconnected_cell(tech45):
    design = build_tiny_design(tech45)
    a = add_cell(design, "a", "INV_X1", 5, 1)
    assert median_position(design, "a") == a.center


# ---------------------------------------------------------------- window


def test_window_legalizer_returns_candidates(tech45):
    design = build_tiny_design(tech45)
    add_cell(design, "a", "INV_X1", 10, 0)
    add_cell(design, "b", "INV_X1", 25, 1)
    add_two_pin_net(design, "n", "a", "b")
    legalizer = WindowLegalizer(design, n_sites=10, n_rows=3, max_targets=4)
    candidates = legalizer.run("a")
    assert candidates
    for cand in candidates:
        x, y, orient = cand.position
        row = design.row_at_y(y)
        assert row is not None
        assert orient == row.orient
        assert (x - row.origin_x) % row.site.width == 0


def test_window_candidates_keep_design_legal(tech45):
    """Applying any candidate (with its conflict moves) stays legal."""
    design = build_tiny_design(tech45)
    add_cell(design, "a", "INV_X1", 10, 0)
    add_cell(design, "c", "NAND2_X1", 11, 0)  # abutting neighbour
    add_cell(design, "b", "INV_X1", 25, 1)
    add_two_pin_net(design, "n", "a", "b")
    legalizer = WindowLegalizer(design, n_sites=8, n_rows=3, max_targets=6)
    for cand in legalizer.run("a"):
        positions = {
            name: (cell.x, cell.y, cell.orient)
            for name, cell in design.cells.items()
        }
        design.move_cell("a", *cand.position)
        for name, pos in cand.conflict_moves.items():
            design.move_cell(name, *pos)
        report = check_legality(design)
        assert report.is_legal, (cand, report.summary())
        for name, pos in positions.items():
            design.move_cell(name, *pos)


def test_window_legalizer_displaces_neighbour(tech45):
    """A fully packed row forces conflict moves."""
    design = build_tiny_design(tech45, num_rows=2, sites_per_row=12)
    add_cell(design, "a", "INV_X1", 0, 0)
    for i in range(6):
        add_cell(design, f"f{i}", "INV_X1", i * 2, 1)
    # Target row 1 is full: moving a there must displace someone.
    add_cell(design, "b", "INV_X1", 10, 0)
    add_two_pin_net(design, "n", "a", "b")
    legalizer = WindowLegalizer(design, n_sites=12, n_rows=2, max_targets=20)
    candidates = legalizer.run("a")
    assert any(c.conflict_moves for c in candidates)


def test_window_legalizer_respects_fixed_cells(tech45):
    design = build_tiny_design(tech45, num_rows=2, sites_per_row=10)
    a = add_cell(design, "a", "INV_X1", 0, 0)
    blocker = add_cell(design, "blk", "DFF_X1", 0, 1)
    blocker.fixed = True
    legalizer = WindowLegalizer(design, n_sites=10, n_rows=2, max_targets=30)
    for cand in legalizer.run("a"):
        x, y, _ = cand.position
        box = Rect(x, y, x + a.width, y + a.height)
        assert not box.intersects(blocker.bbox())
        assert "blk" not in cand.conflict_moves


def test_window_legalizer_no_row_returns_empty(tech45):
    design = build_tiny_design(tech45)
    cell = add_cell(design, "a", "INV_X1", 0, 0)
    cell.y = 10**9  # far off any row
    design.spatial.move("a", cell.bbox())
    assert WindowLegalizer(design).run("a") == []


# ---------------------------------------------------------------- tetris


def test_tetris_legalizes_overlaps(tech45):
    design = build_tiny_design(tech45, num_rows=4, sites_per_row=30)
    add_cell(design, "a", "DFF_X1", 0, 0)
    b = add_cell(design, "b", "INV_X1", 1, 0)  # overlapping a
    assert not check_legality(design).is_legal
    displacement = tetris_legalize(design)
    assert displacement > 0
    assert check_legality(design).is_legal


def test_tetris_skips_fixed(tech45):
    design = build_tiny_design(tech45)
    blk = add_cell(design, "blk", "DFF_X1", 0, 0)
    blk.fixed = True
    add_cell(design, "a", "INV_X1", 1, 0)
    tetris_legalize(design)
    assert (blk.x, blk.y) == (0, 0)
    report = check_legality(design)
    assert not report.overlaps


def test_tetris_raises_when_overfull(tech45):
    design = build_tiny_design(tech45, num_rows=1, sites_per_row=4)
    add_cell(design, "a", "DFF_X1", 0, 0)  # 8 sites wide, row has 4
    with pytest.raises(RuntimeError):
        tetris_legalize(design)


def test_tetris_no_rows(tech45):
    from repro.db import Design

    design = Design("norows", tech45, Rect(0, 0, 100, 100))
    with pytest.raises(ValueError):
        tetris_legalize(design)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6))
def test_tetris_legalizes_random_scatter(seed):
    """Property: tetris always produces a fully legal placement."""
    import random

    design = fresh_small(seed=4242)
    rng = random.Random(seed)
    die = design.die
    for cell in design.cells.values():
        cell.x = rng.randint(0, die.ux - cell.width)
        cell.y = rng.randint(0, die.uy - cell.height)
        design.spatial.move(cell.name, cell.bbox())
    tetris_legalize(design)
    assert check_legality(design, check_orient=False).is_legal


# ---------------------------------------------------------------- abacus


def test_abacus_legalizes_row_overlaps(tech45):
    design = build_tiny_design(tech45, num_rows=2, sites_per_row=40)
    add_cell(design, "a", "INV_X1", 5, 0)
    b = add_cell(design, "b", "INV_X1", 5, 0)
    c = add_cell(design, "c", "NAND2_X1", 6, 0)
    abacus_legalize(design)
    report = check_legality(design)
    assert not report.overlaps, report.overlaps
    assert not report.off_site


def test_abacus_moves_less_than_tetris_on_dense_row(tech45):
    """Abacus minimizes displacement; compare on the same scatter."""
    import random

    def scattered():
        design = build_tiny_design(tech45, num_rows=3, sites_per_row=40)
        rng = random.Random(3)
        for i in range(12):
            cell = add_cell(design, f"u{i}", "NAND2_X1", 0, 0)
            cell.x = rng.randint(0, design.die.ux - cell.width)
            cell.y = rng.randint(0, design.die.uy - cell.height)
            design.spatial.move(cell.name, cell.bbox())
        return design

    d_abacus = scattered()
    d_tetris = scattered()
    disp_abacus = abacus_legalize(d_abacus)
    disp_tetris = tetris_legalize(d_tetris)
    assert check_legality(d_abacus, check_orient=False).overlaps == []
    assert disp_abacus <= disp_tetris * 1.5  # abacus is never much worse


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_abacus_legalizes_random_scatter(seed):
    """Property: abacus always removes every overlap."""
    import random

    design = fresh_small(seed=4242)
    rng = random.Random(seed)
    die = design.die
    for cell in design.cells.values():
        cell.x = rng.randint(0, die.ux - cell.width)
        cell.y = rng.randint(0, die.uy - cell.height)
        design.spatial.move(cell.name, cell.bbox())
    abacus_legalize(design)
    report = check_legality(design, check_orient=False)
    assert not report.overlaps
    assert not report.off_site
    assert not report.out_of_die

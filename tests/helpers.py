"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

from repro.geom import Orientation, Rect
from repro.db import Cell, Design, Net, NetPin, Row
from repro.db.design import GCellGridSpec
from repro.benchgen.generator import DesignSpec, generate_design


def build_tiny_design(tech, num_rows: int = 4, sites_per_row: int = 30) -> Design:
    """An empty legal canvas: rows only, ready for manual cells/nets."""
    site = tech.default_site()
    die = Rect(0, 0, sites_per_row * site.width, num_rows * site.height)
    design = Design("tiny", tech, die)
    for r in range(num_rows):
        design.add_row(
            Row(
                name=f"ROW_{r}",
                site=site,
                origin_x=0,
                origin_y=r * site.height,
                num_sites=sites_per_row,
                orient=Orientation.for_row(r),
            )
        )
    design.gcell_grid = GCellGridSpec(
        origin_x=0,
        origin_y=0,
        step_x=die.width // 4,
        step_y=die.height // 2,
        nx=4,
        ny=2,
    )
    return design


def add_cell(design: Design, name: str, macro: str, site_index: int, row: int):
    """Place one cell at a site/row, respecting row orientation."""
    r = design.rows[row]
    cell = Cell(
        name=name,
        macro=design.tech.macros[macro],
        x=r.site_x(site_index),
        y=r.origin_y,
        orient=r.orient,
    )
    design.add_cell(cell)
    return cell


def add_two_pin_net(design: Design, name: str, a: str, b: str, pin_a="Y", pin_b="A"):
    net = Net(name)
    net.add_pin(NetPin(a, pin_a))
    net.add_pin(NetPin(b, pin_b))
    design.add_net(net)
    return net


def fresh_small(seed: int = 42, **overrides) -> Design:
    """A fresh mutable copy of the small generated design."""
    params = dict(
        name="unit_small",
        num_cells=60,
        num_nets=50,
        utilization=0.7,
        gcells_per_axis=8,
        num_iopins=4,
        seed=seed,
    )
    params.update(overrides)
    return generate_design(DesignSpec(**params))

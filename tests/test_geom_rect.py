"""Unit tests for repro.geom.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom import Point, Rect

coords = st.integers(min_value=-(10**5), max_value=10**5)


@st.composite
def rects(draw):
    lx = draw(coords)
    ly = draw(coords)
    w = draw(st.integers(min_value=0, max_value=10**4))
    h = draw(st.integers(min_value=0, max_value=10**4))
    return Rect(lx, ly, lx + w, ly + h)


def test_malformed_rect_rejected():
    with pytest.raises(ValueError):
        Rect(10, 0, 0, 10)
    with pytest.raises(ValueError):
        Rect(0, 10, 10, 0)


def test_basic_properties():
    r = Rect(0, 0, 10, 4)
    assert r.width == 10
    assert r.height == 4
    assert r.area == 40
    assert r.center == Point(5, 2)


def test_degenerate_rect_allowed():
    r = Rect(5, 5, 5, 9)
    assert r.width == 0
    assert r.area == 0


def test_contains_point_boundary():
    r = Rect(0, 0, 10, 10)
    assert r.contains_point(Point(0, 0))
    assert not r.contains_point(Point(0, 0), strict=True)
    assert r.contains_point(Point(5, 5), strict=True)


def test_intersects_strict_vs_touching():
    a = Rect(0, 0, 10, 10)
    b = Rect(10, 0, 20, 10)  # abutting
    assert not a.intersects(b)  # strict: abutment is not overlap
    assert a.intersects(b, strict=False)
    c = Rect(9, 0, 20, 10)
    assert a.intersects(c)


def test_intersection_and_union():
    a = Rect(0, 0, 10, 10)
    b = Rect(5, 5, 15, 15)
    assert a.intersection(b) == Rect(5, 5, 10, 10)
    assert a.union(b) == Rect(0, 0, 15, 15)
    assert a.intersection(Rect(20, 20, 30, 30)) is None


def test_translated_and_inflated():
    r = Rect(1, 1, 3, 3)
    assert r.translated(2, -1) == Rect(3, 0, 5, 2)
    assert r.inflated(1) == Rect(0, 0, 4, 4)


def test_bounding_and_from_points():
    assert Rect.bounding([Rect(0, 0, 1, 1), Rect(5, 5, 6, 8)]) == Rect(0, 0, 6, 8)
    assert Rect.from_points(Point(5, 1), Point(2, 7)) == Rect(2, 1, 5, 7)
    with pytest.raises(ValueError):
        Rect.bounding([])


def test_contains_rect():
    outer = Rect(0, 0, 100, 100)
    assert outer.contains_rect(Rect(0, 0, 100, 100))
    assert outer.contains_rect(Rect(10, 10, 20, 20))
    assert not outer.contains_rect(Rect(90, 90, 110, 100))


@given(rects(), rects())
def test_intersection_commutative(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(rects(), rects())
def test_intersection_inside_both(a, b):
    inter = a.intersection(b)
    if inter is not None:
        assert a.contains_rect(inter)
        assert b.contains_rect(inter)


@given(rects(), rects())
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains_rect(a)
    assert u.contains_rect(b)


@given(rects())
def test_inflate_then_area_grows(r):
    grown = r.inflated(3)
    assert grown.area >= r.area
    assert grown.contains_rect(r)

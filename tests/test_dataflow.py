"""Tests for ``repro.analyze.dataflow``: taint, races, coverage, U001.

Every fixture is a small on-disk project under ``tmp_path`` so the
interprocedural machinery (module resolution, call graph, summary
fixpoint) is exercised for real.  Each new rule has a positive AND a
negative fixture, and the taint fixtures all cross at least one call
boundary before reaching their sink.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analyze import Severity, run_source_analysis
from repro.analyze.dataflow import (
    DataflowConfig,
    Project,
    build_call_index,
    run_dataflow,
)
from repro.analyze.dataflow.summaries import Taint
from repro.analyze.linter import iter_python_files


def write_project(tmp_path, files: dict[str, str]):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def analyze(tmp_path, files: dict[str, str], **config_kwargs):
    write_project(tmp_path, files)
    config = DataflowConfig(**config_kwargs) if config_kwargs else None
    return run_dataflow([tmp_path], config, relative_to=tmp_path)


def rules_fired(result):
    return {f.rule for f in result.findings}


# ------------------------------------------------- REPRO-T001 (rng)


class TestRngTaint:
    FILES = {
        "proj/__init__.py": "",
        "proj/pick.py": """
            import random


            def jitter():
                return random.random()
            """,
        "proj/place.py": """
            from proj.pick import jitter


            def place(design, name):
                x = jitter()
                design.move_cell(name, x, 0)
            """,
    }

    def test_rng_flows_across_call_into_commit_sink(self, tmp_path):
        result = analyze(tmp_path, self.FILES)
        assert "REPRO-T001" in rules_fired(result)
        (finding,) = [f for f in result.findings if f.rule == "REPRO-T001"]
        # anchored at the *source* (where the fix or suppression goes)
        assert finding.path == "proj/pick.py"
        assert "commit" in finding.message
        assert finding.severity is Severity.ERROR

    def test_seeded_rng_is_clean(self, tmp_path):
        files = dict(self.FILES)
        files["proj/pick.py"] = """
            import random


            def jitter(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        files["proj/place.py"] = """
            from proj.pick import jitter


            def place(design, name, seed):
                x = jitter(seed)
                design.move_cell(name, x, 0)
            """
        result = analyze(tmp_path, files)
        assert "REPRO-T001" not in rules_fired(result)

    def test_noqa_at_source_line_suppresses(self, tmp_path):
        files = dict(self.FILES)
        files["proj/pick.py"] = """
            import random


            def jitter():
                return random.random()  # repro: noqa:REPRO-T001 — test only
            """
        result = analyze(tmp_path, files)
        assert "REPRO-T001" not in rules_fired(result)
        assert result.suppressed == 1
        used = result.used_suppressions["proj/pick.py"]
        assert any(rule == "REPRO-T001" for _, rule in used)


# ------------------------------------------- REPRO-T002 (set order)


class TestSetOrderTaint:
    def test_set_order_escapes_helper_into_commit_loop(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/work.py": """
                def dirty_list(nets):
                    pending = set(nets)
                    return list(pending)
                """,
            "proj/commit.py": """
                from proj.work import dirty_list


                def commit(router, nets):
                    for name in dirty_list(nets):
                        router.apply_route(name)
                """,
        })
        assert "REPRO-T002" in rules_fired(result)
        # both the arg-flow and the loop-order hazard anchor at the source
        fired = [f for f in result.findings if f.rule == "REPRO-T002"]
        assert fired
        assert {f.path for f in fired} == {"proj/work.py"}

    def test_sorted_helper_is_clean(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/work.py": """
                def dirty_list(nets):
                    pending = set(nets)
                    return sorted(pending)
                """,
            "proj/commit.py": """
                from proj.work import dirty_list


                def commit(router, nets):
                    for name in dirty_list(nets):
                        router.apply_route(name)
                """,
        })
        assert "REPRO-T002" not in rules_fired(result)


# --------------------------------------- REPRO-T003 (filesystem order)


class TestFsOrderTaint:
    def test_listing_flows_across_call_into_digest(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/scan.py": """
                import os


                def names(root):
                    return os.listdir(root)
                """,
            "proj/digest.py": """
                from hashlib import sha256

                from proj.scan import names


                def state_digest(root):
                    return sha256(repr(names(root)).encode())
                """,
        })
        assert "REPRO-T003" in rules_fired(result)
        (finding,) = [f for f in result.findings if f.rule == "REPRO-T003"]
        assert finding.path == "proj/scan.py"
        assert "digest" in finding.message

    def test_sorted_listing_is_clean(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/scan.py": """
                import os


                def names(root):
                    return sorted(os.listdir(root))
                """,
            "proj/digest.py": """
                from hashlib import sha256

                from proj.scan import names


                def state_digest(root):
                    return sha256(repr(names(root)).encode())
                """,
        })
        assert "REPRO-T003" not in rules_fired(result)


# ------------------------------------------- REPRO-T004 (wall clock)


class TestWallClockTaint:
    def test_wall_clock_reading_reaches_checkpoint(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/clock.py": """
                import time


                def stamp():
                    return time.time()
                """,
            "proj/save.py": """
                from proj.clock import stamp


                def snapshot(store, state):
                    store.save_checkpoint(state, stamp())
                """,
        })
        assert "REPRO-T004" in rules_fired(result)
        (finding,) = [f for f in result.findings if f.rule == "REPRO-T004"]
        assert finding.path == "proj/clock.py"

    def test_monotonic_clock_is_clean(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/clock.py": """
                import time


                def stamp():
                    return time.perf_counter()
                """,
            "proj/save.py": """
                from proj.clock import stamp


                def snapshot(store, state):
                    store.save_checkpoint(state, stamp())
                """,
        })
        assert "REPRO-T004" not in rules_fired(result)


# -------------------------------------- REPRO-X002 (worker writes)


class TestWorkerModuleState:
    def test_worker_reachable_module_write_fires(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/worker.py": """
                CACHE = {}


                def memoize(key, value):
                    CACHE[key] = value
                    return value


                def worker_main(task_q, result_q):
                    while task_q:
                        memoize("last", task_q.pop())
                """,
        })
        fired = [f for f in result.findings if f.rule == "REPRO-X002"]
        assert fired, rules_fired(result)
        assert "CACHE" in fired[0].message
        assert "worker_main" in fired[0].message

    def test_parent_side_write_is_clean(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/worker.py": """
                CACHE = {}


                def memoize(key, value):
                    CACHE[key] = value
                    return value


                def worker_main(task_q, result_q):
                    while task_q:
                        result_q.append(task_q.pop())
                """,
        })
        assert "REPRO-X002" not in rules_fired(result)

    def test_process_local_modules_are_exempt(self, tmp_path):
        result = analyze(
            tmp_path,
            {
                "proj/__init__.py": "",
                "proj/obs.py": """
                    CACHE = {}


                    def worker_main(task_q):
                        CACHE["pid"] = 1
                    """,
            },
            process_local_modules=("proj.obs",),
        )
        assert "REPRO-X002" not in rules_fired(result)


# ------------------------------------- REPRO-X003 (queue consumers)


class TestQueueConsumers:
    def test_two_consumers_on_one_queue_fire(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/pool.py": """
                from multiprocessing import Queue


                def setup(pool):
                    pool.results = Queue()


                def collect_fast(pool):
                    return pool.results.get(timeout=1)


                def collect_slow(pool):
                    return pool.results.get()
                """,
        })
        fired = [f for f in result.findings if f.rule == "REPRO-X003"]
        assert len(fired) == 2
        assert all("results" in f.message for f in fired)

    def test_single_consumer_is_clean(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/pool.py": """
                from multiprocessing import Queue


                def setup(pool):
                    pool.results = Queue()


                def collect(pool):
                    return pool.results.get()


                def report(pool):
                    return pool.results.qsize()
                """,
        })
        assert "REPRO-X003" not in rules_fired(result)


# --------------------------------------- REPRO-G004 (dead handlers)


class TestDeadGuardHandlers:
    def test_handler_over_quiet_body_fires(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/run.py": """
                from repro.guard import DeadlineExceeded


                def quiet():
                    return 1


                def run():
                    try:
                        return quiet()
                    except DeadlineExceeded:
                        return None
                """,
        })
        fired = [f for f in result.findings if f.rule == "REPRO-G004"]
        assert fired, rules_fired(result)
        assert "DeadlineExceeded" in fired[0].message

    def test_transitive_raiser_is_live(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/run.py": """
                from repro.guard import DeadlineExceeded, check_deadline


                def step():
                    check_deadline("proj.step")
                    return 1


                def middle():
                    return step()


                def run():
                    try:
                        return middle()
                    except DeadlineExceeded:
                        return None
                """,
        })
        assert "REPRO-G004" not in rules_fired(result)

    def test_opaque_call_gets_benefit_of_the_doubt(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/run.py": """
                import solver

                from repro.guard import DeadlineExceeded


                def run():
                    try:
                        return solver.spin()
                    except DeadlineExceeded:
                        return None
                """,
        })
        assert "REPRO-G004" not in rules_fired(result)


# ------------------------------------ REPRO-G005 (deadline coverage)


class TestDeadlineCoverage:
    def test_unbounded_loop_reachable_from_run_flow_fires(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/flow.py": """
                def run_flow(design):
                    return spin(design)


                def spin(design):
                    while True:
                        design.step()
                """,
        })
        fired = [f for f in result.findings if f.rule == "REPRO-G005"]
        assert fired, rules_fired(result)
        assert fired[0].path == "proj/flow.py"
        assert "spin" in fired[0].message

    def test_tick_one_call_down_covers_the_loop(self, tmp_path):
        # the whole point of G005 over G001: an interprocedural tick
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/flow.py": """
                from repro.guard import check_deadline


                def run_flow(design):
                    return spin(design)


                def tick_and_step(design):
                    check_deadline("proj.spin")
                    design.step()


                def spin(design):
                    while True:
                        tick_and_step(design)
                """,
        })
        assert "REPRO-G005" not in rules_fired(result)

    def test_unreachable_loop_is_ignored(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/tools.py": """
                def repl():
                    while True:
                        input()
                """,
        })
        assert "REPRO-G005" not in rules_fired(result)

    def test_bounded_loop_is_clean(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/flow.py": """
                def run_flow(design):
                    return spin(design, 10)


                def spin(design, n):
                    i = 0
                    while i < n:
                        design.step()
                        i += 1
                """,
        })
        assert "REPRO-G005" not in rules_fired(result)


# ----------------------------------------------- summaries & engine


class TestSummaries:
    def test_summary_records_param_and_source_flow(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/mix.py": """
                import random


                def mix(base):
                    return base + random.random()
                """,
        })
        summary = result.summaries["proj.mix.mix"]
        assert 0 in summary.param_to_return
        assert any(
            isinstance(label, Taint) and label.kind == "rng"
            for label in summary.return_taint
        )

    def test_stats_are_deterministic_across_runs(self, tmp_path):
        files = dict(TestRngTaint.FILES)
        first = analyze(tmp_path, files)
        second = run_dataflow([tmp_path], relative_to=tmp_path)
        assert first.stats == second.stats
        assert first.stats["modules"] == 3
        assert first.stats["resolved_edges"] >= 1

    def test_parse_error_is_reported_not_fatal(self, tmp_path):
        result = analyze(tmp_path, {
            "proj/__init__.py": "",
            "proj/bad.py": "def broken(:\n",
            "proj/good.py": "x = 1\n",
        })
        assert result.parse_errors
        assert result.parse_errors[0][0] == "proj/bad.py"


class TestProjectResolution:
    def test_typed_attribute_chain_resolves(self, tmp_path):
        write_project(tmp_path, {
            "proj/__init__.py": "",
            "proj/router.py": """
                class Router:
                    def route_all(self):
                        return 1
                """,
            "proj/flow.py": """
                from proj.router import Router


                def run_flow(design):
                    router = Router()
                    return router.route_all()
                """,
        })
        project = Project.load(
            iter_python_files([tmp_path]), relative_to=tmp_path
        )
        index = build_call_index(project)
        callees = {
            site.callee
            for site in index.calls.get("proj.flow.run_flow", ())
        }
        assert "proj.router.Router.route_all" in callees


# ----------------------------------------- the repo's own source tree


class TestRepoIsClean:
    def test_src_has_no_dataflow_errors(self):
        # The acceptance bar: the interprocedural passes run clean on
        # the repo itself (real hazards get fixed, not accumulated).
        result = run_dataflow(["src"], relative_to=".")
        errors = [
            f for f in result.findings if f.severity is Severity.ERROR
        ]
        assert errors == []

    def test_unified_analysis_is_clean_and_fast(self):
        analysis = run_source_analysis(["src"], relative_to=".")
        assert analysis.ok
        assert analysis.findings == []
        assert analysis.dataflow_stats["modules"] > 100

"""Unit tests for the global router: patterns, layer DP, maze, driver."""

import pytest

from repro.grid import CostModel, CostParams, EdgeKind, GridEdge
from repro.groute import GlobalRouter, maze_route, pattern_paths_2d
from repro.groute.patterns import runs_of_path

from helpers import add_cell, add_two_pin_net, build_tiny_design, fresh_small


# --------------------------------------------------------------- patterns


def test_same_point():
    assert pattern_paths_2d((3, 3), (3, 3)) == [[(3, 3)]]


def test_straight_line_single_path():
    assert pattern_paths_2d((0, 2), (5, 2)) == [[(0, 2), (5, 2)]]


def test_l_and_z_shapes():
    paths = pattern_paths_2d((0, 0), (6, 4), num_z_samples=2)
    assert [(0, 0), (6, 0), (6, 4)] in paths
    assert [(0, 0), (0, 4), (6, 4)] in paths
    z_paths = [p for p in paths if len(p) == 4]
    assert z_paths
    for path in paths:
        assert path[0] == (0, 0) and path[-1] == (6, 4)
        for (x0, y0), (x1, y1) in zip(path[:-1], path[1:]):
            assert x0 == x1 or y0 == y1  # axis-aligned runs only


def test_adjacent_cells_no_z():
    paths = pattern_paths_2d((0, 0), (1, 1))
    # no interior samples exist; only the two L shapes
    assert len(paths) == 2


def test_runs_of_path_drops_degenerate():
    runs = runs_of_path([(0, 0), (0, 0), (3, 0), (3, 2)])
    assert runs == [((0, 0), (3, 0)), ((3, 0), (3, 2))]


# ------------------------------------------------------------- pattern 3D


@pytest.fixture()
def routed_tiny(tech45):
    from repro.db.design import GCellGridSpec

    design = build_tiny_design(tech45, num_rows=8, sites_per_row=60)
    design.gcell_grid = GCellGridSpec(
        origin_x=0,
        origin_y=0,
        step_x=design.die.width // 8,
        step_y=design.die.height // 8,
        nx=8,
        ny=8,
    )
    add_cell(design, "a", "INV_X1", 2, 0)
    add_cell(design, "b", "INV_X1", 50, 6)
    add_two_pin_net(design, "n", "a", "b")
    return design


def test_pattern3d_straight(routed_tiny):
    router = GlobalRouter(routed_tiny)
    result = router.pattern3d.route([(0, 0), (3, 0)], 0, 0)
    assert result is not None
    wires = [e for e in result.edges if e.kind is EdgeKind.WIRE]
    vias = [e for e in result.edges if e.kind is EdgeKind.VIA]
    assert len(wires) == 3
    # Run must sit on a horizontal layer >= min_wire_layer; vias connect
    # pin layer 0 up and back down.
    layers = {e.layer for e in wires}
    assert len(layers) == 1
    layer = layers.pop()
    assert router.graph.tech.layers[layer].is_horizontal
    assert layer >= router.graph.min_wire_layer
    assert vias


def test_pattern3d_same_gcell_via_stack(routed_tiny):
    router = GlobalRouter(routed_tiny)
    result = router.pattern3d.route([(2, 2)], 0, 3)
    assert result is not None
    assert all(e.kind is EdgeKind.VIA for e in result.edges)
    assert len(result.edges) == 3


def test_pattern3d_free_end_layer(routed_tiny):
    router = GlobalRouter(routed_tiny)
    result = router.pattern3d.route([(0, 0), (4, 0)], 0, None)
    assert result is not None
    assert result.end_layer >= 1


def test_pattern3d_avoids_congested_layer(routed_tiny):
    router = GlobalRouter(routed_tiny)
    graph = router.graph
    # Saturate the cheapest horizontal layer along the path.
    h_layers = [
        l.index
        for l in graph.tech.layers
        if l.is_horizontal and l.index >= graph.min_wire_layer
    ]
    clean = router.pattern3d.route([(0, 0), (3, 0)], 0, 0)
    used_layer = next(e.layer for e in clean.edges if e.kind is EdgeKind.WIRE)
    for gx in range(3):
        graph.add_wire(
            GridEdge(used_layer, gx, 0, EdgeKind.WIRE),
            amount=graph.capacity(GridEdge(used_layer, gx, 0, EdgeKind.WIRE)) + 5,
        )
    rerouted = router.pattern3d.route([(0, 0), (3, 0)], 0, 0)
    new_layer = next(e.layer for e in rerouted.edges if e.kind is EdgeKind.WIRE)
    assert new_layer != used_layer


# ------------------------------------------------------------------ maze


def test_maze_route_connects(routed_tiny):
    router = GlobalRouter(routed_tiny)
    path = maze_route(
        router.graph, router.cost, sources={(1, 0, 0)}, targets={(1, 3, 3)}
    )
    assert path is not None
    # Path must be a connected edge walk from source to target.
    nodes = set()
    for edge in path:
        a, b = edge.endpoints(router.graph)
        nodes.add(a)
        nodes.add(b)
    assert (1, 0, 0) in nodes and (1, 3, 3) in nodes


def test_maze_route_trivial_overlap(routed_tiny):
    router = GlobalRouter(routed_tiny)
    assert maze_route(router.graph, router.cost, {(1, 0, 0)}, {(1, 0, 0)}) == []


def test_maze_route_empty_inputs(routed_tiny):
    router = GlobalRouter(routed_tiny)
    assert maze_route(router.graph, router.cost, set(), {(1, 0, 0)}) is None


# ----------------------------------------------------------------- driver


def test_route_net_commits_usage(routed_tiny):
    router = GlobalRouter(routed_tiny)
    route = router.route_net("n")
    assert route.edges
    assert router.total_wirelength_dbu() > 0
    assert router.net_cost("n") > 0
    router.rip_up("n")
    assert router.total_wirelength_dbu() == 0
    assert router.total_vias() == 0
    assert router.net_cost("n") == 0.0


def test_route_all_covers_every_net():
    design = fresh_small()
    router = GlobalRouter(design)
    router.route_all()
    assert set(router.routes) == set(design.nets)
    for net in design.nets.values():
        if len(router.terminals_of(net)) > 1:
            assert router.routes[net.name].edges, net.name


def test_routes_are_connected_trees():
    """Every route's edges form a connected subgraph spanning terminals."""
    design = fresh_small()
    router = GlobalRouter(design)
    router.route_all()
    for name, route in router.routes.items():
        if not route.edges:
            continue
        nodes = route.nodes(router.graph)
        # BFS over edges from one terminal must reach all terminals.
        adjacency = {}
        for edge in route.edges:
            a, b = edge.endpoints(router.graph)
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        start = route.terminals[0]
        seen = {start}
        stack = [start]
        while stack:
            cur = stack.pop()
            for nxt in adjacency.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        for terminal in route.terminals:
            assert terminal in seen, (name, terminal)


def test_reroute_after_cell_move(routed_tiny):
    router = GlobalRouter(routed_tiny)
    router.route_all()
    before = router.net_cost("n")
    design = routed_tiny
    # Move cell b right next to a: the net should become much cheaper.
    row = design.rows[0]
    design.move_cell("b", row.site_x(5), row.origin_y, row.orient)
    dirty = router.dirty_nets_for_cells(["b"])
    assert dirty == ["n"]
    router.reroute_nets(dirty)
    after = router.net_cost("n")
    assert after < before


def test_cell_cost_sums_nets(routed_tiny):
    router = GlobalRouter(routed_tiny)
    router.route_all()
    assert router.cell_cost("a") == pytest.approx(router.net_cost("n"))


def test_guides_cover_route():
    design = fresh_small()
    router = GlobalRouter(design)
    router.route_all()
    guides = router.guides()
    assert set(guides) == set(router.routes)
    for name, route in router.routes.items():
        rects = guides[name]
        assert rects
        per_layer = {}
        for g in rects:
            per_layer.setdefault(g.layer, []).append(g.rect)
        for edge in route.edges:
            for layer, gx, gy in edge.endpoints(router.graph):
                center = router.grid.center_of(gx, gy)
                assert any(
                    r.contains_point(center) for r in per_layer.get(layer, [])
                ), (name, edge)


def test_usage_consistent_after_rrr():
    """Graph usage equals the sum of all committed routes."""
    design = fresh_small(seed=7)
    router = GlobalRouter(design)
    router.route_all(rrr_passes=2)
    expected_vias = sum(r.via_count() for r in router.routes.values())
    assert router.total_vias() == expected_vias
    expected_wl = sum(
        r.wirelength_dbu(router.grid, router.graph) for r in router.routes.values()
    )
    assert router.total_wirelength_dbu() == expected_wl

"""Unit tests for the detailed router: lattice, access, A*, DRC, driver."""

import pytest

from repro.geom import Point, Rect
from repro.db import Blockage, Net, NetPin
from repro.droute import DetailedRouter, DrcKind, TrackLattice
from repro.droute.access import access_nodes
from repro.droute.astar import SearchParams, astar_connect
from repro.droute.drc import check_min_area, check_shorts
from repro.droute.obstacles import BLOCKED, build_obstacle_map
from repro.groute import GlobalRouter

from helpers import add_cell, add_two_pin_net, build_tiny_design, fresh_small


# --------------------------------------------------------------- lattice


def test_lattice_coordinate_roundtrip(tech45):
    lattice = TrackLattice(tech45, Rect(0, 0, 10000, 7000))
    assert lattice.pitch == 200
    for ix in (0, 5, lattice.nx - 1):
        assert lattice.ix_of(lattice.x_of(ix)) == ix
    for iy in (0, 3, lattice.ny - 1):
        assert lattice.iy_of(lattice.y_of(iy)) == iy


def test_lattice_node_at_clamps(tech45):
    lattice = TrackLattice(tech45, Rect(0, 0, 10000, 7000))
    node = lattice.node_at(0, Point(-500, 10**7))
    assert node == (0, 0, lattice.ny - 1)


def test_lattice_wire_neighbors_direction(tech45):
    lattice = TrackLattice(tech45, Rect(0, 0, 10000, 7000))
    # Layer 2 (Metal3) horizontal: neighbours differ in ix.
    for n in lattice.wire_neighbors((2, 5, 5)):
        assert n[0] == 2 and n[2] == 5
    # Layer 1 (Metal2) vertical.
    for n in lattice.wire_neighbors((1, 5, 5)):
        assert n[0] == 1 and n[1] == 5
    # Metal1 reserved for pins: no wire moves.
    assert lattice.wire_neighbors((0, 5, 5)) == []


def test_lattice_jog_neighbors_perpendicular(tech45):
    lattice = TrackLattice(tech45, Rect(0, 0, 10000, 7000))
    for n in lattice.jog_neighbors((2, 5, 5)):
        assert n[1] == 5 and n[2] != 5


def test_lattice_nodes_in_rect(tech45):
    lattice = TrackLattice(tech45, Rect(0, 0, 10000, 7000))
    nodes = lattice.nodes_in_rect(0, Rect(50, 50, 350, 350))
    # tracks at 100 and 300 in both axes
    assert set(nodes) == {(0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1)}


def test_lattice_requires_uniform_pitch(tech45):
    import copy

    tech = copy.deepcopy(tech45)
    tech.layers[3].pitch = 123
    with pytest.raises(ValueError):
        TrackLattice(tech, Rect(0, 0, 1000, 1000))


# ------------------------------------------------------------- obstacles


def test_obstacle_map_pin_ownership(tiny_design):
    lattice = TrackLattice(tiny_design.tech, tiny_design.die)
    owner, _ = build_obstacle_map(tiny_design, lattice)
    net = tiny_design.nets["n1"]
    for pin in net.pins:
        for node in access_nodes(tiny_design, lattice, pin):
            assert owner.get(node) == "n1"
            above = (node[0] + 1, node[1], node[2])
            assert owner.get(above) == "n1"  # reserved escape


def test_obstacle_map_blockage(tiny_design):
    tiny_design.add_blockage(Blockage(2, Rect(0, 0, 2000, 2000)))
    lattice = TrackLattice(tiny_design.tech, tiny_design.die)
    owner, _ = build_obstacle_map(tiny_design, lattice)
    assert owner.get((2, 0, 0)) == BLOCKED


def test_unconnected_pins_block(tech45):
    design = build_tiny_design(tech45)
    add_cell(design, "a", "NAND2_X1", 0, 0)  # no nets at all
    lattice = TrackLattice(tech45, design.die)
    owner, _ = build_obstacle_map(design, lattice)
    pin_node = lattice.node_at(0, design.cells["a"].pin_position("A"))
    assert owner.get(pin_node) == BLOCKED


# ----------------------------------------------------------------- astar


def test_astar_direct_path(tech45):
    design = build_tiny_design(tech45, num_rows=6, sites_per_row=40)
    lattice = TrackLattice(tech45, design.die)
    params = SearchParams(via_cost=800)
    result = astar_connect(
        lattice,
        sources={(1, 5, 5)},
        targets={(1, 5, 15)},
        net="n",
        owner={},
        occupancy={},
        bounds=(0, 0, lattice.nx - 1, lattice.ny - 1),
        guide_nodes=None,
        params=params,
        soft=False,
    )
    assert result is not None
    assert result.path[0] == (1, 5, 5)
    assert result.path[-1] == (1, 5, 15)
    assert len(result.path) == 11  # straight vertical run on Metal2
    assert result.conflicts == []


def test_astar_hard_blocked_by_other_net(tech45):
    design = build_tiny_design(tech45, num_rows=6, sites_per_row=40)
    lattice = TrackLattice(tech45, design.die)
    params = SearchParams()
    # Wall of foreign occupancy across every layer at iy=10.
    occupancy = {
        (l, ix, 10): "enemy"
        for l in range(tech45.num_layers)
        for ix in range(lattice.nx)
    }
    kwargs = dict(
        lattice=lattice,
        sources={(1, 5, 5)},
        targets={(1, 5, 15)},
        net="n",
        owner={},
        occupancy=occupancy,
        bounds=(0, 0, lattice.nx - 1, lattice.ny - 1),
        guide_nodes=None,
        params=params,
    )
    hard = astar_connect(soft=False, **kwargs)
    assert hard is None
    soft = astar_connect(soft=True, **kwargs)
    assert soft is not None
    assert soft.conflicts  # it had to cross the wall


def test_astar_blocked_nodes_impassable_even_soft(tech45):
    design = build_tiny_design(tech45, num_rows=6, sites_per_row=40)
    lattice = TrackLattice(tech45, design.die)
    owner = {
        (l, ix, 10): BLOCKED
        for l in range(tech45.num_layers)
        for ix in range(lattice.nx)
    }
    result = astar_connect(
        lattice,
        sources={(1, 5, 5)},
        targets={(1, 5, 15)},
        net="n",
        owner=owner,
        occupancy={},
        bounds=(0, 0, lattice.nx - 1, lattice.ny - 1),
        guide_nodes=None,
        params=SearchParams(),
        soft=True,
    )
    assert result is None


def test_astar_source_in_targets(tech45):
    lattice = TrackLattice(tech45, Rect(0, 0, 8000, 5600))
    result = astar_connect(
        lattice,
        sources={(1, 2, 2)},
        targets={(1, 2, 2), (1, 9, 9)},
        net="n",
        owner={},
        occupancy={},
        bounds=(0, 0, 10, 10),
        guide_nodes=None,
        params=SearchParams(),
        soft=False,
    )
    assert result is not None
    assert result.cost == 0.0


# ------------------------------------------------------------------- drc


def test_check_shorts_clusters_adjacent_nodes():
    conflicts = {
        (1, 5, 5): ("a", "b"),
        (1, 5, 6): ("a", "b"),  # adjacent: same cluster
        (1, 9, 9): ("a", "b"),  # separate cluster
        (2, 5, 5): ("a", "c"),  # different layer/pair
    }
    violations = check_shorts(conflicts)
    assert len(violations) == 3
    assert all(v.kind is DrcKind.SHORT for v in violations)


def test_check_min_area_exempts_pins(tech45):
    lattice = TrackLattice(tech45, Rect(0, 0, 8000, 5600))
    lonely = {(1, 3, 3)}
    violations = check_min_area(
        lattice, {"n": lonely}, {"n": set()}
    )
    assert len(violations) == 1
    assert violations[0].kind is DrcKind.MIN_AREA
    # Same patch exempted when a pin supplies the area.
    violations = check_min_area(lattice, {"n": lonely}, {"n": lonely})
    assert violations == []


def test_check_min_area_passes_long_runs(tech45):
    lattice = TrackLattice(tech45, Rect(0, 0, 8000, 5600))
    run = {(1, 3, y) for y in range(3, 8)}
    assert check_min_area(lattice, {"n": run}, {"n": set()}) == []


# ---------------------------------------------------------------- driver


def test_detailed_route_two_pin(tech45):
    design = build_tiny_design(tech45, num_rows=4, sites_per_row=30)
    add_cell(design, "a", "INV_X1", 1, 0)
    add_cell(design, "b", "INV_X1", 20, 2)
    add_two_pin_net(design, "n", "a", "b")
    router = DetailedRouter(design)
    result = router.route_all(guides=None)
    assert result.violations == []
    assert result.vias >= 2  # at least down/up from the pin layer
    assert result.wirelength_dbu > 0
    assert "n" in result.paths


def test_detailed_route_respects_guides():
    design = fresh_small()
    gr = GlobalRouter(design)
    gr.route_all()
    guides = gr.guides()
    router = DetailedRouter(design)
    result = router.route_all(guides)
    # Quality: wirelength at least the sum of net HPWLs * something sane.
    assert result.wirelength_dbu > 0
    assert result.vias > 0
    assert result.runtime_s > 0
    # Every routed path stays within its guide + margin or is a short DRV.
    opens = [v for v in result.violations if v.kind is DrcKind.OPEN]
    assert len(opens) <= 1


def test_detailed_route_deterministic():
    design1 = fresh_small()
    design2 = fresh_small()
    r1 = DetailedRouter(design1).route_all(None)
    r2 = DetailedRouter(design2).route_all(None)
    assert r1.wirelength_dbu == r2.wirelength_dbu
    assert r1.vias == r2.vias
    assert len(r1.violations) == len(r2.violations)


def test_conflicting_pins_produce_short_not_crash(tech45):
    """Two nets forced through one corridor may short but never crash."""
    design = build_tiny_design(tech45, num_rows=2, sites_per_row=20)
    add_cell(design, "a0", "INV_X1", 0, 0)
    add_cell(design, "b0", "INV_X1", 18, 0)
    add_cell(design, "a1", "INV_X1", 2, 0)
    add_cell(design, "b1", "INV_X1", 16, 0)
    add_two_pin_net(design, "n0", "a0", "b0")
    add_two_pin_net(design, "n1", "a1", "b1")
    router = DetailedRouter(design)
    result = router.route_all(None)
    # Both nets must be electrically complete (no opens).
    assert not [v for v in result.violations if v.kind is DrcKind.OPEN]


def test_min_area_patching_adds_wirelength(tech45):
    """A net needing a via stack gets patched metal, not a violation."""
    design = build_tiny_design(tech45, num_rows=4, sites_per_row=30)
    add_cell(design, "a", "INV_X1", 1, 0)
    add_cell(design, "b", "INV_X1", 20, 3)
    add_two_pin_net(design, "n", "a", "b")
    result = DetailedRouter(design).route_all(None)
    assert not [v for v in result.violations if v.kind is DrcKind.MIN_AREA]

"""Unit and property tests for the RSMT constructor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geom import Point, manhattan
from repro.flute import SteinerTree, build_rsmt, rsmt_length

coords = st.integers(min_value=0, max_value=10000)
points = st.builds(Point, coords, coords)


def test_empty_rejected():
    with pytest.raises(ValueError):
        build_rsmt([])


def test_single_terminal():
    tree = build_rsmt([Point(5, 5)])
    assert tree.num_terminals == 1
    assert tree.edges == []
    assert tree.length() == 0


def test_duplicates_collapse():
    tree = build_rsmt([Point(1, 1)] * 5 + [Point(3, 3)])
    assert tree.num_terminals == 2
    assert tree.length() == 4


def test_two_terminals():
    tree = build_rsmt([Point(0, 0), Point(10, 5)])
    assert tree.length() == 15


def test_three_collinear_no_steiner():
    tree = build_rsmt([Point(0, 0), Point(5, 0), Point(10, 0)])
    assert tree.length() == 10
    assert len(tree.points) == 3  # median coincides with middle terminal


def test_three_l_shape():
    tree = build_rsmt([Point(0, 0), Point(10, 0), Point(10, 10)])
    assert tree.length() == 20


def test_three_steiner_point_added():
    # Symmetric Y: optimal via Steiner point at (5, 5)
    tree = build_rsmt([Point(0, 0), Point(10, 0), Point(5, 10)])
    assert tree.length() == 20
    assert len(tree.points) == 4


def test_cross_benefits_from_steiner():
    terminals = [Point(5, 0), Point(5, 10), Point(0, 5), Point(10, 5)]
    tree = build_rsmt(terminals)
    # MST would cost 30; the Steiner cross costs 20.
    assert tree.length() == 20


def test_validate_rejects_cycles():
    tree = SteinerTree(
        points=[Point(0, 0), Point(1, 0), Point(1, 1)],
        edges=[(0, 1), (1, 2), (2, 0)],
        num_terminals=3,
    )
    with pytest.raises(ValueError):
        tree.validate()


def test_validate_rejects_wrong_edge_count():
    tree = SteinerTree(points=[Point(0, 0), Point(1, 0)], edges=[], num_terminals=2)
    with pytest.raises(ValueError):
        tree.validate()


def test_segments_cover_edges():
    tree = build_rsmt([Point(0, 0), Point(4, 4), Point(8, 0)])
    assert len(tree.segments()) == len(tree.edges)


@settings(max_examples=60, deadline=None)
@given(st.lists(points, min_size=2, max_size=12))
def test_tree_is_spanning_and_bounded(terminals):
    tree = build_rsmt(terminals)
    tree.validate()  # spanning tree over all points
    unique = {p.as_tuple() for p in terminals}
    assert tree.num_terminals == len(unique)
    # All terminals must appear among tree points.
    tree_points = {p.as_tuple() for p in tree.points}
    assert unique <= tree_points


@settings(max_examples=60, deadline=None)
@given(st.lists(points, min_size=2, max_size=10))
def test_length_at_most_mst_and_at_least_half_perimeter(terminals):
    tree = build_rsmt(terminals)
    unique = list({p.as_tuple(): p for p in terminals}.values())
    # Lower bound: HPWL/... actually RSMT >= half-perimeter of bbox.
    hpwl = (
        max(p.x for p in unique) - min(p.x for p in unique)
        + max(p.y for p in unique) - min(p.y for p in unique)
    )
    assert tree.length() >= hpwl / 2
    # Upper bound: never worse than the Prim MST over terminals.
    mst = _prim_length(unique)
    assert tree.length() <= mst


def _prim_length(pts):
    n = len(pts)
    if n < 2:
        return 0
    in_tree = [False] * n
    dist = [float("inf")] * n
    in_tree[0] = True
    for j in range(1, n):
        dist[j] = manhattan(pts[0], pts[j])
    total = 0
    for _ in range(n - 1):
        best = min(
            (j for j in range(n) if not in_tree[j]), key=lambda j: dist[j]
        )
        total += dist[best]
        in_tree[best] = True
        for j in range(n):
            if not in_tree[j]:
                d = manhattan(pts[best], pts[j])
                if d < dist[j]:
                    dist[j] = d
    return total


def test_rsmt_length_helper_matches_tree():
    terminals = [Point(0, 0), Point(7, 3), Point(2, 9), Point(5, 5)]
    assert rsmt_length(terminals) == build_rsmt(terminals).length()

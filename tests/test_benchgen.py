"""Unit tests for the synthetic benchmark generator and suite."""

import pytest

from repro.db import check_legality
from repro.benchgen import SUITE, generate_design, make_design, suite_table
from repro.benchgen.generator import DesignSpec
from repro.benchgen.suites import PAPER_TABLE2
from repro.tech import PinDirection


def small_spec(**overrides):
    params = dict(
        name="gen_test",
        num_cells=80,
        num_nets=70,
        utilization=0.75,
        gcells_per_axis=8,
        num_iopins=6,
        seed=99,
    )
    params.update(overrides)
    return DesignSpec(**params)


def test_generated_design_is_legal():
    design = generate_design(small_spec())
    report = check_legality(design)
    assert report.is_legal, report.summary()


def test_generated_counts_match_spec():
    spec = small_spec()
    design = generate_design(spec)
    assert len(design.cells) == spec.num_cells
    assert len(design.nets) == spec.num_nets
    assert len(design.iopins) == spec.num_iopins


def test_generation_is_deterministic():
    a = generate_design(small_spec())
    b = generate_design(small_spec())
    assert [c.x for c in a.cells.values()] == [c.x for c in b.cells.values()]
    assert [
        [p.key() for p in n.pins] for n in a.nets.values()
    ] == [[p.key() for p in n.pins] for n in b.nets.values()]


def test_different_seeds_differ():
    a = generate_design(small_spec(seed=1))
    b = generate_design(small_spec(seed=2))
    assert [c.x for c in a.cells.values()] != [c.x for c in b.cells.values()]


def test_each_pin_used_at_most_once():
    design = generate_design(small_spec())
    used = set()
    for net in design.nets.values():
        for pin in net.pins:
            if pin.cell is None:
                continue
            key = (pin.cell, pin.pin)
            assert key not in used, key
            used.add(key)


def test_nets_have_one_driver():
    design = generate_design(small_spec())
    for net in design.nets.values():
        drivers = [
            p
            for p in net.pins
            if p.cell is not None
            and design.cells[p.cell].macro.pin(p.pin).direction
            is PinDirection.OUTPUT
        ]
        assert len(drivers) == 1, net.name


def test_blockages_generated():
    design = generate_design(small_spec(num_blockages=2, utilization=0.6))
    assert len(design.placement_blockages()) == 2
    assert design.routing_blockages()
    assert check_legality(design).is_legal


def test_locality_controls_wirelength():
    local = generate_design(small_spec(locality=0.95, seed=5))
    globl = generate_design(small_spec(locality=0.05, seed=5))
    assert local.total_hpwl() < globl.total_hpwl()


def test_utilization_tracks_spec():
    design = generate_design(small_spec(utilization=0.8, num_blockages=0))
    assert 0.5 <= design.utilization() <= 0.9


def test_suite_covers_table2():
    assert set(SUITE) == set(PAPER_TABLE2)
    rows = suite_table()
    assert len(rows) == 10
    for row in rows:
        # scaled counts preserve the published cells/nets ratio within 20%
        paper_ratio = row["paper_cells"] / row["paper_nets"]
        ours_ratio = row["cells"] / row["nets"]
        assert ours_ratio == pytest.approx(paper_ratio, rel=0.2), row["circuit"]


def test_make_design_known_and_unknown():
    design = make_design("ispd18_test1")
    assert design.name == "ispd18_test1"
    assert check_legality(design).is_legal
    with pytest.raises(KeyError):
        make_design("ispd18_test99")


def test_test2_less_congested_than_test5():
    """The suite encodes the paper's congestion ordering."""
    assert SUITE["ispd18_test2"].utilization < SUITE["ispd18_test5"].utilization
    assert SUITE["ispd18_test2"].num_blockages < SUITE["ispd18_test5"].num_blockages


def test_same_spec_generates_identical_def_bytes():
    """Regression for the RNG plumbing: two generations, one byte stream.

    Every generator path derives from the single seeded stream built by
    ``DesignSpec.rng()``, so regenerating a spec must reproduce the DEF
    byte-for-byte — the property ``repro.par`` spawn workers rely on.
    """
    from repro.lefdef.def_parser import write_def

    first = write_def(generate_design(small_spec())).encode()
    second = write_def(generate_design(small_spec())).encode()
    assert first == second


def test_generation_reproducible_across_spawn_process():
    """A spawn-started interpreter regenerates the same DEF bytes.

    ``spawn`` re-imports everything from scratch, so any hidden
    module-level randomness (import-time shuffles, unseeded globals)
    would change the bytes.
    """
    import subprocess
    import sys
    from pathlib import Path

    from repro.lefdef.def_parser import write_def

    src = Path(__file__).resolve().parent.parent / "src"
    script = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.benchgen.generator import DesignSpec, generate_design\n"
        "from repro.lefdef.def_parser import write_def\n"
        "spec = DesignSpec(name='gen_test', num_cells=80, num_nets=70,\n"
        "                  utilization=0.75, gcells_per_axis=8,\n"
        "                  num_iopins=6, seed=99)\n"
        "sys.stdout.write(write_def(generate_design(spec)))\n"
    )
    child = subprocess.run(
        [sys.executable, "-c", script, str(src)],
        capture_output=True,
        text=True,
        check=True,
        timeout=120,
    )
    local = write_def(generate_design(small_spec()))
    assert child.stdout == local

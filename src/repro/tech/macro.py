"""LEF macros (standard-cell masters) and their pins."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.geom import Orientation, Rect, transform_rect


class PinDirection(Enum):
    """Signal direction of a macro pin."""

    INPUT = "INPUT"
    OUTPUT = "OUTPUT"
    INOUT = "INOUT"


@dataclass(frozen=True, slots=True)
class PinShape:
    """One rectangle of a pin's physical geometry on a routing layer."""

    layer: int
    rect: Rect


@dataclass(slots=True)
class MacroPin:
    """A named pin of a macro with its physical shapes (macro-local)."""

    name: str
    direction: PinDirection
    shapes: list[PinShape] = field(default_factory=list)

    def bbox(self) -> Rect:
        """Bounding box over all shapes (macro-local coordinates)."""
        return Rect.bounding([s.rect for s in self.shapes])

    def placed_shapes(
        self, x: int, y: int, orient: Orientation, macro_w: int, macro_h: int
    ) -> list[PinShape]:
        """Shapes transformed into chip coordinates for a placement."""
        return [
            PinShape(s.layer, transform_rect(s.rect, orient, macro_w, macro_h).translated(x, y))
            for s in self.shapes
        ]


@dataclass(slots=True)
class Macro:
    """A standard-cell master: size, pins, and routing obstructions."""

    name: str
    width: int
    height: int
    pins: dict[str, MacroPin] = field(default_factory=dict)
    obstructions: list[PinShape] = field(default_factory=list)
    site_name: str = ""

    def add_pin(self, pin: MacroPin) -> None:
        if pin.name in self.pins:
            raise ValueError(f"macro {self.name}: duplicate pin {pin.name}")
        self.pins[pin.name] = pin

    def pin(self, name: str) -> MacroPin:
        return self.pins[name]

    @property
    def area(self) -> int:
        return self.width * self.height

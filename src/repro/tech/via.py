"""Via definitions between adjacent routing layers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom import Rect


@dataclass(frozen=True, slots=True)
class ViaDef:
    """A default via connecting routing layer ``bottom`` to ``bottom + 1``.

    ``bottom_shape`` / ``top_shape`` are the landing-pad rectangles
    centered on the cut, expressed relative to the via's center point.
    """

    name: str
    bottom: int
    bottom_shape: Rect
    top_shape: Rect

    @property
    def top(self) -> int:
        return self.bottom + 1

"""Routing and cut layers."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LayerDirection(Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "HORIZONTAL"
    VERTICAL = "VERTICAL"

    @property
    def other(self) -> "LayerDirection":
        if self is LayerDirection.HORIZONTAL:
            return LayerDirection.VERTICAL
        return LayerDirection.HORIZONTAL


@dataclass(slots=True)
class Layer:
    """A metal (routing) layer.

    ``index`` counts routing layers from 0 (lowest metal).  Cut layers are
    implicit: a via connects routing layers ``i`` and ``i + 1``.

    Attributes mirror the LEF fields the detailed router and DRC engine
    need: ``pitch`` spaces the routing tracks, ``width`` is the default
    wire width, ``spacing`` the minimum same-layer spacing, ``min_area``
    the minimum metal polygon area, and ``offset`` the coordinate of track
    0.
    """

    name: str
    index: int
    direction: LayerDirection
    pitch: int
    width: int
    spacing: int
    min_area: int = 0
    offset: int = 0

    @property
    def is_horizontal(self) -> bool:
        return self.direction is LayerDirection.HORIZONTAL

    @property
    def is_vertical(self) -> bool:
        return self.direction is LayerDirection.VERTICAL

    def track_coord(self, track: int) -> int:
        """DBU coordinate of track number ``track`` on this layer."""
        return self.offset + track * self.pitch

    def nearest_track(self, coord: int) -> int:
        """Index of the track closest to ``coord`` (may be negative)."""
        return round((coord - self.offset) / self.pitch)

"""Placement sites."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Site:
    """A LEF SITE: the unit tile standard cells snap to.

    ``width`` is the horizontal placement quantum (Eq. 7 of the paper);
    ``height`` is the row height so cells align with power/ground rails
    (Eq. 8).
    """

    name: str
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"site {self.name}: non-positive dimensions")

"""The technology container assembled from a LEF file."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom import Rect
from repro.tech.layer import Layer
from repro.tech.macro import Macro
from repro.tech.site import Site
from repro.tech.via import ViaDef


@dataclass(slots=True)
class Technology:
    """Everything a design needs from LEF: sites, layers, vias, macros."""

    name: str = "tech"
    dbu_per_micron: int = 1000
    sites: dict[str, Site] = field(default_factory=dict)
    layers: list[Layer] = field(default_factory=list)
    vias: list[ViaDef] = field(default_factory=list)
    macros: dict[str, Macro] = field(default_factory=dict)

    def add_site(self, site: Site) -> None:
        self.sites[site.name] = site

    def add_layer(self, layer: Layer) -> None:
        if layer.index != len(self.layers):
            raise ValueError(
                f"layer {layer.name}: expected index {len(self.layers)}, got {layer.index}"
            )
        self.layers.append(layer)

    def add_macro(self, macro: Macro) -> None:
        if macro.name in self.macros:
            raise ValueError(f"duplicate macro {macro.name}")
        self.macros[macro.name] = macro

    def add_via(self, via: ViaDef) -> None:
        self.vias.append(via)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layer_by_name(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name}")

    def via_between(self, bottom: int) -> ViaDef:
        """The default via whose bottom routing layer is ``bottom``."""
        for via in self.vias:
            if via.bottom == bottom:
                return via
        raise KeyError(f"no via with bottom layer {bottom}")

    def default_site(self) -> Site:
        if not self.sites:
            raise ValueError("technology has no sites")
        return next(iter(self.sites.values()))

    def make_default_vias(self) -> None:
        """Create one square default via per adjacent routing-layer pair."""
        for lower, upper in zip(self.layers[:-1], self.layers[1:]):
            half = max(lower.width, upper.width) // 2
            pad = Rect(-half, -half, half, half)
            self.add_via(
                ViaDef(
                    name=f"VIA{lower.index}{upper.index}",
                    bottom=lower.index,
                    bottom_shape=pad,
                    top_shape=pad,
                )
            )

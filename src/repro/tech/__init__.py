"""Technology (LEF-level) objects: sites, layers, vias, macros."""

from repro.tech.layer import Layer, LayerDirection
from repro.tech.site import Site
from repro.tech.via import ViaDef
from repro.tech.macro import Macro, MacroPin, PinDirection, PinShape
from repro.tech.technology import Technology

__all__ = [
    "Layer",
    "LayerDirection",
    "Site",
    "ViaDef",
    "Macro",
    "MacroPin",
    "PinDirection",
    "PinShape",
    "Technology",
]

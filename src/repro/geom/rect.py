"""Axis-aligned integer rectangles."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point


@dataclass(frozen=True, slots=True, order=True)
class Rect:
    """A closed axis-aligned rectangle ``[lx, ux] x [ly, uy]`` in DBU.

    Degenerate rectangles (zero width or height) are allowed; they model
    wire centerline segments and on-track pin shapes.
    """

    lx: int
    ly: int
    ux: int
    uy: int

    def __post_init__(self) -> None:
        if self.lx > self.ux or self.ly > self.uy:
            raise ValueError(
                f"malformed Rect: ({self.lx}, {self.ly}, {self.ux}, {self.uy})"
            )

    @property
    def width(self) -> int:
        """Horizontal extent."""
        return self.ux - self.lx

    @property
    def height(self) -> int:
        """Vertical extent."""
        return self.uy - self.ly

    @property
    def area(self) -> int:
        """Enclosed area in DBU^2."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Integer center (rounded down)."""
        return Point((self.lx + self.ux) // 2, (self.ly + self.uy) // 2)

    def contains_point(self, p: Point, strict: bool = False) -> bool:
        """True if ``p`` lies inside the rectangle.

        With ``strict`` the boundary is excluded.
        """
        if strict:
            return self.lx < p.x < self.ux and self.ly < p.y < self.uy
        return self.lx <= p.x <= self.ux and self.ly <= p.y <= self.uy

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies fully inside (boundary allowed)."""
        return (
            self.lx <= other.lx
            and self.ly <= other.ly
            and self.ux >= other.ux
            and self.uy >= other.uy
        )

    def intersects(self, other: "Rect", strict: bool = True) -> bool:
        """True if the rectangles overlap.

        With ``strict`` (the default) mere edge/corner touching does not
        count as an intersection, which matches the overlap semantics of
        placement legality (abutting cells are legal).
        """
        if strict:
            return (
                self.lx < other.ux
                and other.lx < self.ux
                and self.ly < other.uy
                and other.ly < self.uy
            )
        return (
            self.lx <= other.ux
            and other.lx <= self.ux
            and self.ly <= other.uy
            and other.ly <= self.uy
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping region, or ``None`` when disjoint."""
        lx = max(self.lx, other.lx)
        ly = max(self.ly, other.ly)
        ux = min(self.ux, other.ux)
        uy = min(self.uy, other.uy)
        if lx > ux or ly > uy:
            return None
        return Rect(lx, ly, ux, uy)

    def union(self, other: "Rect") -> "Rect":
        """The bounding box of both rectangles."""
        return Rect(
            min(self.lx, other.lx),
            min(self.ly, other.ly),
            max(self.ux, other.ux),
            max(self.uy, other.uy),
        )

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return a copy shifted by ``(dx, dy)``."""
        return Rect(self.lx + dx, self.ly + dy, self.ux + dx, self.uy + dy)

    def inflated(self, margin: int) -> "Rect":
        """Return a copy grown by ``margin`` on every side."""
        return Rect(
            self.lx - margin, self.ly - margin, self.ux + margin, self.uy + margin
        )

    def as_tuple(self) -> tuple[int, int, int, int]:
        """Return ``(lx, ly, ux, uy)``."""
        return (self.lx, self.ly, self.ux, self.uy)

    @staticmethod
    def bounding(rects: "list[Rect]") -> "Rect":
        """Bounding box of a non-empty list of rectangles."""
        if not rects:
            raise ValueError("bounding box of empty list")
        return Rect(
            min(r.lx for r in rects),
            min(r.ly for r in rects),
            max(r.ux for r in rects),
            max(r.uy for r in rects),
        )

    @staticmethod
    def from_points(a: Point, b: Point) -> "Rect":
        """Rectangle spanned by two corner points in any order."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

"""DEF placement orientations and shape transforms.

Standard-cell rows alternate orientation so that power rails are shared;
the DEF orientations we need for row-based designs are ``N`` (north,
``R0``) and ``FS`` (flipped south, ``MX``).  The remaining six are
implemented for completeness of the DEF substrate.
"""

from __future__ import annotations

from enum import Enum

from repro.geom.rect import Rect


class Orientation(Enum):
    """The eight LEF/DEF component orientations."""

    N = "N"
    S = "S"
    W = "W"
    E = "E"
    FN = "FN"
    FS = "FS"
    FW = "FW"
    FE = "FE"

    @property
    def swaps_axes(self) -> bool:
        """True for the four 90/270-degree orientations."""
        return self in (Orientation.W, Orientation.E, Orientation.FW, Orientation.FE)

    @staticmethod
    def for_row(row_index: int) -> "Orientation":
        """Conventional alternating row orientation (even rows N, odd FS)."""
        return Orientation.N if row_index % 2 == 0 else Orientation.FS


def transform_rect(
    shape: Rect, orient: Orientation, macro_w: int, macro_h: int
) -> Rect:
    """Map a macro-local ``shape`` through ``orient``.

    ``shape`` is expressed in the macro's local frame (origin at the
    lower-left corner of the unrotated macro of size ``macro_w`` x
    ``macro_h``).  The result is in the placed frame whose origin is the
    placed component's lower-left corner, matching DEF ``PLACED pt orient``
    semantics.
    """
    lx, ly, ux, uy = shape.as_tuple()
    if orient is Orientation.N:
        return shape
    if orient is Orientation.S:
        return Rect(macro_w - ux, macro_h - uy, macro_w - lx, macro_h - ly)
    if orient is Orientation.FN:
        return Rect(macro_w - ux, ly, macro_w - lx, uy)
    if orient is Orientation.FS:
        return Rect(lx, macro_h - uy, ux, macro_h - ly)
    if orient is Orientation.W:
        return Rect(macro_h - uy, lx, macro_h - ly, ux)
    if orient is Orientation.E:
        return Rect(ly, macro_w - ux, uy, macro_w - lx)
    if orient is Orientation.FW:
        return Rect(ly, lx, uy, ux)
    if orient is Orientation.FE:
        return Rect(macro_h - uy, macro_w - ux, macro_h - ly, macro_w - lx)
    raise ValueError(f"unknown orientation {orient}")

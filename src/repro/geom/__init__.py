"""Geometric primitives used throughout the CR&P reproduction.

All coordinates are integers in database units (DBU).  The convention
follows LEF/DEF: ``x`` grows to the right, ``y`` grows upward, rectangles
are closed-open boxes described by their lower-left and upper-right
corners.
"""

from repro.geom.point import Point, manhattan
from repro.geom.rect import Rect
from repro.geom.orient import Orientation, transform_rect
from repro.geom.interval import Interval, merge_intervals, subtract_interval

__all__ = [
    "Point",
    "manhattan",
    "Rect",
    "Orientation",
    "transform_rect",
    "Interval",
    "merge_intervals",
    "subtract_interval",
]

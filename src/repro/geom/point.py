"""Integer points in DBU space."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """An integer point ``(x, y)`` in database units."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan_to(self, other: "Point") -> int:
        """Manhattan distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def manhattan(a: Point, b: Point) -> int:
    """Manhattan distance between two points."""
    return abs(a.x - b.x) + abs(a.y - b.y)

"""1-D integer intervals, used for row free-space bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True, order=True)
class Interval:
    """A closed integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"malformed Interval: [{self.lo}, {self.hi}]")

    @property
    def length(self) -> int:
        return self.hi - self.lo

    def contains(self, x: int) -> bool:
        return self.lo <= x <= self.hi

    def overlaps(self, other: "Interval", strict: bool = True) -> bool:
        """True when the intervals share more than a point (``strict``)."""
        if strict:
            return self.lo < other.hi and other.lo < self.hi
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)


def merge_intervals(intervals: list[Interval]) -> list[Interval]:
    """Merge touching/overlapping intervals into a minimal sorted list."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for iv in ordered[1:]:
        last = merged[-1]
        if iv.lo <= last.hi:
            merged[-1] = Interval(last.lo, max(last.hi, iv.hi))
        else:
            merged.append(iv)
    return merged


def subtract_interval(base: Interval, hole: Interval) -> list[Interval]:
    """Remove ``hole`` from ``base``; returns 0, 1, or 2 non-empty pieces."""
    if hole.hi <= base.lo or hole.lo >= base.hi:
        return [base]
    pieces: list[Interval] = []
    if hole.lo > base.lo:
        pieces.append(Interval(base.lo, hole.lo))
    if hole.hi < base.hi:
        pieces.append(Interval(hole.hi, base.hi))
    return pieces

"""Rectilinear Steiner minimal trees.

The original flow calls FLUTE, a lookup-table RSMT package.  The tables
are not redistributable, so this module provides an equivalent
constructor: exact solutions for up to 3 terminals (the bulk of real
netlists), and a Prim MST refined by greedy median-point steinerization
for larger nets.  The output is a tree over points, which the global
router decomposes into 2-pin segments for pattern routing (Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom import Point, manhattan
from repro.guard.deadline import check_deadline


@dataclass(slots=True)
class SteinerTree:
    """A tree over 2-D points.

    ``points[:num_terminals]`` are the original terminals (deduplicated);
    any points beyond that are Steiner points.  ``edges`` are index pairs
    into ``points``; each edge stands for an L-shaped rectilinear
    connection whose exact bend the pattern router chooses later.
    """

    points: list[Point]
    edges: list[tuple[int, int]]
    num_terminals: int

    def length(self) -> int:
        """Total rectilinear length of the tree."""
        return sum(
            manhattan(self.points[a], self.points[b]) for a, b in self.edges
        )

    def segments(self) -> list[tuple[Point, Point]]:
        """The 2-pin segments the tree decomposes into."""
        return [(self.points[a], self.points[b]) for a, b in self.edges]

    def degree_of(self, index: int) -> int:
        return sum(1 for a, b in self.edges if a == index or b == index)

    def validate(self) -> None:
        """Raise when the edge set is not a spanning tree over the points."""
        n = len(self.points)
        if n == 0:
            raise ValueError("empty tree")
        if len(self.edges) != n - 1:
            raise ValueError(f"{len(self.edges)} edges for {n} points")
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for a, b in self.edges:
            ra, rb = find(a), find(b)
            if ra == rb:
                raise ValueError("cycle in Steiner tree")
            parent[ra] = rb


def build_rsmt(terminals: list[Point]) -> SteinerTree:
    """Build a rectilinear Steiner tree over ``terminals``.

    Terminals are deduplicated first.  Up to 3 distinct terminals the
    result is optimal; beyond that a steinerized MST is returned (within
    1.5x of optimal by the classic MST bound, usually much closer).
    """
    unique: list[Point] = []
    seen: set[tuple[int, int]] = set()
    for p in terminals:
        key = p.as_tuple()
        if key not in seen:
            seen.add(key)
            unique.append(p)
    if not unique:
        raise ValueError("build_rsmt needs at least one terminal")
    if len(unique) == 1:
        return SteinerTree(points=unique, edges=[], num_terminals=1)
    if len(unique) == 2:
        return SteinerTree(points=unique, edges=[(0, 1)], num_terminals=2)
    if len(unique) == 3:
        return _exact_three(unique)
    return _steinerized_mst(unique)


def rsmt_length(terminals: list[Point]) -> int:
    """Length of :func:`build_rsmt` without keeping the tree."""
    return build_rsmt(terminals).length()


def _exact_three(pts: list[Point]) -> SteinerTree:
    """Optimal RSMT of 3 points: star through the coordinate-median point."""
    xs = sorted(p.x for p in pts)
    ys = sorted(p.y for p in pts)
    median = Point(xs[1], ys[1])
    for i, p in enumerate(pts):
        if p == median:
            edges = [(i, j) for j in range(3) if j != i]
            return SteinerTree(points=pts, edges=edges, num_terminals=3)
    points = pts + [median]
    return SteinerTree(points=points, edges=[(0, 3), (1, 3), (2, 3)], num_terminals=3)


def _prim_mst(pts: list[Point]) -> list[tuple[int, int]]:
    """Prim's MST under Manhattan distance (dense O(n^2))."""
    n = len(pts)
    in_tree = [False] * n
    best_dist = [float("inf")] * n
    best_from = [0] * n
    in_tree[0] = True
    for j in range(1, n):
        best_dist[j] = manhattan(pts[0], pts[j])
    edges: list[tuple[int, int]] = []
    for _ in range(n - 1):
        pick = -1
        pick_dist = float("inf")
        for j in range(n):
            if not in_tree[j] and best_dist[j] < pick_dist:
                pick = j
                pick_dist = best_dist[j]
        in_tree[pick] = True
        edges.append((best_from[pick], pick))
        for j in range(n):
            if not in_tree[j]:
                d = manhattan(pts[pick], pts[j])
                if d < best_dist[j]:
                    best_dist[j] = d
                    best_from[j] = pick
    return edges


def _steinerized_mst(terminals: list[Point]) -> SteinerTree:
    """MST refined by greedy median-point insertion.

    For every tree vertex with two or more neighbours, the coordinate
    median of (vertex, neighbour A, neighbour B) is tried as a Steiner
    point; the insertion with the largest length saving is applied,
    repeating until no insertion helps.
    """
    points = list(terminals)
    edges = {(min(a, b), max(a, b)) for a, b in _prim_mst(points)}
    num_terminals = len(points)

    def adj() -> dict[int, list[int]]:
        table: dict[int, list[int]] = {i: [] for i in range(len(points))}
        for a, b in edges:
            table[a].append(b)
            table[b].append(a)
        return table

    improved = True
    while improved:
        # Each pass strictly shortens the tree, so the loop terminates —
        # but a pass over a huge net is O(V·deg²) work, and route-stage
        # budgets must bound it like any other routing loop.
        check_deadline("flute.steiner")
        improved = False
        best_gain = 0
        best_move: tuple[int, int, int, Point] | None = None
        table = adj()
        for v, neighbours in table.items():
            for i in range(len(neighbours)):
                for j in range(i + 1, len(neighbours)):
                    a, b = neighbours[i], neighbours[j]
                    xs = sorted((points[v].x, points[a].x, points[b].x))
                    ys = sorted((points[v].y, points[a].y, points[b].y))
                    med = Point(xs[1], ys[1])
                    if med == points[v]:
                        continue
                    old = manhattan(points[v], points[a]) + manhattan(
                        points[v], points[b]
                    )
                    new = (
                        manhattan(points[v], med)
                        + manhattan(points[a], med)
                        + manhattan(points[b], med)
                    )
                    gain = old - new
                    if gain > best_gain:
                        best_gain = gain
                        best_move = (v, a, b, med)
        if best_move is not None:
            v, a, b, med = best_move
            # The median may coincide with a neighbour: re-hook through
            # it instead of creating a duplicate Steiner point.
            if med == points[a]:
                s = a
            elif med == points[b]:
                s = b
            else:
                points.append(med)
                s = len(points) - 1
            for pair in ((v, a), (a, v), (v, b), (b, v)):
                edges.discard(pair)
            for end in (v, a, b):
                if end != s:
                    edges.add((min(end, s), max(end, s)))
            improved = True

    tree = SteinerTree(
        points=points, edges=sorted(edges), num_terminals=num_terminals
    )
    tree.validate()
    return tree

"""Rectilinear Steiner minimal tree construction (FLUTE substitute)."""

from repro.flute.rsmt import SteinerTree, build_rsmt, rsmt_length

__all__ = ["SteinerTree", "build_rsmt", "rsmt_length"]

"""CR&P: An Efficient Co-operation between Routing and Placement.

A full Python reproduction of the DATE 2022 paper by Aghaeekiasaraee et
al.  The package contains every substrate the paper's flow depends on —
LEF/DEF parsing, a design database, a CUGR-style 3D global router, a
TritonRoute-style detailed router, an ILP solver, an ILP-based legalizer —
plus the paper's contribution: the CR&P iterative replacement-and-
rerouting framework, the Fontana et al. baseline it compares against, the
ISPD-2018-style evaluator, and a synthetic benchmark generator.

Quickstart::

    from repro import benchgen, flow

    design = benchgen.make_design("ispd18_test1")
    result = flow.run_flow(design, crp_iterations=1)
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "geom",
    "tech",
    "lefdef",
    "db",
    "grid",
    "flute",
    "ilp",
    "legalizer",
    "groute",
    "droute",
    "core",
    "baseline",
    "evalmetrics",
    "benchgen",
    "flow",
    "viz",
    "obs",
]

"""Pin access-point selection.

Each net terminal is mapped to one or more lattice nodes the router may
start or finish on: the track crossings covered by the pin's physical
shapes, falling back to the crossing nearest the pin center when the pin
is too small to cover any crossing exactly.
"""

from __future__ import annotations

from repro.db import Design, NetPin
from repro.droute.lattice import LNode, TrackLattice


def access_nodes(design: Design, lattice: TrackLattice, pin: NetPin) -> list[LNode]:
    """Candidate lattice nodes for one net terminal."""
    if pin.cell is None:
        io = design.iopins[pin.pin]
        nodes = lattice.nodes_in_rect(io.layer, io.rect)
        if nodes:
            return nodes
        return [lattice.node_at(io.layer, io.point)]
    cell = design.cells[pin.cell]
    nodes: list[LNode] = []
    for shape in cell.pin_shapes(pin.pin):
        nodes.extend(lattice.nodes_in_rect(shape.layer, shape.rect))
    if nodes:
        return sorted(set(nodes))
    point = cell.pin_position(pin.pin)
    layer = design.pin_layer(pin)
    return [lattice.node_at(layer, point)]

"""Obstacle and pin-ownership maps for detailed routing.

Every lattice node covered by a pin shape is *owned* by the net attached
to that pin (free for it, an obstacle for everyone else); nodes covered
by macro obstructions or routing blockages are blocked for all nets.
"""

from __future__ import annotations

from repro.db import Design
from repro.droute.lattice import LNode, TrackLattice

#: owner sentinel for hard blockages
BLOCKED = "\x00BLOCKED"


def build_obstacle_map(
    design: Design, lattice: TrackLattice
) -> tuple[dict[LNode, str], dict[str, list[LNode]]]:
    """Map lattice nodes to their owner (a net name or ``BLOCKED``).

    Returns ``(owner, reservations)``: ``reservations[net]`` lists the
    escape-via landings (the node directly above each pin) reserved for
    that net.  They stop other nets from walling off pin access, and the
    router releases the unused ones as soon as the owning net is routed
    so dense designs do not stay fragmented all the way through.
    """
    # Build-time map, scattered once into DrouteIndex.owner; never
    # read inside the search loop.
    owner: dict[LNode, str] = {}  # repro: noqa:REPRO-P001
    reservations: dict[str, list[LNode]] = {}

    for blockage in design.routing_blockages():
        for node in lattice.nodes_in_rect(blockage.layer, blockage.rect):
            owner[node] = BLOCKED

    for cell in design.cells.values():
        for shape in cell.obstruction_shapes():
            for node in lattice.nodes_in_rect(shape.layer, shape.rect):
                owner[node] = BLOCKED

    pin_net: dict[tuple[str | None, str], str] = {}
    for net in design.nets.values():
        for pin in net.pins:
            pin_net[(pin.cell, pin.pin)] = net.name

    num_layers = design.tech.num_layers
    for net in design.nets.values():
        for pin in net.pins:
            if pin.cell is None:
                io = design.iopins[pin.pin]
                shapes = [(io.layer, io.rect)]
            else:
                cell = design.cells[pin.cell]
                shapes = [
                    (s.layer, s.rect) for s in cell.pin_shapes(pin.pin)
                ]
            for layer, rect in shapes:
                for node in lattice.nodes_in_rect(layer, rect):
                    owner[node] = net.name
                    # Reserve the escape via stack (two layers) directly
                    # above the pin so other nets cannot wall off its
                    # only access; unused reservations are released once
                    # the owning net is routed.
                    for up in (1, 2):
                        if layer + up >= num_layers:
                            break
                        above = (layer + up, node[1], node[2])
                        if above not in owner:
                            owner[above] = net.name
                            reservations.setdefault(net.name, []).append(above)

    # Unconnected cell pins still block their nodes for every net.
    for cell in design.cells.values():
        for pin_name in cell.macro.pins:
            if (cell.name, pin_name) in pin_net:
                continue
            for shape in cell.pin_shapes(pin_name):
                for node in lattice.nodes_in_rect(shape.layer, shape.rect):
                    owner.setdefault(node, BLOCKED)
    return owner, reservations


def build_obstacle_index(design: Design, lattice: TrackLattice):
    """Dense indexed form of :func:`build_obstacle_map`.

    Builds the same ownership map, then scatters it once into a
    :class:`~repro.droute.indexed.DrouteIndex` — interned int32 net ids
    over flat node-id arrays.  Returns ``(index, reservations)``;
    reservations stay keyed by net name with tuple nodes (they are rare
    and never touched by the hot path).
    """
    from repro.droute.indexed import DrouteIndex

    owner, reservations = build_obstacle_map(design, lattice)
    return DrouteIndex(lattice, owner), reservations

"""Flat-array indexed A* kernel for detailed routing.

Addressing scheme: every lattice node ``(layer, ix, iy)`` maps to a flat
node id ``nid = (layer * ny + iy) * nx + ix``; net names are interned to
small ints (``FREE = 0``, ``BLOCKED_ID = 1``, nets from 2).  All per-node
state — ownership, wire occupancy, ``g_score``/``came_from``, target and
guide membership — lives in dense arrays indexed by nid instead of
dict-of-tuple maps, which removes the tuple hashing and boxing that
dominates the dict-based oracle (:func:`repro.droute.astar.astar_connect`).

Per-search state costs O(expanded), not O(lattice): ``g_score`` defaults
to ``inf`` and every slot written during a search is recorded in a local
``touched`` list and restored to ``inf`` in the search's ``finally``, so
a relax attempt reads exactly one array slot to learn the incumbent
cost.  Target membership is epoch-stamped (bump a counter, compare
stamps), and guide membership uses a per-net ``guide_stamp`` filled by
row-contiguous slice assignment, so building a net's guide region costs
O(guide-area) slice stores instead of O(guide-area) tuple insertions.

The owner array is scattered once from the dict built by
:func:`repro.droute.obstacles.build_obstacle_map` through a transient
``numpy`` int32 buffer; the *runtime* arrays are plain Python lists
because scalar ``list.__getitem__`` is markedly faster than
``ndarray.__getitem__`` (which boxes a fresh ``np.int32``/``np.float64``
per access) and float64 boxing would also poison the priority-queue
float comparisons with mixed-type elements.

Parity contract: :func:`astar_connect_indexed` is expansion-order-
identical to the oracle — same seed order (it iterates the caller's own
source/target sets), same FIFO tie-breaking within equal f values as the
oracle's tie counter, same float expressions for the heuristic and step
costs, same hard/soft conflict semantics — so paths, costs and conflict
lists are byte-identical.  ``DetailedRouter(
use_indexed=False)`` keeps the oracle live for the parity suite.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque

from repro.droute.astar import SearchParams, SearchResult, SearchStats
from repro.droute.lattice import LNode, TrackLattice
from repro.droute.obstacles import BLOCKED
from repro.guard.deadline import check_deadline
from repro.obs import get_metrics

#: owner/occupancy ids; net ids are interned starting at 2
FREE = 0
BLOCKED_ID = 1

_INF = float("inf")


class DrouteIndex:
    """Dense per-node routing state addressed by flat node ids.

    Net-id assignment follows interning order, which is process-local:
    ids never cross a process boundary (the parallel protocol ships node
    tuples and net *names*), so replicas may intern in a different order
    without affecting results.
    """

    __slots__ = (
        "lattice", "nx", "ny", "num_layers", "num_nodes",
        "names", "ids", "owner", "occupancy",
        "g_score", "came_from", "target_epoch", "guide_epoch",
        "gate", "epoch", "guide_stamp", "gate_stamp",
    )

    def __init__(self, lattice: TrackLattice, owner_map: dict[LNode, str]) -> None:
        self.lattice = lattice
        self.nx = nx = lattice.nx
        self.ny = ny = lattice.ny
        self.num_layers = num_layers = lattice.tech.num_layers
        self.num_nodes = n = num_layers * ny * nx
        self.names: list[str | None] = [None, BLOCKED]
        self.ids: dict[str, int] = {BLOCKED: BLOCKED_ID}

        import numpy as np

        owner = np.zeros(n, dtype=np.int32)
        for (layer, ix, iy), name in owner_map.items():
            owner[(layer * ny + iy) * nx + ix] = self.intern(name)
        self.owner: list[int] = owner.tolist()
        self.occupancy: list[int] = [0] * n
        #: inf everywhere between searches; each search restores what it
        #: wrote (its ``touched`` list) on the way out
        self.g_score: list[float] = [_INF] * n
        self.came_from: list[int] = [-1] * n
        self.target_epoch: list[int] = [0] * n
        self.guide_epoch: list[int] = [0] * n
        #: lazy per-search passability cache for the hard guided loop:
        #: ``gate_stamp + {0: base cost, 1: conflict penalty, 2: wall}``,
        #: anything older than the live stamp means "not classified yet"
        self.gate: list[int] = [0] * n
        self.epoch = 0
        self.guide_stamp = 0
        self.gate_stamp = 0

    # ------------------------------------------------------------- interning

    def intern(self, name: str) -> int:
        """Net name -> small int id (stable for the index's lifetime)."""
        nid = self.ids.get(name)
        if nid is None:
            nid = len(self.names)
            self.ids[name] = nid
            self.names.append(name)
        return nid

    def name_of(self, hid: int) -> str | None:
        return self.names[hid]

    # ------------------------------------------------------------ addressing

    def nid_of(self, node: LNode) -> int:
        layer, ix, iy = node
        return (layer * self.ny + iy) * self.nx + ix

    def node_of(self, nid: int) -> LNode:
        ix = nid % self.nx
        rest = nid // self.nx
        return (rest // self.ny, ix, rest % self.ny)

    # ---------------------------------------------------------------- guides

    def stamp_guides(
        self,
        per_layer: dict[int, list[tuple[int, int, int, int]]],
        terminal_access: list[list[LNode]],
    ) -> int:
        """Stamp one net's guide membership; returns the stamp handle.

        Rows are contiguous in ``ix``, so each span row is one slice
        assignment.  Terminals and their escape landings (one layer up)
        are always stamped, mirroring the oracle's guide-set build.
        """
        self.guide_stamp += 1
        stamp = self.guide_stamp
        ge = self.guide_epoch
        nx, ny = self.nx, self.ny
        num_layers = self.num_layers
        for layer, spans in per_layer.items():
            base = layer * ny
            for ix0, iy0, ix1, iy1 in spans:
                width = ix1 - ix0 + 1
                fill = [stamp] * width
                for iy in range(iy0, iy1 + 1):
                    row = (base + iy) * nx + ix0
                    ge[row:row + width] = fill
        for nodes in terminal_access:
            for layer, ix, iy in nodes:
                ge[(layer * ny + iy) * nx + ix] = stamp
                if layer + 1 < num_layers:
                    ge[((layer + 1) * ny + iy) * nx + ix] = stamp
        return stamp


def astar_connect_indexed(
    index: DrouteIndex,
    sources: set[LNode],
    targets: set[LNode],
    net: str,
    net_id: int,
    bounds: tuple[int, int, int, int],
    guide_stamp: int | None,
    params: SearchParams,
    soft: bool,
    stats: SearchStats | None = None,
) -> SearchResult | None:
    """Indexed twin of :func:`repro.droute.astar.astar_connect`.

    The open set is a *bucket queue*: a dict of per-f FIFO deques of
    ``(g, nid)`` pairs plus a small binary heap over the distinct f
    values that currently own a live bucket.  Popping the front of the
    minimum-f bucket yields entries in (f, insertion order) — exactly
    the (f, tie) order of the oracle's flat heap, entry for entry —
    while the measured ~6.7 pushes per distinct f mean most pushes are
    one dict probe plus a deque append instead of an O(log n) tuple
    sift.  Sources/targets are iterated from the caller's own sets so
    seeding order is shared with the oracle byte-for-byte, and the
    cyclic GC is paused for the duration of the search (millions of
    transient, cycle-free tuples otherwise trigger pointless
    generational sweeps).

    Three inner loops share one pop header; the two combinations the
    router actually issues — *hard inside guides* (every first attempt)
    and *soft with no guide* (the open-avoidance fallback) — are fully
    unrolled straight-line with the ``soft``/``has_guide`` flags folded
    out, and a compact descriptor-driven loop covers anything else.
    The heuristic comes from per-axis lookup tables (``pdx``/``pdy``/
    ``vdl``): the track pitch is an integral dbu count, so the tabulated
    per-axis terms recompose into the oracle's
    ``pitch * (dx + dy) + via_cost * dl`` bit-for-bit.  Every relax is
    ordered cheapest-test-first:

    1. a *dominance filter* — the penalty-free ``g + step`` (hoisted
       once per expansion) must already beat the incumbent ``g_score``;
       penalties only grow the cost and float addition is monotone, so
       any relax it skips was doomed,
    2. the ``gate`` passability cache — guide membership, owner and
       occupancy collapse into one lazily-stamped per-node code (base /
       conflict-penalized / wall) computed at most once per search —
    and only then the heuristic for the push.  Penalized costs come from
    per-step precomputed sums (``step + conflict`` then ``+ off_guide``)
    that replicate the oracle's float addition order exactly, so
    accepted ``tentative`` values are bit-identical.
    """
    if not sources or not targets:
        return None
    overlap = sources & targets
    if overlap:
        node = next(iter(overlap))
        return SearchResult(path=[node], cost=0.0, conflicts=[])

    lattice = index.lattice
    pitch = lattice.pitch
    via_cost = float(params.via_cost)
    jog_cost = params.jog_factor * pitch
    conflict_penalty = float(params.conflict_penalty)
    off_guide_penalty = float(params.off_guide_penalty)
    horiz = tuple(layer.is_horizontal for layer in lattice.tech.layers)
    num_layers = len(horiz)
    min_wire = lattice.min_wire_layer
    ix0, iy0, ix1, iy1 = bounds

    t_ix0 = min(t[1] for t in targets)
    t_ix1 = max(t[1] for t in targets)
    t_iy0 = min(t[2] for t in targets)
    t_iy1 = max(t[2] for t in targets)
    t_l0 = min(t[0] for t in targets)
    t_l1 = max(t[0] for t in targets)

    nx = index.nx
    ny = index.ny
    layer_stride = nx * ny
    owner = index.owner
    occupancy = index.occupancy
    g_score = index.g_score
    came_from = index.came_from
    target_epoch = index.target_epoch
    guide_epoch = index.guide_epoch
    index.epoch += 1
    epoch = index.epoch

    heappush = heapq.heappush
    heappop = heapq.heappop
    h_weight = params.heuristic_weight
    has_guide = guide_stamp is not None

    # Conflict-penalized step costs, formed in the oracle's addition
    # order (base, ``+= conflict``), so every reachable ``g + step`` is
    # the oracle's float exactly.
    pitch_c = pitch + conflict_penalty
    jog_c = jog_cost + conflict_penalty
    via_c = via_cost + conflict_penalty

    # Per-axis heuristic tables.  ``pitch`` is an int (dbu), so
    # ``pdx[x] + pdy[y] == pitch * (dx + dy)`` exactly, and
    # ``(pdx[x] + pdy[y]) + vdl[l]`` reproduces the oracle's
    # ``pitch * (dx + dy) + via_cost * dl`` float bit-for-bit.
    pdx = [
        pitch * (t_ix0 - x) if x < t_ix0
        else (pitch * (x - t_ix1) if x > t_ix1 else 0)
        for x in range(nx)
    ]
    pdy = [
        pitch * (t_iy0 - y) if y < t_iy0
        else (pitch * (y - t_iy1) if y > t_iy1 else 0)
        for y in range(ny)
    ]
    vdl = [
        via_cost * (t_l0 - l) if l < t_l0
        else (via_cost * (l - t_l1) if l > t_l1 else 0.0)
        for l in range(num_layers)
    ]

    touched: list[int] = []
    touched_append = touched.append

    # Bucket queue: entries live in per-f FIFO deques; ``fheap`` is a
    # small heap over the *distinct* f values with a live bucket.  Pops
    # take the front of the minimum-f bucket, so the global pop order is
    # (f, insertion order) — exactly the oracle's (f, tie) heap order —
    # while pushes skip the O(log n) tuple sift almost 7 times out of 8.
    buckets: dict[float, deque] = {}
    bget = buckets.get
    fheap: list[float] = []
    for s in sources:
        layer, six, siy = s
        nid = (layer * ny + siy) * nx + six
        g_score[nid] = 0.0
        came_from[nid] = -1
        touched_append(nid)
        f = h_weight * (pdx[six] + pdy[siy] + vdl[layer])
        b = bget(f)
        if b is None:
            buckets[f] = deque(((0.0, nid),))
            heapq.heappush(fheap, f)
        else:
            b.append((0.0, nid))
    for layer, tix, tiy in targets:
        target_epoch[(layer * ny + tiy) * nx + tix] = epoch

    expansions = 0
    max_expansions = params.max_expansions
    if soft:
        max_expansions = int(max_expansions * params.soft_budget_factor)

    # The search allocates millions of cycle-free heap tuples; letting
    # the cyclic GC run its generational sweeps over them (and the whole
    # design heap) mid-search costs real time for zero reclaim.  Pause
    # it for the duration — re-enabled in the finally even on deadline.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if has_guide and not soft:
            # ---------------- hard search inside guides (first attempts)
            # Off-guide and foreign non-target nodes are impassable;
            # conflict penalties apply only on target nodes held by
            # another net.
            #
            # Passability is a pure function of (guide, owner,
            # occupancy, targets) — all static for the duration of one
            # search — so it is cached lazily in ``gate``: first touch
            # of a node classifies it (base / penalized / wall), every
            # revisit costs a single read + compare.
            gate = index.gate
            gstamp = index.gate_stamp + 4
            index.gate_stamp = gstamp
            gstamp1 = gstamp + 1
            gstamp2 = gstamp + 2
            while fheap and expansions < max_expansions:
                f0 = fheap[0]
                b = buckets[f0]
                entry = b.popleft()
                if not b:
                    del buckets[f0]
                    heappop(fheap)
                g = entry[0]
                nid = entry[1]
                # Every heap entry wrote its g at push time, so
                # g_score[nid] is live here; stale entries carry a
                # larger g.
                if g > g_score[nid]:
                    continue
                expansions += 1
                if not (expansions & 63):
                    check_deadline("droute.astar")
                if target_epoch[nid] == epoch:
                    return _build_result(index, nid, g, net_id)
                ix = nid % nx
                rest = nid // nx
                iy = rest % ny
                layer = rest // ny
                px0 = pdx[ix]
                py0 = pdy[iy]
                v0 = vdl[layer]
                t_wire = g + pitch
                t_jog = g + jog_cost
                t_via = g + via_cost

                if layer >= min_wire:
                    if horiz[layer]:
                        # +x / -x at wire cost, then +y / -y jogs
                        if ix < ix1:
                            nnid = nid + 1
                            gs = g_score[nnid]
                            tentative = t_wire
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    if guide_epoch[nnid] != guide_stamp:
                                        gv = gstamp2
                                    else:
                                        holder = owner[nnid]
                                        if holder == 0 or holder == net_id:
                                            occ = occupancy[nnid]
                                            if occ == 0 or occ == net_id:
                                                gv = gstamp
                                            elif target_epoch[nnid] == epoch:
                                                gv = gstamp1
                                            else:
                                                gv = gstamp2
                                        elif holder == 1:  # BLOCKED_ID
                                            if target_epoch[nnid] == epoch:
                                                gv = gstamp
                                            else:
                                                gv = gstamp2
                                        elif target_epoch[nnid] == epoch:
                                            gv = gstamp1
                                        else:
                                            gv = gstamp2
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        pdx[ix + 1] + py0 + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + pitch_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            pdx[ix + 1] + py0 + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if ix > ix0:
                            nnid = nid - 1
                            gs = g_score[nnid]
                            tentative = t_wire
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    if guide_epoch[nnid] != guide_stamp:
                                        gv = gstamp2
                                    else:
                                        holder = owner[nnid]
                                        if holder == 0 or holder == net_id:
                                            occ = occupancy[nnid]
                                            if occ == 0 or occ == net_id:
                                                gv = gstamp
                                            elif target_epoch[nnid] == epoch:
                                                gv = gstamp1
                                            else:
                                                gv = gstamp2
                                        elif holder == 1:  # BLOCKED_ID
                                            if target_epoch[nnid] == epoch:
                                                gv = gstamp
                                            else:
                                                gv = gstamp2
                                        elif target_epoch[nnid] == epoch:
                                            gv = gstamp1
                                        else:
                                            gv = gstamp2
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        pdx[ix - 1] + py0 + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + pitch_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            pdx[ix - 1] + py0 + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if iy < iy1:
                            nnid = nid + nx
                            gs = g_score[nnid]
                            tentative = t_jog
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    if guide_epoch[nnid] != guide_stamp:
                                        gv = gstamp2
                                    else:
                                        holder = owner[nnid]
                                        if holder == 0 or holder == net_id:
                                            occ = occupancy[nnid]
                                            if occ == 0 or occ == net_id:
                                                gv = gstamp
                                            elif target_epoch[nnid] == epoch:
                                                gv = gstamp1
                                            else:
                                                gv = gstamp2
                                        elif holder == 1:  # BLOCKED_ID
                                            if target_epoch[nnid] == epoch:
                                                gv = gstamp
                                            else:
                                                gv = gstamp2
                                        elif target_epoch[nnid] == epoch:
                                            gv = gstamp1
                                        else:
                                            gv = gstamp2
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        px0 + pdy[iy + 1] + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + jog_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            px0 + pdy[iy + 1] + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if iy > iy0:
                            nnid = nid - nx
                            gs = g_score[nnid]
                            tentative = t_jog
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    if guide_epoch[nnid] != guide_stamp:
                                        gv = gstamp2
                                    else:
                                        holder = owner[nnid]
                                        if holder == 0 or holder == net_id:
                                            occ = occupancy[nnid]
                                            if occ == 0 or occ == net_id:
                                                gv = gstamp
                                            elif target_epoch[nnid] == epoch:
                                                gv = gstamp1
                                            else:
                                                gv = gstamp2
                                        elif holder == 1:  # BLOCKED_ID
                                            if target_epoch[nnid] == epoch:
                                                gv = gstamp
                                            else:
                                                gv = gstamp2
                                        elif target_epoch[nnid] == epoch:
                                            gv = gstamp1
                                        else:
                                            gv = gstamp2
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        px0 + pdy[iy - 1] + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + jog_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            px0 + pdy[iy - 1] + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                    else:
                        # +y / -y at wire cost, then +x / -x jogs
                        if iy < iy1:
                            nnid = nid + nx
                            gs = g_score[nnid]
                            tentative = t_wire
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    if guide_epoch[nnid] != guide_stamp:
                                        gv = gstamp2
                                    else:
                                        holder = owner[nnid]
                                        if holder == 0 or holder == net_id:
                                            occ = occupancy[nnid]
                                            if occ == 0 or occ == net_id:
                                                gv = gstamp
                                            elif target_epoch[nnid] == epoch:
                                                gv = gstamp1
                                            else:
                                                gv = gstamp2
                                        elif holder == 1:  # BLOCKED_ID
                                            if target_epoch[nnid] == epoch:
                                                gv = gstamp
                                            else:
                                                gv = gstamp2
                                        elif target_epoch[nnid] == epoch:
                                            gv = gstamp1
                                        else:
                                            gv = gstamp2
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        px0 + pdy[iy + 1] + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + pitch_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            px0 + pdy[iy + 1] + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if iy > iy0:
                            nnid = nid - nx
                            gs = g_score[nnid]
                            tentative = t_wire
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    if guide_epoch[nnid] != guide_stamp:
                                        gv = gstamp2
                                    else:
                                        holder = owner[nnid]
                                        if holder == 0 or holder == net_id:
                                            occ = occupancy[nnid]
                                            if occ == 0 or occ == net_id:
                                                gv = gstamp
                                            elif target_epoch[nnid] == epoch:
                                                gv = gstamp1
                                            else:
                                                gv = gstamp2
                                        elif holder == 1:  # BLOCKED_ID
                                            if target_epoch[nnid] == epoch:
                                                gv = gstamp
                                            else:
                                                gv = gstamp2
                                        elif target_epoch[nnid] == epoch:
                                            gv = gstamp1
                                        else:
                                            gv = gstamp2
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        px0 + pdy[iy - 1] + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + pitch_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            px0 + pdy[iy - 1] + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if ix < ix1:
                            nnid = nid + 1
                            gs = g_score[nnid]
                            tentative = t_jog
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    if guide_epoch[nnid] != guide_stamp:
                                        gv = gstamp2
                                    else:
                                        holder = owner[nnid]
                                        if holder == 0 or holder == net_id:
                                            occ = occupancy[nnid]
                                            if occ == 0 or occ == net_id:
                                                gv = gstamp
                                            elif target_epoch[nnid] == epoch:
                                                gv = gstamp1
                                            else:
                                                gv = gstamp2
                                        elif holder == 1:  # BLOCKED_ID
                                            if target_epoch[nnid] == epoch:
                                                gv = gstamp
                                            else:
                                                gv = gstamp2
                                        elif target_epoch[nnid] == epoch:
                                            gv = gstamp1
                                        else:
                                            gv = gstamp2
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        pdx[ix + 1] + py0 + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + jog_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            pdx[ix + 1] + py0 + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if ix > ix0:
                            nnid = nid - 1
                            gs = g_score[nnid]
                            tentative = t_jog
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    if guide_epoch[nnid] != guide_stamp:
                                        gv = gstamp2
                                    else:
                                        holder = owner[nnid]
                                        if holder == 0 or holder == net_id:
                                            occ = occupancy[nnid]
                                            if occ == 0 or occ == net_id:
                                                gv = gstamp
                                            elif target_epoch[nnid] == epoch:
                                                gv = gstamp1
                                            else:
                                                gv = gstamp2
                                        elif holder == 1:  # BLOCKED_ID
                                            if target_epoch[nnid] == epoch:
                                                gv = gstamp
                                            else:
                                                gv = gstamp2
                                        elif target_epoch[nnid] == epoch:
                                            gv = gstamp1
                                        else:
                                            gv = gstamp2
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        pdx[ix - 1] + py0 + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + jog_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            pdx[ix - 1] + py0 + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))

                if layer + 1 < num_layers:
                    nnid = nid + layer_stride
                    gs = g_score[nnid]
                    tentative = t_via
                    if tentative < gs - 1e-9:
                        gv = gate[nnid]
                        if gv < gstamp:
                            if guide_epoch[nnid] != guide_stamp:
                                gv = gstamp2
                            else:
                                holder = owner[nnid]
                                if holder == 0 or holder == net_id:
                                    occ = occupancy[nnid]
                                    if occ == 0 or occ == net_id:
                                        gv = gstamp
                                    elif target_epoch[nnid] == epoch:
                                        gv = gstamp1
                                    else:
                                        gv = gstamp2
                                elif holder == 1:  # BLOCKED_ID
                                    if target_epoch[nnid] == epoch:
                                        gv = gstamp
                                    else:
                                        gv = gstamp2
                                elif target_epoch[nnid] == epoch:
                                    gv = gstamp1
                                else:
                                    gv = gstamp2
                            gate[nnid] = gv
                        if gv == gstamp:
                            if gs == _INF:
                                touched_append(nnid)
                            g_score[nnid] = tentative
                            came_from[nnid] = nid
                            f = tentative + h_weight * (
                                px0 + py0 + vdl[layer + 1])
                            b = bget(f)
                            if b is None:
                                buckets[f] = deque(((tentative, nnid),))
                                heappush(fheap, f)
                            else:
                                b.append((tentative, nnid))
                        elif gv == gstamp1:
                            tentative = g + via_c
                            if tentative < gs - 1e-9:
                                if gs == _INF:
                                    touched_append(nnid)
                                g_score[nnid] = tentative
                                came_from[nnid] = nid
                                f = tentative + h_weight * (
                                    px0 + py0 + vdl[layer + 1])
                                b = bget(f)
                                if b is None:
                                    buckets[f] = deque(((tentative, nnid),))
                                    heappush(fheap, f)
                                else:
                                    b.append((tentative, nnid))

                if layer > 0:
                    nnid = nid - layer_stride
                    gs = g_score[nnid]
                    tentative = t_via
                    if tentative < gs - 1e-9:
                        gv = gate[nnid]
                        if gv < gstamp:
                            if guide_epoch[nnid] != guide_stamp:
                                gv = gstamp2
                            else:
                                holder = owner[nnid]
                                if holder == 0 or holder == net_id:
                                    occ = occupancy[nnid]
                                    if occ == 0 or occ == net_id:
                                        gv = gstamp
                                    elif target_epoch[nnid] == epoch:
                                        gv = gstamp1
                                    else:
                                        gv = gstamp2
                                elif holder == 1:  # BLOCKED_ID
                                    if target_epoch[nnid] == epoch:
                                        gv = gstamp
                                    else:
                                        gv = gstamp2
                                elif target_epoch[nnid] == epoch:
                                    gv = gstamp1
                                else:
                                    gv = gstamp2
                            gate[nnid] = gv
                        if gv == gstamp:
                            if gs == _INF:
                                touched_append(nnid)
                            g_score[nnid] = tentative
                            came_from[nnid] = nid
                            f = tentative + h_weight * (
                                px0 + py0 + vdl[layer - 1])
                            b = bget(f)
                            if b is None:
                                buckets[f] = deque(((tentative, nnid),))
                                heappush(fheap, f)
                            else:
                                b.append((tentative, nnid))
                        elif gv == gstamp1:
                            tentative = g + via_c
                            if tentative < gs - 1e-9:
                                if gs == _INF:
                                    touched_append(nnid)
                                g_score[nnid] = tentative
                                came_from[nnid] = nid
                                f = tentative + h_weight * (
                                    px0 + py0 + vdl[layer - 1])
                                b = bget(f)
                                if b is None:
                                    buckets[f] = deque(((tentative, nnid),))
                                    heappush(fheap, f)
                                else:
                                    b.append((tentative, nnid))

        elif soft and not has_guide:
            # ----------------- soft fallback with no guide (open rescue)
            # Everything is passable except blocked non-targets; foreign
            # holders always cost the conflict penalty.  These searches
            # carry the 3x expansion budget and dominate failing nets.
            #
            # Same lazy passability cache as the guided loop: owner /
            # occupancy / target state is static per search, so each
            # node is classified once on first touch.
            gate = index.gate
            gstamp = index.gate_stamp + 4
            index.gate_stamp = gstamp
            gstamp1 = gstamp + 1
            gstamp2 = gstamp + 2
            while fheap and expansions < max_expansions:
                f0 = fheap[0]
                b = buckets[f0]
                entry = b.popleft()
                if not b:
                    del buckets[f0]
                    heappop(fheap)
                g = entry[0]
                nid = entry[1]
                if g > g_score[nid]:
                    continue
                expansions += 1
                if not (expansions & 63):
                    check_deadline("droute.astar")
                if target_epoch[nid] == epoch:
                    return _build_result(index, nid, g, net_id)
                ix = nid % nx
                rest = nid // nx
                iy = rest % ny
                layer = rest // ny
                px0 = pdx[ix]
                py0 = pdy[iy]
                v0 = vdl[layer]
                t_wire = g + pitch
                t_jog = g + jog_cost
                t_via = g + via_cost

                if layer >= min_wire:
                    if horiz[layer]:
                        if ix < ix1:
                            nnid = nid + 1
                            gs = g_score[nnid]
                            tentative = t_wire
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    holder = owner[nnid]
                                    if holder == 0 or holder == net_id:
                                        occ = occupancy[nnid]
                                        if occ == 0 or occ == net_id:
                                            gv = gstamp
                                        else:
                                            gv = gstamp1
                                    elif holder == 1:  # BLOCKED_ID
                                        if target_epoch[nnid] == epoch:
                                            gv = gstamp
                                        else:
                                            gv = gstamp2
                                    else:
                                        gv = gstamp1
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        pdx[ix + 1] + py0 + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + pitch_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            pdx[ix + 1] + py0 + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if ix > ix0:
                            nnid = nid - 1
                            gs = g_score[nnid]
                            tentative = t_wire
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    holder = owner[nnid]
                                    if holder == 0 or holder == net_id:
                                        occ = occupancy[nnid]
                                        if occ == 0 or occ == net_id:
                                            gv = gstamp
                                        else:
                                            gv = gstamp1
                                    elif holder == 1:  # BLOCKED_ID
                                        if target_epoch[nnid] == epoch:
                                            gv = gstamp
                                        else:
                                            gv = gstamp2
                                    else:
                                        gv = gstamp1
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        pdx[ix - 1] + py0 + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + pitch_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            pdx[ix - 1] + py0 + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if iy < iy1:
                            nnid = nid + nx
                            gs = g_score[nnid]
                            tentative = t_jog
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    holder = owner[nnid]
                                    if holder == 0 or holder == net_id:
                                        occ = occupancy[nnid]
                                        if occ == 0 or occ == net_id:
                                            gv = gstamp
                                        else:
                                            gv = gstamp1
                                    elif holder == 1:  # BLOCKED_ID
                                        if target_epoch[nnid] == epoch:
                                            gv = gstamp
                                        else:
                                            gv = gstamp2
                                    else:
                                        gv = gstamp1
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        px0 + pdy[iy + 1] + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + jog_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            px0 + pdy[iy + 1] + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if iy > iy0:
                            nnid = nid - nx
                            gs = g_score[nnid]
                            tentative = t_jog
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    holder = owner[nnid]
                                    if holder == 0 or holder == net_id:
                                        occ = occupancy[nnid]
                                        if occ == 0 or occ == net_id:
                                            gv = gstamp
                                        else:
                                            gv = gstamp1
                                    elif holder == 1:  # BLOCKED_ID
                                        if target_epoch[nnid] == epoch:
                                            gv = gstamp
                                        else:
                                            gv = gstamp2
                                    else:
                                        gv = gstamp1
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        px0 + pdy[iy - 1] + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + jog_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            px0 + pdy[iy - 1] + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                    else:
                        if iy < iy1:
                            nnid = nid + nx
                            gs = g_score[nnid]
                            tentative = t_wire
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    holder = owner[nnid]
                                    if holder == 0 or holder == net_id:
                                        occ = occupancy[nnid]
                                        if occ == 0 or occ == net_id:
                                            gv = gstamp
                                        else:
                                            gv = gstamp1
                                    elif holder == 1:  # BLOCKED_ID
                                        if target_epoch[nnid] == epoch:
                                            gv = gstamp
                                        else:
                                            gv = gstamp2
                                    else:
                                        gv = gstamp1
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        px0 + pdy[iy + 1] + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + pitch_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            px0 + pdy[iy + 1] + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if iy > iy0:
                            nnid = nid - nx
                            gs = g_score[nnid]
                            tentative = t_wire
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    holder = owner[nnid]
                                    if holder == 0 or holder == net_id:
                                        occ = occupancy[nnid]
                                        if occ == 0 or occ == net_id:
                                            gv = gstamp
                                        else:
                                            gv = gstamp1
                                    elif holder == 1:  # BLOCKED_ID
                                        if target_epoch[nnid] == epoch:
                                            gv = gstamp
                                        else:
                                            gv = gstamp2
                                    else:
                                        gv = gstamp1
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        px0 + pdy[iy - 1] + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + pitch_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            px0 + pdy[iy - 1] + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if ix < ix1:
                            nnid = nid + 1
                            gs = g_score[nnid]
                            tentative = t_jog
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    holder = owner[nnid]
                                    if holder == 0 or holder == net_id:
                                        occ = occupancy[nnid]
                                        if occ == 0 or occ == net_id:
                                            gv = gstamp
                                        else:
                                            gv = gstamp1
                                    elif holder == 1:  # BLOCKED_ID
                                        if target_epoch[nnid] == epoch:
                                            gv = gstamp
                                        else:
                                            gv = gstamp2
                                    else:
                                        gv = gstamp1
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        pdx[ix + 1] + py0 + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + jog_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            pdx[ix + 1] + py0 + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))
                        if ix > ix0:
                            nnid = nid - 1
                            gs = g_score[nnid]
                            tentative = t_jog
                            if tentative < gs - 1e-9:
                                gv = gate[nnid]
                                if gv < gstamp:
                                    holder = owner[nnid]
                                    if holder == 0 or holder == net_id:
                                        occ = occupancy[nnid]
                                        if occ == 0 or occ == net_id:
                                            gv = gstamp
                                        else:
                                            gv = gstamp1
                                    elif holder == 1:  # BLOCKED_ID
                                        if target_epoch[nnid] == epoch:
                                            gv = gstamp
                                        else:
                                            gv = gstamp2
                                    else:
                                        gv = gstamp1
                                    gate[nnid] = gv
                                if gv == gstamp:
                                    if gs == _INF:
                                        touched_append(nnid)
                                    g_score[nnid] = tentative
                                    came_from[nnid] = nid
                                    f = tentative + h_weight * (
                                        pdx[ix - 1] + py0 + v0)
                                    b = bget(f)
                                    if b is None:
                                        buckets[f] = deque(((tentative, nnid),))
                                        heappush(fheap, f)
                                    else:
                                        b.append((tentative, nnid))
                                elif gv == gstamp1:
                                    tentative = g + jog_c
                                    if tentative < gs - 1e-9:
                                        if gs == _INF:
                                            touched_append(nnid)
                                        g_score[nnid] = tentative
                                        came_from[nnid] = nid
                                        f = tentative + h_weight * (
                                            pdx[ix - 1] + py0 + v0)
                                        b = bget(f)
                                        if b is None:
                                            buckets[f] = deque(((tentative, nnid),))
                                            heappush(fheap, f)
                                        else:
                                            b.append((tentative, nnid))

                if layer + 1 < num_layers:
                    nnid = nid + layer_stride
                    gs = g_score[nnid]
                    tentative = t_via
                    if tentative < gs - 1e-9:
                        gv = gate[nnid]
                        if gv < gstamp:
                            holder = owner[nnid]
                            if holder == 0 or holder == net_id:
                                occ = occupancy[nnid]
                                if occ == 0 or occ == net_id:
                                    gv = gstamp
                                else:
                                    gv = gstamp1
                            elif holder == 1:  # BLOCKED_ID
                                if target_epoch[nnid] == epoch:
                                    gv = gstamp
                                else:
                                    gv = gstamp2
                            else:
                                gv = gstamp1
                            gate[nnid] = gv
                        if gv == gstamp:
                            if gs == _INF:
                                touched_append(nnid)
                            g_score[nnid] = tentative
                            came_from[nnid] = nid
                            f = tentative + h_weight * (
                                px0 + py0 + vdl[layer + 1])
                            b = bget(f)
                            if b is None:
                                buckets[f] = deque(((tentative, nnid),))
                                heappush(fheap, f)
                            else:
                                b.append((tentative, nnid))
                        elif gv == gstamp1:
                            tentative = g + via_c
                            if tentative < gs - 1e-9:
                                if gs == _INF:
                                    touched_append(nnid)
                                g_score[nnid] = tentative
                                came_from[nnid] = nid
                                f = tentative + h_weight * (
                                    px0 + py0 + vdl[layer + 1])
                                b = bget(f)
                                if b is None:
                                    buckets[f] = deque(((tentative, nnid),))
                                    heappush(fheap, f)
                                else:
                                    b.append((tentative, nnid))

                if layer > 0:
                    nnid = nid - layer_stride
                    gs = g_score[nnid]
                    tentative = t_via
                    if tentative < gs - 1e-9:
                        gv = gate[nnid]
                        if gv < gstamp:
                            holder = owner[nnid]
                            if holder == 0 or holder == net_id:
                                occ = occupancy[nnid]
                                if occ == 0 or occ == net_id:
                                    gv = gstamp
                                else:
                                    gv = gstamp1
                            elif holder == 1:  # BLOCKED_ID
                                if target_epoch[nnid] == epoch:
                                    gv = gstamp
                                else:
                                    gv = gstamp2
                            else:
                                gv = gstamp1
                            gate[nnid] = gv
                        if gv == gstamp:
                            if gs == _INF:
                                touched_append(nnid)
                            g_score[nnid] = tentative
                            came_from[nnid] = nid
                            f = tentative + h_weight * (
                                px0 + py0 + vdl[layer - 1])
                            b = bget(f)
                            if b is None:
                                buckets[f] = deque(((tentative, nnid),))
                                heappush(fheap, f)
                            else:
                                b.append((tentative, nnid))
                        elif gv == gstamp1:
                            tentative = g + via_c
                            if tentative < gs - 1e-9:
                                if gs == _INF:
                                    touched_append(nnid)
                                g_score[nnid] = tentative
                                came_from[nnid] = nid
                                f = tentative + h_weight * (
                                    px0 + py0 + vdl[layer - 1])
                                b = bget(f)
                                if b is None:
                                    buckets[f] = deque(((tentative, nnid),))
                                    heappush(fheap, f)
                                else:
                                    b.append((tentative, nnid))

        else:
            # -------- generic loop: remaining flag combinations (rare)
            pen_pitch = (pitch, pitch + off_guide_penalty,
                         pitch_c, pitch_c + off_guide_penalty)
            pen_jog = (jog_cost, jog_cost + off_guide_penalty,
                       jog_c, jog_c + off_guide_penalty)
            pen_via = (via_cost, via_cost + off_guide_penalty,
                       via_c, via_c + off_guide_penalty)
            descs_h = ((1, 1, 0, pitch, pen_pitch),
                       (-1, -1, 0, pitch, pen_pitch),
                       (nx, 1, 1, jog_cost, pen_jog),
                       (-nx, -1, 1, jog_cost, pen_jog))
            descs_v = ((nx, 1, 1, pitch, pen_pitch),
                       (-nx, -1, 1, pitch, pen_pitch),
                       (1, 1, 0, jog_cost, pen_jog),
                       (-1, -1, 0, jog_cost, pen_jog))
            while fheap and expansions < max_expansions:
                f0 = fheap[0]
                b = buckets[f0]
                entry = b.popleft()
                if not b:
                    del buckets[f0]
                    heappop(fheap)
                g = entry[0]
                nid = entry[1]
                if g > g_score[nid]:
                    continue
                expansions += 1
                if not (expansions & 63):
                    check_deadline("droute.astar")
                if target_epoch[nid] == epoch:
                    return _build_result(index, nid, g, net_id)
                ix = nid % nx
                rest = nid // nx
                iy = rest % ny
                layer = rest // ny
                px0 = pdx[ix]
                py0 = pdy[iy]
                v0 = vdl[layer]
                pxy0 = px0 + py0
                t_via = g + via_cost

                if layer >= min_wire:
                    for dnid, cdelta, axis, step, pens in (
                        descs_h if horiz[layer] else descs_v
                    ):
                        if axis:
                            niy = iy + cdelta
                            if niy < iy0 or niy > iy1:
                                continue
                            nix = ix
                        else:
                            nix = ix + cdelta
                            if nix < ix0 or nix > ix1:
                                continue
                            niy = iy
                        nnid = nid + dnid
                        gs = g_score[nnid]
                        tentative = g + step
                        if tentative >= gs - 1e-9:
                            continue
                        if has_guide and guide_epoch[nnid] != guide_stamp:
                            if not soft:
                                continue
                            pen = 1
                        else:
                            pen = 0
                        holder = owner[nnid]
                        if holder != 0 and holder != net_id:
                            if holder == 1:
                                if target_epoch[nnid] != epoch:
                                    continue
                            elif not soft and target_epoch[nnid] != epoch:
                                continue
                            else:
                                pen += 2
                        else:
                            occ = occupancy[nnid]
                            if occ != 0 and occ != net_id:
                                if not soft and target_epoch[nnid] != epoch:
                                    continue
                                pen += 2
                        if pen:
                            tentative = g + pens[pen]
                            if tentative >= gs - 1e-9:
                                continue
                        if gs == _INF:
                            touched_append(nnid)
                        g_score[nnid] = tentative
                        came_from[nnid] = nid
                        hsum = (px0 + pdy[niy] + v0) if axis else (
                            pdx[nix] + py0 + v0
                        )
                        f = tentative + h_weight * hsum
                        b = bget(f)
                        if b is None:
                            buckets[f] = deque(((tentative, nnid),))
                            heappush(fheap, f)
                        else:
                            b.append((tentative, nnid))

                for up in (1, -1):
                    if up == 1:
                        if layer + 1 >= num_layers:
                            continue
                        nnid = nid + layer_stride
                        nl = layer + 1
                    else:
                        if layer == 0:
                            continue
                        nnid = nid - layer_stride
                        nl = layer - 1
                    gs = g_score[nnid]
                    tentative = t_via
                    if tentative >= gs - 1e-9:
                        continue
                    if has_guide and guide_epoch[nnid] != guide_stamp:
                        if not soft:
                            continue
                        pen = 1
                    else:
                        pen = 0
                    holder = owner[nnid]
                    if holder != 0 and holder != net_id:
                        if holder == 1:
                            if target_epoch[nnid] != epoch:
                                continue
                        elif not soft and target_epoch[nnid] != epoch:
                            continue
                        else:
                            pen += 2
                    else:
                        occ = occupancy[nnid]
                        if occ != 0 and occ != net_id:
                            if not soft and target_epoch[nnid] != epoch:
                                continue
                            pen += 2
                    if pen:
                        tentative = g + pen_via[pen]
                        if tentative >= gs - 1e-9:
                            continue
                    if gs == _INF:
                        touched_append(nnid)
                    g_score[nnid] = tentative
                    came_from[nnid] = nid
                    f = tentative + h_weight * (pxy0 + vdl[nl])
                    b = bget(f)
                    if b is None:
                        buckets[f] = deque(((tentative, nnid),))
                        heappush(fheap, f)
                    else:
                        b.append((tentative, nnid))

        return None
    finally:
        if gc_was_enabled:
            gc.enable()
        for tid in touched:
            g_score[tid] = _INF
        if stats is not None:
            stats.record(expansions)
        else:
            metrics = get_metrics()
            metrics.count("droute.astar_calls")
            metrics.observe("droute.astar_expansions", expansions)


def _build_result(
    index: DrouteIndex, nid: int, cost: float, net_id: int
) -> SearchResult:
    owner = index.owner
    occupancy = index.occupancy
    came_from = index.came_from
    nx, ny = index.nx, index.ny
    path_ids = [nid]
    while came_from[nid] != -1:
        nid = came_from[nid]
        path_ids.append(nid)
    path_ids.reverse()
    path: list[LNode] = []
    conflicts: list[LNode] = []
    for pid in path_ids:
        ix = pid % nx
        rest = pid // nx
        node = (rest // ny, ix, rest % ny)
        path.append(node)
        holder = owner[pid] or occupancy[pid]
        if holder > 1 and holder != net_id:  # not FREE/BLOCKED/self
            conflicts.append(node)
    return SearchResult(path=path, cost=cost, conflicts=conflicts)

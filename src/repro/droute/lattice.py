"""The routing-track lattice.

Detailed routing happens on track crossings: node ``(layer, ix, iy)``
sits at the intersection of vertical track ``ix`` and horizontal track
``iy``.  Wires run along a layer's preferred direction between adjacent
crossings; vias connect vertically adjacent layers at a crossing.  With
``pitch >= width + spacing`` (true of the synthetic techs and the
contest's), same-layer parallel wires on distinct tracks are spacing-
clean by construction, so the DRC focus is shorts / min-area / opens.
"""

from __future__ import annotations

from repro.geom import Point, Rect
from repro.tech import Technology

LNode = tuple[int, int, int]  # (layer, ix, iy)


class TrackLattice:
    """Coordinate conversions between DBU space and track indices."""

    def __init__(self, tech: Technology, die: Rect) -> None:
        self.tech = tech
        self.die = die
        pitches = {layer.pitch for layer in tech.layers}
        if len(pitches) != 1:
            raise ValueError("TrackLattice requires a uniform track pitch")
        self.pitch = pitches.pop()
        self.offset = tech.layers[0].offset
        self.nx = max(1, (die.width - self.offset) // self.pitch + 1)
        self.ny = max(1, (die.height - self.offset) // self.pitch + 1)

    def x_of(self, ix: int) -> int:
        return self.die.lx + self.offset + ix * self.pitch

    def y_of(self, iy: int) -> int:
        return self.die.ly + self.offset + iy * self.pitch

    def point_of(self, node: LNode) -> Point:
        return Point(self.x_of(node[1]), self.y_of(node[2]))

    def ix_of(self, x: int) -> int:
        ix = round((x - self.die.lx - self.offset) / self.pitch)
        return max(0, min(self.nx - 1, ix))

    def iy_of(self, y: int) -> int:
        iy = round((y - self.die.ly - self.offset) / self.pitch)
        return max(0, min(self.ny - 1, iy))

    def node_at(self, layer: int, p: Point) -> LNode:
        return (layer, self.ix_of(p.x), self.iy_of(p.y))

    def index_rect(self, rect: Rect) -> tuple[int, int, int, int]:
        """Lattice index span ``(ix0, iy0, ix1, iy1)`` covered by ``rect``."""
        ix0 = max(0, -(-(rect.lx - self.die.lx - self.offset) // self.pitch))
        iy0 = max(0, -(-(rect.ly - self.die.ly - self.offset) // self.pitch))
        ix1 = min(self.nx - 1, (rect.ux - self.die.lx - self.offset) // self.pitch)
        iy1 = min(self.ny - 1, (rect.uy - self.die.ly - self.offset) // self.pitch)
        return (ix0, iy0, ix1, iy1)

    def nodes_in_rect(self, layer: int, rect: Rect) -> list[LNode]:
        ix0, iy0, ix1, iy1 = self.index_rect(rect)
        return [
            (layer, ix, iy)
            for ix in range(ix0, ix1 + 1)
            for iy in range(iy0, iy1 + 1)
        ]

    #: lowest layer wires may run on (M1 is reserved for pin access)
    min_wire_layer: int = 1

    def wire_neighbors(self, node: LNode) -> list[LNode]:
        """Track-adjacent crossings along the layer's preferred direction."""
        layer, ix, iy = node
        result: list[LNode] = []
        if layer < self.min_wire_layer:
            return result
        if self.tech.layers[layer].is_horizontal:
            if ix + 1 < self.nx:
                result.append((layer, ix + 1, iy))
            if ix - 1 >= 0:
                result.append((layer, ix - 1, iy))
        else:
            if iy + 1 < self.ny:
                result.append((layer, ix, iy + 1))
            if iy - 1 >= 0:
                result.append((layer, ix, iy - 1))
        return result

    def jog_neighbors(self, node: LNode) -> list[LNode]:
        """Single-step wrong-way moves (perpendicular to the preferred
        direction), which real detailed routers allow at a cost premium."""
        layer, ix, iy = node
        result: list[LNode] = []
        if layer < self.min_wire_layer:
            return result
        if self.tech.layers[layer].is_horizontal:
            if iy + 1 < self.ny:
                result.append((layer, ix, iy + 1))
            if iy - 1 >= 0:
                result.append((layer, ix, iy - 1))
        else:
            if ix + 1 < self.nx:
                result.append((layer, ix + 1, iy))
            if ix - 1 >= 0:
                result.append((layer, ix - 1, iy))
        return result

    def via_neighbors(self, node: LNode) -> list[LNode]:
        layer, ix, iy = node
        result: list[LNode] = []
        if layer + 1 < self.tech.num_layers:
            result.append((layer + 1, ix, iy))
        if layer - 1 >= 0:
            result.append((layer - 1, ix, iy))
        return result

"""A* path search on the track lattice.

The search connects a grown net component to the next terminal inside
the net's guide region.  Two modes: *hard* (conflicting nodes are
impassable) and *soft* (conflicts and off-guide excursions are allowed
with a heavy penalty) — the soft pass is what converts an unroutable
situation into a short DRV instead of an open net, mirroring how
detailed routers trade opens for shorts.

The inner loop is deliberately flat (inlined neighbour generation,
guide-set membership) because it dominates the flow's runtime.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.droute.lattice import LNode, TrackLattice
from repro.droute.obstacles import BLOCKED
from repro.guard.deadline import DeadlineTicker
from repro.obs import get_metrics


@dataclass(slots=True)
class SearchParams:
    """Cost constants of the detailed-routing search (DBU scale)."""

    via_cost: int = 800
    conflict_penalty: int = 20000
    off_guide_penalty: int = 2000
    #: wrong-way (non-preferred-direction) step cost multiplier
    jog_factor: float = 2.5
    max_expansions: int = 60000
    #: soft-pass expansion budget multiplier (opens are worst-case DRVs)
    soft_budget_factor: float = 3.0
    #: A* heuristic inflation; >1 trades a little optimality for speed
    heuristic_weight: float = 1.15


@dataclass(slots=True)
class SearchResult:
    """A found path and the conflicts it incurred."""

    path: list[LNode]
    cost: float
    conflicts: list[LNode]


class SearchStats:
    """Local accumulator for per-search counters.

    The router hands one of these to every search of a ``route_all``
    and flushes it once at the end (``count`` + ``observe_many``), so
    the metrics registry is hit twice per routing pass instead of once
    per A* invocation.
    """

    __slots__ = ("calls", "expansions")

    def __init__(self) -> None:
        self.calls = 0
        self.expansions: list[int] = []

    def record(self, expansions: int) -> None:
        self.calls += 1
        self.expansions.append(expansions)

    def flush(self) -> None:
        if not self.calls:
            return
        metrics = get_metrics()
        metrics.count("droute.astar_calls", self.calls)
        metrics.observe_many("droute.astar_expansions", self.expansions)
        self.calls = 0
        self.expansions = []


def astar_connect(
    lattice: TrackLattice,
    sources: set[LNode],
    targets: set[LNode],
    net: str,
    owner: dict[LNode, str],
    occupancy: dict[LNode, str],
    bounds: tuple[int, int, int, int],
    guide_nodes: set[LNode] | None,
    params: SearchParams,
    soft: bool,
    stats: SearchStats | None = None,
) -> SearchResult | None:
    """Cheapest lattice path from ``sources`` to ``targets``.

    ``owner`` is the static pin/blockage ownership, ``occupancy`` the
    routed-wire ownership; nodes owned by other nets are impassable in
    hard mode and penalized in soft mode.  ``bounds`` is the inclusive
    ``(ix0, iy0, ix1, iy1)`` search window; ``guide_nodes`` (if given)
    is the set of nodes inside the net's guides.
    """
    if not sources or not targets:
        return None
    overlap = sources & targets
    if overlap:
        node = next(iter(overlap))
        return SearchResult(path=[node], cost=0.0, conflicts=[])

    pitch = lattice.pitch
    via_cost = float(params.via_cost)
    jog_cost = params.jog_factor * pitch
    conflict_penalty = float(params.conflict_penalty)
    off_guide_penalty = float(params.off_guide_penalty)
    horiz = tuple(layer.is_horizontal for layer in lattice.tech.layers)
    num_layers = len(horiz)
    min_wire = lattice.min_wire_layer
    ix0, iy0, ix1, iy1 = bounds

    t_ix0 = min(t[1] for t in targets)
    t_ix1 = max(t[1] for t in targets)
    t_iy0 = min(t[2] for t in targets)
    t_iy1 = max(t[2] for t in targets)
    t_l0 = min(t[0] for t in targets)
    t_l1 = max(t[0] for t in targets)

    owner_get = owner.get
    occupancy_get = occupancy.get
    heappush = heapq.heappush
    heappop = heapq.heappop

    h_weight = params.heuristic_weight

    def heuristic(layer: int, ix: int, iy: int) -> float:
        dx = (t_ix0 - ix) if ix < t_ix0 else (ix - t_ix1 if ix > t_ix1 else 0)
        dy = (t_iy0 - iy) if iy < t_iy0 else (iy - t_iy1 if iy > t_iy1 else 0)
        dl = (t_l0 - layer) if layer < t_l0 else (
            layer - t_l1 if layer > t_l1 else 0
        )
        return h_weight * (pitch * (dx + dy) + via_cost * dl)

    tie = 0
    # repro: noqa:REPRO-P001 x2 below -- this IS the dict oracle the
    # indexed kernel is parity-tested against; it must stay sparse.
    g_score: dict[LNode, float] = {}  # repro: noqa:REPRO-P001
    came_from: dict[LNode, LNode] = {}  # repro: noqa:REPRO-P001
    heap: list[tuple[float, int, float, LNode]] = []
    # Seed order is the caller's set iteration order -- deterministic
    # cross-machine (int-tuple hashing ignores PYTHONHASHSEED) and
    # shared byte-for-byte with the indexed kernel; sorting here would
    # change tie order and break parity with the committed digests.
    for s in sources:  # repro: noqa:REPRO-T002
        g_score[s] = 0.0
        heap.append((heuristic(*s), tie, 0.0, s))
        tie += 1
    heapq.heapify(heap)
    expansions = 0
    max_expansions = params.max_expansions
    if soft:
        max_expansions = int(max_expansions * params.soft_budget_factor)
    ticker = DeadlineTicker("droute.astar", stride=64)

    # Expansion counts are tallied locally and recorded once in the
    # ``finally`` — the hot loop itself carries no instrumentation.
    try:
        while heap and expansions < max_expansions:
            _, _, g, node = heappop(heap)
            if g > g_score.get(node, float("inf")):
                continue
            expansions += 1
            ticker.tick()
            if node in targets:
                return _build_result(node, came_from, g, net, owner, occupancy)
            layer, ix, iy = node

            candidates: list[tuple[LNode, float]] = []
            if layer >= min_wire:
                if horiz[layer]:
                    if ix < ix1:
                        candidates.append(((layer, ix + 1, iy), pitch))
                    if ix > ix0:
                        candidates.append(((layer, ix - 1, iy), pitch))
                    if iy < iy1:
                        candidates.append(((layer, ix, iy + 1), jog_cost))
                    if iy > iy0:
                        candidates.append(((layer, ix, iy - 1), jog_cost))
                else:
                    if iy < iy1:
                        candidates.append(((layer, ix, iy + 1), pitch))
                    if iy > iy0:
                        candidates.append(((layer, ix, iy - 1), pitch))
                    if ix < ix1:
                        candidates.append(((layer, ix + 1, iy), jog_cost))
                    if ix > ix0:
                        candidates.append(((layer, ix - 1, iy), jog_cost))
            if layer + 1 < num_layers:
                candidates.append(((layer + 1, ix, iy), via_cost))
            if layer > 0:
                candidates.append(((layer - 1, ix, iy), via_cost))

            for neighbour, step in candidates:
                holder = owner_get(neighbour)
                if holder is not None and holder != net:
                    if holder is BLOCKED or holder == BLOCKED:
                        if neighbour not in targets:
                            continue
                    elif not soft and neighbour not in targets:
                        continue
                    else:
                        step += conflict_penalty
                else:
                    occ = occupancy_get(neighbour)
                    if occ is not None and occ != net:
                        if not soft and neighbour not in targets:
                            continue
                        step += conflict_penalty
                if guide_nodes is not None and neighbour not in guide_nodes:
                    if not soft:
                        continue
                    step += off_guide_penalty
                tentative = g + step
                if tentative < g_score.get(neighbour, float("inf")) - 1e-9:
                    g_score[neighbour] = tentative
                    came_from[neighbour] = node
                    heappush(
                        heap,
                        (tentative + heuristic(*neighbour), tie, tentative, neighbour),
                    )
                    tie += 1
        return None
    finally:
        if stats is not None:
            stats.record(expansions)
        else:
            metrics = get_metrics()
            metrics.count("droute.astar_calls")
            metrics.observe("droute.astar_expansions", expansions)


def _build_result(
    node: LNode,
    came_from: dict[LNode, LNode],
    cost: float,
    net: str,
    owner: dict[LNode, str],
    occupancy: dict[LNode, str],
) -> SearchResult:
    path = [node]
    while node in came_from:
        node = came_from[node]
        path.append(node)
    path.reverse()
    conflicts = []
    for p in path:
        holder = owner.get(p) or occupancy.get(p)
        if holder is not None and holder != net and holder != BLOCKED:
            conflicts.append(p)
    return SearchResult(path=path, cost=cost, conflicts=conflicts)

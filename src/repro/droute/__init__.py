"""Guide-honoring track-based detailed routing (TritonRoute stand-in).

Routes every net on the real track lattice inside its global-routing
guides, inserts vias, and reports the ISPD-2018 quality metrics: exact
wirelength, via count, and DRVs (shorts, min-area, opens).
"""

from repro.droute.lattice import TrackLattice
from repro.droute.router import DetailedRouter, DetailedResult
from repro.droute.drc import DrcViolation, DrcKind

__all__ = [
    "TrackLattice",
    "DetailedRouter",
    "DetailedResult",
    "DrcViolation",
    "DrcKind",
]

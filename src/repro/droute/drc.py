"""Design-rule checking over the routed lattice.

Three rule classes matter on a spacing-clean track lattice:

* **short** — a lattice node claimed by two different nets (or a net
  crossing another net's pin/obstruction),
* **min-area** — a net's connected metal patch on one layer too small
  to satisfy the layer's minimum-area rule, unless a pin pad supplies
  the area,
* **open** — a terminal the router could not reach at all.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum

from repro.droute.lattice import LNode, TrackLattice
from repro.guard.deadline import check_deadline


class DrcKind(str, Enum):
    """The violation classes reported by the checker."""

    SHORT = "short"
    MIN_AREA = "min_area"
    OPEN = "open"


@dataclass(frozen=True, slots=True)
class DrcViolation:
    """One design-rule violation."""

    kind: DrcKind
    layer: int
    net_a: str
    net_b: str = ""
    node: LNode | None = None


def check_shorts(
    conflicts: dict[LNode, tuple[str, str]]
) -> list[DrcViolation]:
    """Cluster conflicting nodes into one short per contiguous region.

    ``conflicts`` maps a lattice node to the (aggressor, victim) net
    pair.  Adjacent conflict nodes of the same pair on the same layer
    merge into a single violation, matching how evaluators count short
    polygons rather than points.
    """
    by_pair: dict[tuple[int, str, str], set[tuple[int, int]]] = defaultdict(set)
    for (layer, ix, iy), (net_a, net_b) in conflicts.items():
        key = (layer, *sorted((net_a, net_b)))
        by_pair[key].add((ix, iy))

    violations: list[DrcViolation] = []
    for (layer, net_a, net_b), nodes in sorted(by_pair.items()):
        remaining = set(nodes)
        while remaining:
            check_deadline("droute.drc")
            seed = remaining.pop()
            stack = [seed]
            while stack:
                ix, iy = stack.pop()
                for nxt in ((ix + 1, iy), (ix - 1, iy), (ix, iy + 1), (ix, iy - 1)):
                    if nxt in remaining:
                        remaining.remove(nxt)
                        stack.append(nxt)
            violations.append(
                DrcViolation(
                    kind=DrcKind.SHORT,
                    layer=layer,
                    net_a=net_a,
                    net_b=net_b,
                    node=(layer, *seed),
                )
            )
    return violations


def check_min_area(
    lattice: TrackLattice,
    net_nodes: dict[str, set[LNode]],
    pin_nodes: dict[str, set[LNode]],
) -> list[DrcViolation]:
    """Minimum-area violations per net/layer connected component."""
    violations: list[DrcViolation] = []
    pitch = lattice.pitch
    for net, nodes in net_nodes.items():
        per_layer: dict[int, set[tuple[int, int]]] = defaultdict(set)
        for layer, ix, iy in nodes:
            per_layer[layer].add((ix, iy))
        exempt = pin_nodes.get(net, set())
        for layer, points in per_layer.items():
            tech_layer = lattice.tech.layers[layer]
            if tech_layer.min_area <= 0:
                continue
            remaining = set(points)
            while remaining:
                check_deadline("droute.drc")
                seed = remaining.pop()
                component = {seed}
                stack = [seed]
                while stack:
                    ix, iy = stack.pop()
                    for nxt in (
                        (ix + 1, iy),
                        (ix - 1, iy),
                        (ix, iy + 1),
                        (ix, iy - 1),
                    ):
                        if nxt in remaining:
                            remaining.remove(nxt)
                            component.add(nxt)
                            stack.append(nxt)
                if any((layer, ix, iy) in exempt for ix, iy in component):
                    continue
                length = (len(component) - 1) * pitch
                area = (length + tech_layer.width) * tech_layer.width
                if area < tech_layer.min_area:
                    ix, iy = seed
                    violations.append(
                        DrcViolation(
                            kind=DrcKind.MIN_AREA,
                            layer=layer,
                            net_a=net,
                            node=(layer, ix, iy),
                        )
                    )
    return violations

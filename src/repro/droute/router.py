"""The detailed-routing driver.

Consumes a design plus per-net route guides (from the global router) and
produces exact routed geometry on the track lattice with the ISPD-2018
quality numbers: wirelength, via count, and DRVs.

Two interchangeable state backends carry the per-node routing state:

* the **indexed** backend (default) — flat arrays addressed by node id,
  see :mod:`repro.droute.indexed`;
* the **dict oracle** (``use_indexed=False``) — the original
  dict-of-tuple maps, kept live for bit-exact parity testing, the same
  discipline the grid cost field uses for its scalar oracle.

Per-net work is split into a pure *compute* step (terminal access, guide
region, pattern/A* searches, min-area patching — no committed-state
mutation) and a serial *commit* step, so the first pass can run compute
in `repro.par` workers and commit in canonical net order, byte-identical
to the serial walk.
"""

from __future__ import annotations

import time
from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.db import Design, Net
from repro.droute.access import access_nodes
from repro.droute.astar import SearchParams, SearchStats, astar_connect
from repro.droute.drc import DrcKind, DrcViolation, check_min_area, check_shorts
from repro.droute.indexed import astar_connect_indexed
from repro.droute.lattice import LNode, TrackLattice
from repro.droute.obstacles import (
    BLOCKED,
    build_obstacle_index,
    build_obstacle_map,
)
from repro.guard.deadline import check_deadline
from repro.lefdef.guides import GuideRect
from repro.obs import get_metrics, get_tracer


@dataclass(slots=True)
class DetailedResult:
    """Routed geometry and quality metrics of one detailed-routing run."""

    wirelength_dbu: int = 0
    vias: int = 0
    violations: list[DrcViolation] = field(default_factory=list)
    runtime_s: float = 0.0
    paths: dict[str, list[list[LNode]]] = field(default_factory=dict)

    @property
    def num_drvs(self) -> int:
        return len(self.violations)

    def drv_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for v in self.violations:
            counts[v.kind.value] += 1
        return dict(counts)

    def summary(self) -> str:
        return (
            f"wl={self.wirelength_dbu} vias={self.vias} "
            f"drvs={self.num_drvs} ({self.drv_counts()})"
        )


@dataclass(slots=True)
class NetComputation:
    """The pure compute half of routing one net (picklable).

    Produced by :meth:`DetailedRouter._net_compute` against committed
    state, applied by :meth:`DetailedRouter._commit_net`; workers ship
    these back to the parent, which owns every commit.
    """

    name: str
    paths: list[list[LNode]]
    #: every node the net occupies (sorted; includes patch growth)
    used: list[LNode]
    pins: list[LNode]
    patch_count: int
    #: anchor node of each unreachable terminal (one OPEN DRV each)
    opens: list[LNode]
    #: path nodes held by another net at search time (soft-pass shorts)
    conflict_nodes: list[LNode]


def _guide_spans(
    lattice: TrackLattice,
    margin: int,
    net_guides: list[GuideRect] | None,
    terminal_access: list[list[LNode]],
):
    """Per-layer guide spans + search bounds for one net (pure math).

    Shared by both backends so their bounds — and therefore their
    searches — are identical; only the membership *representation*
    (tuple set vs stamped array rows) differs.
    """
    all_nodes = [n for nodes in terminal_access for n in nodes]
    ix_vals = [n[1] for n in all_nodes]
    iy_vals = [n[2] for n in all_nodes]

    if net_guides is None:
        slack = 12
        bounds = (
            max(0, min(ix_vals) - slack),
            max(0, min(iy_vals) - slack),
            min(lattice.nx - 1, max(ix_vals) + slack),
            min(lattice.ny - 1, max(iy_vals) + slack),
        )
        return None, bounds

    per_layer: dict[int, list[tuple[int, int, int, int]]] = defaultdict(list)
    g_ix0, g_iy0 = lattice.nx - 1, lattice.ny - 1
    g_ix1, g_iy1 = 0, 0
    for guide in net_guides:
        ix0, iy0, ix1, iy1 = lattice.index_rect(guide.rect)
        ix0 = max(0, ix0 - margin)
        iy0 = max(0, iy0 - margin)
        ix1 = min(lattice.nx - 1, ix1 + margin)
        iy1 = min(lattice.ny - 1, iy1 + margin)
        per_layer[guide.layer].append((ix0, iy0, ix1, iy1))
        g_ix0 = min(g_ix0, ix0)
        g_iy0 = min(g_iy0, iy0)
        g_ix1 = max(g_ix1, ix1)
        g_iy1 = max(g_iy1, iy1)
    g_ix0 = min(g_ix0, max(0, min(ix_vals) - margin))
    g_iy0 = min(g_iy0, max(0, min(iy_vals) - margin))
    g_ix1 = max(g_ix1, min(lattice.nx - 1, max(ix_vals) + margin))
    g_iy1 = max(g_iy1, min(lattice.ny - 1, max(iy_vals) + margin))
    return per_layer, (g_ix0, g_iy0, g_ix1, g_iy1)


class _DictState:
    """Dict-of-tuples oracle backend (``use_indexed=False``).

    Kept verbatim from the pre-indexed router for parity testing; the
    hot-path lint (REPRO-P001) is suppressed here by design.
    """

    indexed = False

    def __init__(self, router: "DetailedRouter") -> None:
        self.lattice = router.lattice
        self.params = router.params
        self.margin = router.guide_margin
        owner, reservations = build_obstacle_map(router.design, router.lattice)
        self.owner = owner
        self.reservations = reservations
        # Authoritative session occupancy; the indexed kernel keeps
        # its own dense mirror.
        self.occupancy: dict[LNode, str] = {}  # repro: noqa:REPRO-P001

    def guide_region(self, net_guides, terminal_access):
        per_layer, bounds = _guide_spans(
            self.lattice, self.margin, net_guides, terminal_access
        )
        if per_layer is None:
            return None, bounds
        guide_nodes: set[LNode] = set()  # repro: noqa:REPRO-P001 — oracle backend keeps the historical set-of-tuples representation
        for layer, spans in per_layer.items():
            for ix0, iy0, ix1, iy1 in spans:
                for ix in range(ix0, ix1 + 1):
                    for iy in range(iy0, iy1 + 1):
                        guide_nodes.add((layer, ix, iy))
        # Terminals and their escape landings are always fair game.
        for nodes in terminal_access:
            for layer, ix, iy in nodes:
                guide_nodes.add((layer, ix, iy))
                if layer + 1 < self.lattice.tech.num_layers:
                    guide_nodes.add((layer + 1, ix, iy))
        return guide_nodes, bounds

    def connect(self, sources, targets, net_name, bounds, guide, soft, stats):
        return astar_connect(
            self.lattice,
            sources,
            targets,
            net_name,
            self.owner,
            self.occupancy,
            bounds,
            guide,
            self.params,
            soft=soft,
            stats=stats,
        )

    def in_guide(self, guide, node: LNode) -> bool:
        return guide is None or node in guide

    def free_for(self, node: LNode, net_name: str) -> bool:
        holder = self.owner.get(node)
        if holder is not None and holder != net_name:
            return False
        holder = self.occupancy.get(node)
        if holder is not None and holder != net_name:
            return False
        return True

    def patch_free(self, node: LNode, net_name: str) -> bool:
        holder = self.owner.get(node) or self.occupancy.get(node)
        return holder is None or holder == net_name

    def holder_name(self, node: LNode) -> str | None:
        return self.owner.get(node) or self.occupancy.get(node)

    def commit_used(self, net_name: str, used_sorted) -> None:
        occupancy = self.occupancy
        for node in used_sorted:
            occupancy.setdefault(node, net_name)

    def release_reservations(self, net_name: str, used: set[LNode]) -> None:
        owner = self.owner
        for node in self.reservations.pop(net_name, ()):
            if node not in used and owner.get(node) == net_name:
                del owner[node]

    def rip(self, net_name: str, nodes) -> None:
        occupancy = self.occupancy
        for node in nodes:
            if occupancy.get(node) == net_name:
                del occupancy[node]


class _IndexedState:
    """Flat-array backend over :class:`~repro.droute.indexed.DrouteIndex`."""

    indexed = True

    def __init__(self, router: "DetailedRouter") -> None:
        self.lattice = router.lattice
        self.params = router.params
        self.margin = router.guide_margin
        self.index, self.reservations = build_obstacle_index(
            router.design, router.lattice
        )

    def guide_region(self, net_guides, terminal_access):
        per_layer, bounds = _guide_spans(
            self.lattice, self.margin, net_guides, terminal_access
        )
        if per_layer is None:
            return None, bounds
        return self.index.stamp_guides(per_layer, terminal_access), bounds

    def connect(self, sources, targets, net_name, bounds, guide, soft, stats):
        index = self.index
        return astar_connect_indexed(
            index,
            sources,
            targets,
            net_name,
            index.intern(net_name),
            bounds,
            guide,
            self.params,
            soft=soft,
            stats=stats,
        )

    def in_guide(self, guide, node: LNode) -> bool:
        if guide is None:
            return True
        index = self.index
        return index.guide_epoch[index.nid_of(node)] == guide

    def free_for(self, node: LNode, net_name: str) -> bool:
        index = self.index
        nid = index.nid_of(node)
        net_id = index.intern(net_name)
        holder = index.owner[nid]
        if holder != 0 and holder != net_id:
            return False
        holder = index.occupancy[nid]
        if holder != 0 and holder != net_id:
            return False
        return True

    def patch_free(self, node: LNode, net_name: str) -> bool:
        index = self.index
        nid = index.nid_of(node)
        holder = index.owner[nid] or index.occupancy[nid]
        return holder == 0 or holder == index.intern(net_name)

    def holder_name(self, node: LNode) -> str | None:
        index = self.index
        nid = index.nid_of(node)
        return index.name_of(index.owner[nid] or index.occupancy[nid])

    def commit_used(self, net_name: str, used_sorted) -> None:
        index = self.index
        net_id = index.intern(net_name)
        occupancy = index.occupancy
        nx, ny = index.nx, index.ny
        for layer, ix, iy in used_sorted:
            nid = (layer * ny + iy) * nx + ix
            if occupancy[nid] == 0:
                occupancy[nid] = net_id

    def release_reservations(self, net_name: str, used: set[LNode]) -> None:
        index = self.index
        net_id = index.intern(net_name)
        owner = index.owner
        for node in self.reservations.pop(net_name, ()):
            if node not in used:
                nid = index.nid_of(node)
                if owner[nid] == net_id:
                    owner[nid] = 0

    def rip(self, net_name: str, nodes) -> None:
        index = self.index
        net_id = index.intern(net_name)
        occupancy = index.occupancy
        for node in nodes:
            nid = index.nid_of(node)
            if occupancy[nid] == net_id:
                occupancy[nid] = 0


class DetailedRouter:
    """Guide-honoring sequential detailed router."""

    def __init__(
        self,
        design: Design,
        params: SearchParams | None = None,
        guide_margin_tracks: int = 2,
        drc_rounds: int = 2,
        use_indexed: bool = True,
    ) -> None:
        self.design = design
        self.lattice = TrackLattice(design.tech, design.die)
        self.params = params or SearchParams(
            via_cost=4 * self.lattice.pitch,
            conflict_penalty=100 * self.lattice.pitch,
            off_guide_penalty=10 * self.lattice.pitch,
        )
        self.guide_margin = guide_margin_tracks
        #: conflict-driven rip-up-and-reroute rounds after the first pass
        self.drc_rounds = drc_rounds
        #: flat-array kernel (default) vs dict oracle (parity baseline)
        self.use_indexed = use_indexed
        #: a bound :class:`~repro.par.executor.ParallelExecutor`, or None
        self.executor = None
        self._state: _DictState | _IndexedState | None = None
        self._session_guides: dict[str, list[GuideRect]] | None = None
        self._stats = SearchStats()

    @property
    def ctor_args(self) -> dict:
        """Constructor kwargs a worker needs to rebuild this router."""
        return {
            "params": self.params,
            "guide_margin_tracks": self.guide_margin,
            "drc_rounds": self.drc_rounds,
            "use_indexed": self.use_indexed,
        }

    # ------------------------------------------------------------------ API

    def begin_session(
        self, guides: dict[str, list[GuideRect]] | None
    ) -> "_DictState | _IndexedState":
        """Build the per-run routing state (obstacle map + occupancy).

        Split out of :meth:`route_all` so worker replicas can mirror the
        parent's session: the parent's ``"ds"`` log entry triggers this
        on the replica, after which ``"dn"`` entries replay first-pass
        commits in parent order.
        """
        state = _IndexedState(self) if self.use_indexed else _DictState(self)
        self._state = state
        self._session_guides = guides
        self._stats = SearchStats()
        return state

    def replay_commit(self, name: str, used) -> None:
        """Replay one committed net on a replica (a ``"dn"`` log entry)."""
        state = self._state
        state.commit_used(name, used)
        state.release_reservations(name, set(used))

    def compute_net(self, net_name: str) -> NetComputation:
        """Compute one net against the session state (worker entry point).

        Pure with respect to committed state; the caller owns the
        commit.  Search counters flush immediately so worker-side
        metrics ship through the obs payload.
        """
        net = self.design.nets[net_name]
        guides = self._session_guides
        stats = SearchStats()
        try:
            return self._net_compute(
                net,
                guides.get(net_name) if guides is not None else None,
                self._state,
                stats,
            )
        finally:
            stats.flush()

    def route_all(
        self, guides: dict[str, list[GuideRect]] | None = None
    ) -> DetailedResult:
        """Route every net; ``guides`` come from the global router."""
        start = time.perf_counter()
        tracer = get_tracer()
        with tracer.span("droute.obstacles"):
            state = self.begin_session(guides)
        stats = self._stats
        # Round bookkeeping outside the A* inner loop.
        conflicts: dict[LNode, tuple[str, str]] = {}  # repro: noqa:REPRO-P001
        net_nodes: dict[str, set[LNode]] = {}
        pin_nodes: dict[str, set[LNode]] = {}
        result = DetailedResult()
        patch_counts: dict[str, int] = {}

        executor = self.executor
        use_executor = executor is not None and executor.router is not None

        with tracer.span("droute.first_pass"):
            order = sorted(
                self.design.nets.values(),
                key=lambda n: (self.design.net_hpwl(n), n.name),
            )
            if use_executor:
                executor.note_droute_start(self, guides)
                self._first_pass_batched(
                    order, guides, state, stats, executor,
                    conflicts, net_nodes, pin_nodes, patch_counts, result,
                )
            else:
                for net in order:
                    check_deadline("droute.net")
                    comp = self._net_compute(
                        net,
                        guides.get(net.name) if guides is not None else None,
                        state,
                        stats,
                    )
                    self._commit_net(
                        comp, state, conflicts, net_nodes, pin_nodes,
                        patch_counts, result,
                    )

        # Conflict-driven rip-up-and-reroute: every net involved in a
        # short is ripped (both aggressor and victim) and rerouted with a
        # clean slate — the detailed-routing analogue of the global
        # router's RRR passes.  Always serial: rip-ups are not replayed
        # to worker replicas (a later session rebuilds them from scratch).
        for round_index in range(self.drc_rounds):
            ripped: set[str] = set()
            for net_a, net_b in conflicts.values():
                ripped.add(net_a)
                ripped.add(net_b)
            if not ripped:
                break
            metrics = get_metrics()
            metrics.count("droute.rrr_rounds")
            metrics.count("droute.ripped_nets", len(ripped))
            for name in sorted(ripped):
                state.rip(name, net_nodes.pop(name, ()))
                result.paths.pop(name, None)
                patch_counts.pop(name, None)
            conflicts = {
                node: pair
                for node, pair in conflicts.items()
                if pair[0] not in ripped and pair[1] not in ripped
            }
            result.violations = [
                v
                for v in result.violations
                if not (v.kind is DrcKind.OPEN and v.net_a in ripped)
            ]
            with tracer.span("droute.rrr_round", round=round_index):
                for name in sorted(
                    ripped,
                    key=lambda n: (self.design.net_hpwl(self.design.nets[n]), n),
                ):
                    comp = self._net_compute(
                        self.design.nets[name],
                        guides.get(name) if guides is not None else None,
                        state,
                        stats,
                    )
                    self._commit_net(
                        comp, state, conflicts, net_nodes, pin_nodes,
                        patch_counts, result,
                    )

        with tracer.span("droute.drc"):
            self._tally(result, patch_counts)
            result.violations.extend(check_shorts(conflicts))
            result.violations.extend(
                check_min_area(self.lattice, net_nodes, pin_nodes)
            )
        stats.flush()
        metrics = get_metrics()
        metrics.count("droute.drvs", result.num_drvs)
        metrics.gauge("droute.wirelength_dbu", result.wirelength_dbu)
        result.runtime_s = time.perf_counter() - start
        return result

    def _tally(self, result: DetailedResult, patch_counts: dict[str, int]) -> None:
        """Compute wirelength and via totals from the final geometry."""
        pitch = self.lattice.pitch
        wirelength = 0
        vias = 0
        for paths in result.paths.values():
            for path in paths:
                for a, b in zip(path[:-1], path[1:]):
                    if a[0] == b[0]:
                        wirelength += pitch
                    else:
                        vias += 1
        wirelength += pitch * sum(patch_counts.values())
        result.wirelength_dbu = wirelength
        result.vias = vias

    # -------------------------------------------------------------- per-net

    def _net_compute(
        self,
        net: Net,
        net_guides: list[GuideRect] | None,
        state: "_DictState | _IndexedState",
        stats: SearchStats,
    ) -> NetComputation:
        """Route one net against committed state without committing."""
        lattice = self.lattice
        terminal_access: list[list[LNode]] = []
        for pin in net.pins:
            nodes = access_nodes(self.design, lattice, pin)
            terminal_access.append(nodes)
        pins = {n for nodes in terminal_access for n in nodes}

        guide, bounds = state.guide_region(net_guides, terminal_access)

        # Per-net assembly sets (a few hundred nodes), not search state.
        connected: set[LNode] = set(terminal_access[0])  # repro: noqa:REPRO-P001
        used: set[LNode] = set(terminal_access[0])  # repro: noqa:REPRO-P001
        paths: list[list[LNode]] = []
        opens: list[LNode] = []
        conflict_nodes: list[LNode] = []

        for nodes in terminal_access[1:]:
            targets = set(nodes)
            if targets & connected:
                connected |= targets
                used |= targets
                continue
            search = self._fast_pattern(net.name, connected, targets, state, guide)
            if search is None:
                search = state.connect(
                    connected, targets, net.name, bounds, guide,
                    soft=False, stats=stats,
                )
            if search is None:
                search = state.connect(
                    connected, targets, net.name, bounds, None,
                    soft=True, stats=stats,
                )
            if search is None:
                get_metrics().count("droute.opens")
                opens.append(nodes[0])
                continue
            paths.append(search.path)
            for node in search.path:
                connected.add(node)
                used.add(node)
            conflict_nodes.extend(search.conflicts)
            connected |= targets

        patch_count = self._patch_min_area(net.name, used, pins, state)
        return NetComputation(
            name=net.name,
            paths=paths,
            used=sorted(used),
            pins=sorted(pins),
            patch_count=patch_count,
            opens=opens,
            conflict_nodes=conflict_nodes,
        )

    def _commit_net(
        self,
        comp: NetComputation,
        state: "_DictState | _IndexedState",
        conflicts: dict[LNode, tuple[str, str]],
        net_nodes: dict[str, set[LNode]],
        pin_nodes: dict[str, set[LNode]],
        patch_counts: dict[str, int],
        result: DetailedResult,
    ) -> None:
        """Apply one computed net to committed state (always serial)."""
        name = comp.name
        # Resolve conflict holders against live committed state *before*
        # this net's own occupancy lands; nothing mutates between a net's
        # searches and its commit, so this matches search-time resolution.
        for node in comp.conflict_nodes:
            holder = state.holder_name(node)
            if holder and holder not in (name, BLOCKED):
                conflicts[node] = (name, holder)
        for node in comp.opens:
            result.violations.append(
                DrcViolation(
                    kind=DrcKind.OPEN, layer=node[0], net_a=name, node=node
                )
            )
        used = set(comp.used)
        state.commit_used(name, comp.used)
        # Release this net's unused escape reservations: once routed,
        # later nets may pass over its pins' spare landings.
        state.release_reservations(name, used)
        net_nodes[name] = used
        pin_nodes[name] = set(comp.pins)
        patch_counts[name] = comp.patch_count
        result.paths[name] = comp.paths
        get_metrics().count("droute.nets_routed")

    # ----------------------------------------------------- batched first pass

    def _patch_margin(self) -> int:
        """Worst-case tracks a min-area patch can grow past search bounds."""
        lattice = self.lattice
        pitch = lattice.pitch
        margin = 0
        for tech_layer in lattice.tech.layers:
            if tech_layer.min_area <= 0:
                continue
            min_nodes = 1 + max(
                0,
                -(-(tech_layer.min_area - tech_layer.width**2)
                  // (pitch * tech_layer.width)),
            )
            margin = max(margin, min_nodes)
        return margin

    def _net_region(
        self, net: Net, net_guides: list[GuideRect] | None, expand: int
    ) -> tuple[int, int, int, int]:
        """2D track-index rect covering everything this net can touch.

        The search bounds from :func:`_guide_spans`, expanded by the
        patch-growth margin: compute never reads or writes outside this
        rect, which is what makes disjoint-region batches byte-identical
        to the serial walk.
        """
        lattice = self.lattice
        terminal_access = [
            access_nodes(self.design, lattice, pin) for pin in net.pins
        ]
        _, bounds = _guide_spans(
            lattice, self.guide_margin, net_guides, terminal_access
        )
        ix0, iy0, ix1, iy1 = bounds
        return (
            max(0, ix0 - expand),
            max(0, iy0 - expand),
            min(lattice.nx - 1, ix1 + expand),
            min(lattice.ny - 1, iy1 + expand),
        )

    def _first_pass_batched(
        self,
        order: list[Net],
        guides: dict[str, list[GuideRect]] | None,
        state: "_DictState | _IndexedState",
        stats: SearchStats,
        executor,
        conflicts: dict[LNode, tuple[str, str]],
        net_nodes: dict[str, set[LNode]],
        pin_nodes: dict[str, set[LNode]],
        patch_counts: dict[str, int],
        result: DetailedResult,
    ) -> None:
        """Batched first pass: partition, compute in workers, commit in order.

        Mirrors the global router's ``_commit_batch`` discipline: results
        land in canonical (serial) net order, and a net whose computed
        nodes touch a track position already dirtied by an earlier commit
        of the same batch — structurally impossible for disjoint regions,
        so this guards doctored results and worker deadlines — is
        recomputed serially against live state (``par.conflicts``).
        """
        from repro.par.partition import ParTask, partition

        lattice = self.lattice
        expand = self._patch_margin() + 1
        tasks = []
        for index, net in enumerate(order):
            net_guides = guides.get(net.name) if guides is not None else None
            tasks.append(
                ParTask(net.name, index, self._net_region(net, net_guides, expand))
            )
        batches = partition(tasks, lattice.nx, lattice.ny)
        metrics = get_metrics()
        with get_tracer().span("par.droute", batches=len(batches)):
            for batch in batches:
                check_deadline("par.batch")
                metrics.count("par.batches")
                results = executor.run_droute_batch(
                    [task.name for task in batch]
                )
                dirty: set[tuple[int, int]] = set()
                for task in batch:
                    comp = results.get(task.name)
                    conflict = False
                    if comp is not None and dirty:
                        for node in comp.used:
                            if (node[1], node[2]) in dirty:
                                conflict = True
                                break
                    if comp is None or conflict:
                        if conflict:
                            metrics.count("par.conflicts")
                        check_deadline("droute.net")
                        comp = self._net_compute(
                            self.design.nets[task.name],
                            guides.get(task.name) if guides is not None else None,
                            state,
                            stats,
                        )
                    self._commit_net(
                        comp, state, conflicts, net_nodes, pin_nodes,
                        patch_counts, result,
                    )
                    executor.note_droute_commit(comp.name, comp.used)
                    for node in comp.used:
                        dirty.add((node[1], node[2]))

    # ------------------------------------------------------------- patching

    def _patch_min_area(
        self,
        net_name: str,
        used: set[LNode],
        pins: set[LNode],
        state: "_DictState | _IndexedState",
    ) -> int:
        """Grow under-sized metal patches along the preferred direction.

        Real detailed routers insert metal patches where via stacks leave
        isolated landing pads below the minimum-area rule; this models
        that by claiming free adjacent track nodes and charging their
        wirelength.  Patches that cannot grow are left for the DRC pass
        to flag.
        """
        lattice = self.lattice
        pitch = lattice.pitch
        patched = 0
        patch_free = state.patch_free
        per_layer: dict[int, set[tuple[int, int]]] = defaultdict(set)
        for layer, ix, iy in used:
            per_layer[layer].add((ix, iy))
        for layer, points in per_layer.items():
            tech_layer = lattice.tech.layers[layer]
            if tech_layer.min_area <= 0:
                continue
            min_nodes = 1 + max(
                0,
                -(-(tech_layer.min_area - tech_layer.width**2)
                  // (pitch * tech_layer.width)),
            )
            remaining = set(points)
            while remaining:
                check_deadline("droute.patch")
                seed = remaining.pop()
                component = {seed}
                stack = [seed]
                while stack:
                    ix, iy = stack.pop()
                    for nxt in ((ix + 1, iy), (ix - 1, iy), (ix, iy + 1), (ix, iy - 1)):
                        if nxt in remaining:
                            remaining.remove(nxt)
                            component.add(nxt)
                            stack.append(nxt)
                if len(component) >= min_nodes:
                    continue
                if any((layer, ix, iy) in pins for ix, iy in component):
                    continue
                frontier = deque(sorted(component))
                while len(component) < min_nodes and frontier:
                    ix, iy = frontier.popleft()
                    grown = False
                    here = (layer, ix, iy)
                    for node in lattice.wire_neighbors(here) + lattice.jog_neighbors(here):
                        key = (node[1], node[2])
                        if key in component:
                            continue
                        if not patch_free(node, net_name):
                            continue
                        component.add(key)
                        used.add(node)
                        frontier.append(key)
                        patched += 1
                        grown = True
                        break
                    if grown:
                        frontier.appendleft((ix, iy))
        return patched

    # ------------------------------------------------------------ fast path

    def _fast_pattern(
        self,
        net: str,
        sources: set[LNode],
        targets: set[LNode],
        state: "_DictState | _IndexedState",
        guide,
    ) -> "SearchResult | None":
        """Try clean L-shaped connections before falling back to A*.

        Picks the closest (source, target) pair, then tries both bend
        orders over the two nearest horizontal/vertical layer choices.
        A candidate is accepted only when every node on it is free for
        this net and inside the guides — so the result is always one
        the hard A* pass could also have found.
        """
        from repro.droute.astar import SearchResult

        lattice = self.lattice
        if len(sources) * len(targets) <= 64:
            src, dst = min(
                ((s, t) for s in sources for t in targets),
                key=lambda pair: (
                    abs(pair[0][1] - pair[1][1])
                    + abs(pair[0][2] - pair[1][2])
                    + abs(pair[0][0] - pair[1][0])
                ),
            )
        else:
            src, dst = _nearest_pair(sources, targets)
        layers = lattice.tech.layers
        min_wire = lattice.min_wire_layer
        h_layers = [
            l.index for l in layers if l.is_horizontal and l.index >= min_wire
        ][:3]
        v_layers = [
            l.index for l in layers if l.is_vertical and l.index >= min_wire
        ][:3]

        free_for = state.free_for
        in_guide = state.in_guide

        def free(node: LNode) -> bool:
            return free_for(node, net) and in_guide(guide, node)

        def stack(ix: int, iy: int, l0: int, l1: int) -> list[LNode]:
            step = 1 if l1 >= l0 else -1
            return [(l, ix, iy) for l in range(l0, l1 + step, step)]

        def run(layer: int, fixed: int, a: int, b: int, horizontal: bool) -> list[LNode]:
            step = 1 if b >= a else -1
            if horizontal:
                return [(layer, v, fixed) for v in range(a, b + step, step)]
            return [(layer, fixed, v) for v in range(a, b + step, step)]

        (sl, sx, sy), (tl, tx, ty) = src, dst
        candidates: list[list[LNode]] = []
        for h in h_layers[:2]:
            for v in v_layers[:2]:
                # horizontal first: src -> (tx, sy) on h, then vertical on v
                path = (
                    stack(sx, sy, sl, h)
                    + run(h, sy, sx, tx, True)[1:]
                    + stack(tx, sy, h, v)[1:]
                    + run(v, tx, sy, ty, False)[1:]
                    + stack(tx, ty, v, tl)[1:]
                )
                candidates.append(path)
                # vertical first
                path = (
                    stack(sx, sy, sl, v)
                    + run(v, sx, sy, ty, False)[1:]
                    + stack(sx, ty, v, h)[1:]
                    + run(h, ty, sx, tx, True)[1:]
                    + stack(tx, ty, h, tl)[1:]
                )
                candidates.append(path)

        best: list[LNode] | None = None
        best_cost = float("inf")
        for path in candidates:
            # Deduplicate consecutive repeats (degenerate runs/stacks).
            clean: list[LNode] = []
            for node in path:
                if not clean or node != clean[-1]:
                    clean.append(node)
            cost = 0.0
            ok = True
            for i, node in enumerate(clean):
                if i and not free(node):
                    ok = False
                    break
                if i:
                    cost += (
                        lattice.pitch
                        if node[0] == clean[i - 1][0]
                        else self.params.via_cost
                    )
            if ok and cost < best_cost:
                best = clean
                best_cost = cost
        if best is None:
            return None
        return SearchResult(path=best, cost=best_cost, conflicts=[])


def _nearest_pair(
    sources: set[LNode], targets: set[LNode]
) -> tuple[LNode, LNode]:
    """True nearest (source, target) pair under the L1 node metric.

    Replaces the old arbitrary single-pair pick above 64 combinations:
    the distance matrix is vectorized over sorted node lists (argmin
    ties resolve to the lexicographically smallest pair, so the choice
    is deterministic).  Truly enormous products are first shortlisted to
    the per-axis sorted extremes of each side — the nearest pair lives
    at facing extremes along some axis for the elongated components this
    regime sees, and even a near-optimal pick only costs the fast-path
    candidate a few extra tracks.
    """
    import numpy as np

    src = sorted(sources)
    dst = sorted(targets)
    if len(src) * len(dst) > 1 << 22:
        src = _axis_extremes(src)
        dst = _axis_extremes(dst)
    s = np.asarray(src, dtype=np.int64)
    t = np.asarray(dst, dtype=np.int64)
    dist = (
        np.abs(s[:, None, 1] - t[None, :, 1])
        + np.abs(s[:, None, 2] - t[None, :, 2])
        + np.abs(s[:, None, 0] - t[None, :, 0])
    )
    flat = int(np.argmin(dist))
    return src[flat // len(dst)], dst[flat % len(dst)]


def _axis_extremes(nodes: list[LNode], keep: int = 8) -> list[LNode]:
    """The ``keep`` smallest/largest nodes along each axis (deduplicated)."""
    chosen: set[int] = set()
    for axis in (0, 1, 2):
        order = sorted(range(len(nodes)), key=lambda i: nodes[i][axis])
        chosen.update(order[:keep])
        chosen.update(order[-keep:])
    return [nodes[i] for i in sorted(chosen)]

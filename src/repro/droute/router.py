"""The detailed-routing driver.

Consumes a design plus per-net route guides (from the global router) and
produces exact routed geometry on the track lattice with the ISPD-2018
quality numbers: wirelength, via count, and DRVs.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.db import Design, Net
from repro.droute.access import access_nodes
from repro.droute.astar import SearchParams, astar_connect
from repro.droute.drc import DrcKind, DrcViolation, check_min_area, check_shorts
from repro.droute.lattice import LNode, TrackLattice
from repro.droute.obstacles import BLOCKED, build_obstacle_map
from repro.guard.deadline import check_deadline
from repro.lefdef.guides import GuideRect
from repro.obs import get_metrics, get_tracer


@dataclass(slots=True)
class DetailedResult:
    """Routed geometry and quality metrics of one detailed-routing run."""

    wirelength_dbu: int = 0
    vias: int = 0
    violations: list[DrcViolation] = field(default_factory=list)
    runtime_s: float = 0.0
    paths: dict[str, list[list[LNode]]] = field(default_factory=dict)

    @property
    def num_drvs(self) -> int:
        return len(self.violations)

    def drv_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for v in self.violations:
            counts[v.kind.value] += 1
        return dict(counts)

    def summary(self) -> str:
        return (
            f"wl={self.wirelength_dbu} vias={self.vias} "
            f"drvs={self.num_drvs} ({self.drv_counts()})"
        )


class DetailedRouter:
    """Guide-honoring sequential detailed router."""

    def __init__(
        self,
        design: Design,
        params: SearchParams | None = None,
        guide_margin_tracks: int = 2,
        drc_rounds: int = 2,
    ) -> None:
        self.design = design
        self.lattice = TrackLattice(design.tech, design.die)
        self.params = params or SearchParams(
            via_cost=4 * self.lattice.pitch,
            conflict_penalty=100 * self.lattice.pitch,
            off_guide_penalty=10 * self.lattice.pitch,
        )
        self.guide_margin = guide_margin_tracks
        #: conflict-driven rip-up-and-reroute rounds after the first pass
        self.drc_rounds = drc_rounds

    # ------------------------------------------------------------------ API

    def route_all(
        self, guides: dict[str, list[GuideRect]] | None = None
    ) -> DetailedResult:
        """Route every net; ``guides`` come from the global router."""
        start = time.perf_counter()
        tracer = get_tracer()
        with tracer.span("droute.obstacles"):
            owner, reservations = build_obstacle_map(self.design, self.lattice)
        occupancy: dict[LNode, str] = {}
        conflicts: dict[LNode, tuple[str, str]] = {}
        net_nodes: dict[str, set[LNode]] = {}
        pin_nodes: dict[str, set[LNode]] = {}
        result = DetailedResult()

        patch_counts: dict[str, int] = {}

        with tracer.span("droute.first_pass"):
            order = sorted(
                self.design.nets.values(),
                key=lambda n: (self.design.net_hpwl(n), n.name),
            )
            for net in order:
                check_deadline("droute.net")
                self._route_net(
                    net,
                    guides.get(net.name) if guides is not None else None,
                    owner,
                    occupancy,
                    conflicts,
                    net_nodes,
                    pin_nodes,
                    patch_counts,
                    result,
                )
                # Release this net's unused escape reservations: once routed,
                # later nets may pass over its pins' spare landings.
                used = net_nodes.get(net.name, set())
                for node in reservations.pop(net.name, ()):
                    if node not in used and owner.get(node) == net.name:
                        del owner[node]

        # Conflict-driven rip-up-and-reroute: every net involved in a
        # short is ripped (both aggressor and victim) and rerouted with a
        # clean slate — the detailed-routing analogue of the global
        # router's RRR passes.
        for round_index in range(self.drc_rounds):
            ripped: set[str] = set()
            for net_a, net_b in conflicts.values():
                ripped.add(net_a)
                ripped.add(net_b)
            if not ripped:
                break
            metrics = get_metrics()
            metrics.count("droute.rrr_rounds")
            metrics.count("droute.ripped_nets", len(ripped))
            for name in sorted(ripped):
                for node in net_nodes.pop(name, ()):
                    if occupancy.get(node) == name:
                        del occupancy[node]
                result.paths.pop(name, None)
                patch_counts.pop(name, None)
            conflicts = {
                node: pair
                for node, pair in conflicts.items()
                if pair[0] not in ripped and pair[1] not in ripped
            }
            result.violations = [
                v
                for v in result.violations
                if not (v.kind is DrcKind.OPEN and v.net_a in ripped)
            ]
            with tracer.span("droute.rrr_round", round=round_index):
                for name in sorted(
                    ripped,
                    key=lambda n: (self.design.net_hpwl(self.design.nets[n]), n),
                ):
                    self._route_net(
                        self.design.nets[name],
                        guides.get(name) if guides is not None else None,
                        owner,
                        occupancy,
                        conflicts,
                        net_nodes,
                        pin_nodes,
                        patch_counts,
                        result,
                    )

        with tracer.span("droute.drc"):
            self._tally(result, patch_counts)
            result.violations.extend(check_shorts(conflicts))
            result.violations.extend(
                check_min_area(self.lattice, net_nodes, pin_nodes)
            )
        metrics = get_metrics()
        metrics.count("droute.drvs", result.num_drvs)
        metrics.gauge("droute.wirelength_dbu", result.wirelength_dbu)
        result.runtime_s = time.perf_counter() - start
        return result

    def _tally(self, result: DetailedResult, patch_counts: dict[str, int]) -> None:
        """Compute wirelength and via totals from the final geometry."""
        pitch = self.lattice.pitch
        wirelength = 0
        vias = 0
        for paths in result.paths.values():
            for path in paths:
                for a, b in zip(path[:-1], path[1:]):
                    if a[0] == b[0]:
                        wirelength += pitch
                    else:
                        vias += 1
        wirelength += pitch * sum(patch_counts.values())
        result.wirelength_dbu = wirelength
        result.vias = vias

    # -------------------------------------------------------------- per-net

    def _route_net(
        self,
        net: Net,
        net_guides: list[GuideRect] | None,
        owner: dict[LNode, str],
        occupancy: dict[LNode, str],
        conflicts: dict[LNode, tuple[str, str]],
        net_nodes: dict[str, set[LNode]],
        pin_nodes: dict[str, set[LNode]],
        patch_counts: dict[str, int],
        result: DetailedResult,
    ) -> None:
        lattice = self.lattice
        terminal_access: list[list[LNode]] = []
        for pin in net.pins:
            nodes = access_nodes(self.design, lattice, pin)
            terminal_access.append(nodes)
        pin_nodes[net.name] = {n for nodes in terminal_access for n in nodes}

        guide_nodes, bounds = self._guide_region(net_guides, terminal_access)

        connected: set[LNode] = set(terminal_access[0])
        used: set[LNode] = set(terminal_access[0])
        paths: list[list[LNode]] = []

        for nodes in terminal_access[1:]:
            targets = set(nodes)
            if targets & connected:
                connected |= targets
                used |= targets
                continue
            search = self._fast_pattern(
                net.name, connected, targets, owner, occupancy, guide_nodes
            )
            if search is None:
                search = astar_connect(
                    lattice,
                    connected,
                    targets,
                    net.name,
                    owner,
                    occupancy,
                    bounds,
                    guide_nodes,
                    self.params,
                    soft=False,
                )
            if search is None:
                search = astar_connect(
                    lattice,
                    connected,
                    targets,
                    net.name,
                    owner,
                    occupancy,
                    bounds,
                    None,
                    self.params,
                    soft=True,
                )
            if search is None:
                get_metrics().count("droute.opens")
                result.violations.append(
                    DrcViolation(
                        kind=DrcKind.OPEN,
                        layer=nodes[0][0],
                        net_a=net.name,
                        node=nodes[0],
                    )
                )
                continue
            paths.append(search.path)
            for node in search.path:
                connected.add(node)
                used.add(node)
            for node in search.conflicts:
                holder = owner.get(node) or occupancy.get(node)
                if holder and holder not in (net.name, BLOCKED):
                    conflicts[node] = (net.name, holder)
            connected |= targets

        patch_counts[net.name] = self._patch_min_area(
            net.name, used, pin_nodes[net.name], owner, occupancy
        )
        for node in sorted(used):
            occupancy.setdefault(node, net.name)
        net_nodes[net.name] = used
        result.paths[net.name] = paths
        get_metrics().count("droute.nets_routed")

    def _patch_min_area(
        self,
        net_name: str,
        used: set[LNode],
        pins: set[LNode],
        owner: dict[LNode, str],
        occupancy: dict[LNode, str],
    ) -> int:
        """Grow under-sized metal patches along the preferred direction.

        Real detailed routers insert metal patches where via stacks leave
        isolated landing pads below the minimum-area rule; this models
        that by claiming free adjacent track nodes and charging their
        wirelength.  Patches that cannot grow are left for the DRC pass
        to flag.
        """
        lattice = self.lattice
        pitch = lattice.pitch
        patched = 0
        per_layer: dict[int, set[tuple[int, int]]] = defaultdict(set)
        for layer, ix, iy in used:
            per_layer[layer].add((ix, iy))
        for layer, points in per_layer.items():
            tech_layer = lattice.tech.layers[layer]
            if tech_layer.min_area <= 0:
                continue
            min_nodes = 1 + max(
                0,
                -(-(tech_layer.min_area - tech_layer.width**2)
                  // (pitch * tech_layer.width)),
            )
            remaining = set(points)
            while remaining:
                check_deadline("droute.patch")
                seed = remaining.pop()
                component = {seed}
                stack = [seed]
                while stack:
                    ix, iy = stack.pop()
                    for nxt in ((ix + 1, iy), (ix - 1, iy), (ix, iy + 1), (ix, iy - 1)):
                        if nxt in remaining:
                            remaining.remove(nxt)
                            component.add(nxt)
                            stack.append(nxt)
                if len(component) >= min_nodes:
                    continue
                if any((layer, ix, iy) in pins for ix, iy in component):
                    continue
                frontier = sorted(component)
                while len(component) < min_nodes and frontier:
                    ix, iy = frontier.pop(0)
                    grown = False
                    here = (layer, ix, iy)
                    for node in lattice.wire_neighbors(here) + lattice.jog_neighbors(here):
                        key = (node[1], node[2])
                        if key in component:
                            continue
                        holder = owner.get(node) or occupancy.get(node)
                        if holder is not None and holder != net_name:
                            continue
                        component.add(key)
                        used.add(node)
                        frontier.append(key)
                        patched += 1
                        grown = True
                        break
                    if grown:
                        frontier.insert(0, (ix, iy))
        return patched

    # ------------------------------------------------------------ fast path

    def _fast_pattern(
        self,
        net: str,
        sources: set[LNode],
        targets: set[LNode],
        owner: dict[LNode, str],
        occupancy: dict[LNode, str],
        guide_nodes: set[LNode] | None,
    ) -> "SearchResult | None":
        """Try clean L-shaped connections before falling back to A*.

        Picks the closest (source, target) pair, then tries both bend
        orders over the two nearest horizontal/vertical layer choices.
        A candidate is accepted only when every node on it is free for
        this net and inside the guides — so the result is always one
        the hard A* pass could also have found.
        """
        from repro.droute.astar import SearchResult

        lattice = self.lattice
        src, dst = min(
            ((s, t) for s in sources for t in targets)
            if len(sources) * len(targets) <= 64
            else [(next(iter(sources)), next(iter(targets)))],
            key=lambda pair: (
                abs(pair[0][1] - pair[1][1])
                + abs(pair[0][2] - pair[1][2])
                + abs(pair[0][0] - pair[1][0])
            ),
        )
        layers = lattice.tech.layers
        min_wire = lattice.min_wire_layer
        h_layers = [
            l.index for l in layers if l.is_horizontal and l.index >= min_wire
        ][:3]
        v_layers = [
            l.index for l in layers if l.is_vertical and l.index >= min_wire
        ][:3]

        def free(node: LNode) -> bool:
            holder = owner.get(node)
            if holder is not None and holder != net:
                return False
            holder = occupancy.get(node)
            if holder is not None and holder != net:
                return False
            if guide_nodes is not None and node not in guide_nodes:
                return False
            return True

        def stack(ix: int, iy: int, l0: int, l1: int) -> list[LNode]:
            step = 1 if l1 >= l0 else -1
            return [(l, ix, iy) for l in range(l0, l1 + step, step)]

        def run(layer: int, fixed: int, a: int, b: int, horizontal: bool) -> list[LNode]:
            step = 1 if b >= a else -1
            if horizontal:
                return [(layer, v, fixed) for v in range(a, b + step, step)]
            return [(layer, fixed, v) for v in range(a, b + step, step)]

        (sl, sx, sy), (tl, tx, ty) = src, dst
        candidates: list[list[LNode]] = []
        for h in h_layers[:2]:
            for v in v_layers[:2]:
                # horizontal first: src -> (tx, sy) on h, then vertical on v
                path = (
                    stack(sx, sy, sl, h)
                    + run(h, sy, sx, tx, True)[1:]
                    + stack(tx, sy, h, v)[1:]
                    + run(v, tx, sy, ty, False)[1:]
                    + stack(tx, ty, v, tl)[1:]
                )
                candidates.append(path)
                # vertical first
                path = (
                    stack(sx, sy, sl, v)
                    + run(v, sx, sy, ty, False)[1:]
                    + stack(sx, ty, v, h)[1:]
                    + run(h, ty, sx, tx, True)[1:]
                    + stack(tx, ty, h, tl)[1:]
                )
                candidates.append(path)

        best: list[LNode] | None = None
        best_cost = float("inf")
        for path in candidates:
            # Deduplicate consecutive repeats (degenerate runs/stacks).
            clean: list[LNode] = []
            for node in path:
                if not clean or node != clean[-1]:
                    clean.append(node)
            cost = 0.0
            ok = True
            for i, node in enumerate(clean):
                if i and not free(node):
                    ok = False
                    break
                if i:
                    cost += (
                        lattice.pitch
                        if node[0] == clean[i - 1][0]
                        else self.params.via_cost
                    )
            if ok and cost < best_cost:
                best = clean
                best_cost = cost
        if best is None:
            return None
        return SearchResult(path=best, cost=best_cost, conflicts=[])

    # --------------------------------------------------------------- guides

    def _guide_region(
        self,
        net_guides: list[GuideRect] | None,
        terminal_access: list[list[LNode]],
    ):
        """Guide membership test + search bounds for one net."""
        lattice = self.lattice
        margin = self.guide_margin
        all_nodes = [n for nodes in terminal_access for n in nodes]
        ix_vals = [n[1] for n in all_nodes]
        iy_vals = [n[2] for n in all_nodes]

        if net_guides is None:
            slack = 12
            bounds = (
                max(0, min(ix_vals) - slack),
                max(0, min(iy_vals) - slack),
                min(lattice.nx - 1, max(ix_vals) + slack),
                min(lattice.ny - 1, max(iy_vals) + slack),
            )
            return None, bounds

        per_layer: dict[int, list[tuple[int, int, int, int]]] = defaultdict(list)
        g_ix0, g_iy0 = lattice.nx - 1, lattice.ny - 1
        g_ix1, g_iy1 = 0, 0
        for guide in net_guides:
            ix0, iy0, ix1, iy1 = lattice.index_rect(guide.rect)
            ix0 = max(0, ix0 - margin)
            iy0 = max(0, iy0 - margin)
            ix1 = min(lattice.nx - 1, ix1 + margin)
            iy1 = min(lattice.ny - 1, iy1 + margin)
            per_layer[guide.layer].append((ix0, iy0, ix1, iy1))
            g_ix0 = min(g_ix0, ix0)
            g_iy0 = min(g_iy0, iy0)
            g_ix1 = max(g_ix1, ix1)
            g_iy1 = max(g_iy1, iy1)
        g_ix0 = min(g_ix0, max(0, min(ix_vals) - margin))
        g_iy0 = min(g_iy0, max(0, min(iy_vals) - margin))
        g_ix1 = max(g_ix1, min(lattice.nx - 1, max(ix_vals) + margin))
        g_iy1 = max(g_iy1, min(lattice.ny - 1, max(iy_vals) + margin))

        guide_nodes: set[LNode] = set()
        for layer, spans in per_layer.items():
            for ix0, iy0, ix1, iy1 in spans:
                for ix in range(ix0, ix1 + 1):
                    for iy in range(iy0, iy1 + 1):
                        guide_nodes.add((layer, ix, iy))
        # Terminals and their escape landings are always fair game.
        for nodes in terminal_access:
            for layer, ix, iy in nodes:
                guide_nodes.add((layer, ix, iy))
                if layer + 1 < lattice.tech.num_layers:
                    guide_nodes.add((layer + 1, ix, iy))

        return guide_nodes, (g_ix0, g_iy0, g_ix1, g_iy1)

"""Worker-process side of the parallel executor.

Each worker owns a full replica of the parent's routing state: the
pickled :class:`~repro.db.Design` plus a :class:`GlobalRouter` rebuilt
with the parent's constructor arguments.  The replica is kept
bit-identical by replaying the parent's append-only mutation log
(route commits/rip-ups, cell moves, full array resyncs) in order
before every task — integer increments on float64 arrays are exact, so
replayed demand equals parent demand bit-for-bit, and the PR 4
cost-field parity discipline then makes every derived cost identical.

The compute functions here are *pure with respect to committed state*:
they read the replica and return candidate results without committing
anything (maze computation temporarily rips the net's own route and
restores it before returning).  The parent's serial fallback calls the
same functions against the live router, which is what makes
``workers=1`` and ``workers=N`` byte-identical by construction.

Spawn-safety: this module keeps no module-level mutable state — every
worker's state lives in a :class:`WorkerState` local to
:func:`worker_main` — and is importable without side effects, so it
works under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from typing import TYPE_CHECKING

from repro.guard.deadline import DeadlineExceeded, deadline_scope
from repro.obs import get_metrics
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracer import Tracer, use_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.groute import GlobalRouter

Node = tuple[int, int, int]

#: queue message tags, parent -> worker
MSG_TASK = "task"
MSG_STOP = "stop"
#: queue message tags, worker -> parent
RES_OK = "ok"
RES_DEADLINE = "deadline"
RES_ERR = "err"

#: seconds between heartbeat writes; the parent's hang timeout is many
#: multiples of this, so a single missed beat never looks like a hang
HEARTBEAT_S = 0.5


class WorkerState:
    """One worker's routing replica plus per-process caches."""

    __slots__ = ("router", "droute", "_estimate_models", "_ecc")

    def __init__(self, router: "GlobalRouter") -> None:
        self.router = router
        #: DetailedRouter replica of the parent's open droute session
        #: (built by a ``("ds", ...)`` log entry), or None outside one
        self.droute = None
        self._estimate_models: dict[bool, tuple[object, object]] = {}
        #: (epoch, EccCache) for the current ECC fan-out, or None.  The
        #: epoch token ties the cache to one ``run_estimates`` call so
        #: chunks of the same iteration share pricing work while a new
        #: iteration (new epoch) always starts clean.
        self._ecc: tuple[object, object] | None = None

    def ecc_cache(self, epoch: object):
        """The iteration-scoped ECC pricing cache for ``epoch``."""
        if self._ecc is None or self._ecc[0] != epoch:
            from repro.core.fastecc import EccCache

            self._ecc = (epoch, EccCache())
        return self._ecc[1]

    def estimate_models(self, use_penalty: bool) -> tuple[object, object]:
        """(CostModel, CostField) pair for candidate estimation.

        Mirrors :class:`CrpFramework`'s ablation setup: ``use_penalty=
        False`` prices congestion-blind with a fresh model/field pair
        over the same graph, built once per process.
        """
        return estimate_models_for(
            self.router, use_penalty, self._estimate_models
        )


def estimate_models_for(
    router: "GlobalRouter",
    use_penalty: bool,
    cache: dict[bool, tuple[object, object]],
) -> tuple[object, object]:
    """Cached estimation model/field pair (shared with the parent path)."""
    pair = cache.get(use_penalty)
    if pair is not None:
        return pair
    if use_penalty:
        pair = (router.cost, router.field)
    else:
        from repro.grid import CostField, CostModel, CostParams

        params = CostParams(
            wire_weight=router.cost.params.wire_weight,
            via_weight=router.cost.params.via_weight,
            slope=router.cost.params.slope,
            use_penalty=False,
        )
        model = CostModel(router.graph, params)
        fld = CostField(router.graph, params) if router.field is not None else None
        pair = (model, fld)
    cache[use_penalty] = pair
    return pair


# ------------------------------------------------------------------ replica


def build_router(payload: bytes) -> "GlobalRouter":
    """Rebuild the routing state from the parent's init payload."""
    from repro.groute import GlobalRouter

    design, ctor_args = pickle.loads(payload)
    return GlobalRouter(design, **ctor_args)


def apply_entries(state: WorkerState, entries: tuple) -> None:
    """Replay a slice of the parent's mutation log, in order.

    Entry forms:

    * ``("r", edges, sign)`` — a route commit (+1) or rip-up (-1),
      replayed through :meth:`RoutingGraph.apply_route` so the cost
      field sees the same per-edge notifications as the parent's.
    * ``("m", name, x, y, orient)`` — one cell move.
    * ``("a", wire, via, positions)`` — full resync: overwrite the
      usage arrays and cell positions, then invalidate the cost field
      (the parent emits this when something mutated arrays behind the
      graph's back, e.g. a transaction rollback's belt-and-braces
      invalidation).
    * ``("ds", ctor_args, guides)`` — open a detailed-routing session:
      build a fresh :class:`DetailedRouter` replica over the replica
      design (cell positions are already synced by the preceding move
      entries) and begin a session with the parent's guides.
    * ``("dn", name, used)`` — one committed detailed-routed net:
      mark its nodes used and release its reservations, exactly as the
      parent's commit did.
    """
    router = state.router
    if entries:
        # Any replayed mutation can shift pin points (cell moves) or
        # wire-cost map values (route/array entries); the ECC cache's
        # memos key on neither, so drop it wholesale.
        state._ecc = None
    for entry in entries:
        tag = entry[0]
        if tag == "r":
            router.graph.apply_route(list(entry[1]), entry[2])
        elif tag == "m":
            router.design.move_cell(entry[1], entry[2], entry[3], entry[4])
        elif tag == "a":
            _, wire, via, positions = entry
            for arr, new in zip(router.graph.wire_usage, wire):
                arr[:] = new
            for arr, new in zip(router.graph.via_usage, via):
                arr[:] = new
            if positions:
                cells = router.design.cells
                for name in sorted(positions):
                    x, y, orient = positions[name]
                    cell = cells[name]
                    if (cell.x, cell.y, cell.orient) != (x, y, orient):
                        router.design.move_cell(name, x, y, orient)
            router.invalidate_cost_fields()
        elif tag == "ds":
            from repro.droute.router import DetailedRouter

            droute = DetailedRouter(router.design, **entry[1])
            droute.begin_session(entry[2])
            state.droute = droute
        elif tag == "dn":
            state.droute.replay_commit(entry[1], list(entry[2]))
        else:  # pragma: no cover - protocol error
            raise ValueError(f"unknown log entry tag {tag!r}")


# ------------------------------------------------------- pure compute fns


def compute_pattern_route(
    router: "GlobalRouter", net_name: str
) -> tuple[tuple, tuple]:
    """RSMT + 3D pattern route of one net, without committing.

    Identical to the compute half of :meth:`GlobalRouter.route_net`;
    the caller owns the commit.
    """
    net = router.design.nets[net_name]
    terminals = router.terminals_of(net)
    edges = router._route_tree(terminals) if len(terminals) > 1 else set()
    return tuple(sorted(edges)), tuple(terminals)


def compute_maze_route(
    router: "GlobalRouter", net_name: str, old_edges: tuple
) -> tuple[tuple, tuple]:
    """Overflow-averse maze route of one net, without committing.

    Identical to the compute half of :meth:`GlobalRouter._maze_reroute`:
    the net's own committed route is ripped locally so the search does
    not price against itself, and restored before returning (net-zero
    on the replica's arrays, so replicas stay in sync).  A deadline
    expiring mid-net propagates; the caller falls back to the serial
    deadline-safe path for this net.
    """
    from repro.groute.maze import maze_route

    graph = router.graph
    old = list(old_edges)
    if old:
        graph.apply_route(old, sign=-1)
    try:
        net = router.design.nets[net_name]
        terminals = router.terminals_of(net)
        edges: set = set()
        if len(terminals) > 1:
            connected: set[Node] = {terminals[0]}
            for terminal in terminals[1:]:
                path = maze_route(
                    graph,
                    router.cost,
                    sources=set(connected),
                    targets={terminal},
                    overflow_penalty=10.0 * router.cost.params.via_weight,
                    field=router.field,
                )
                if path is None:
                    get_metrics().count("groute.maze_fallbacks")
                    fallback = router._route_segment(
                        next(iter(connected)),
                        (terminal[1], terminal[2]),
                        terminal[0],
                    )
                    path = fallback[0] if fallback else []
                edges.update(path)
                connected.add(terminal)
                for edge in path:
                    a, b = edge.endpoints(graph)
                    connected.add(a)
                    connected.add(b)
        return tuple(sorted(edges)), tuple(terminals)
    finally:
        if old:
            graph.apply_route(old, sign=1)


def compute_estimate(
    state: WorkerState, candidate: object, extra: object
) -> float:
    """Eq. 10 candidate cost (read-only; identical to the ECC step).

    ``extra`` is either a bare ``use_penalty`` bool (legacy form) or a
    ``(use_penalty, epoch)`` tuple; an epoch opts this fan-out into the
    iteration-scoped :class:`~repro.core.fastecc.EccCache`.
    """
    from repro.core.estimate import estimate_candidate_cost

    if isinstance(extra, tuple):
        use_penalty, epoch = extra
        cache = state.ecc_cache(epoch)
    else:
        use_penalty = bool(extra)
        cache = None
    model, fld = state.estimate_models(use_penalty)
    router = state.router
    with router.pattern3d.using(model, fld):
        return estimate_candidate_cost(
            router.design, router, candidate, cache=cache
        )


def compute_droute(state: WorkerState, net_name: str):
    """First-pass detail-route of one net, without committing.

    Runs against the session replica built by the ``("ds", ...)`` /
    ``("dn", ...)`` log entries; identical to the compute half of the
    parent's serial first pass, so the parent can commit the returned
    :class:`NetComputation` (or recompute serially on conflict) and
    stay byte-identical with ``workers=1``.
    """
    return state.droute.compute_net(net_name)


def compute_item(state: WorkerState, kind: str, item: object, extra: object):
    """Dispatch one work item; shared by workers and the serial path."""
    if kind == "route":
        return compute_pattern_route(state.router, item)
    if kind == "maze":
        return compute_maze_route(state.router, item[0], item[1])
    if kind == "estimate":
        return compute_estimate(state, item, extra)
    if kind == "droute":
        return compute_droute(state, item)
    raise ValueError(f"unknown task kind {kind!r}")


def flush_state_caches(state: WorkerState) -> None:
    """Publish per-state cache tallies into the current metrics registry.

    Called inside the worker's per-task observability scope (and by the
    executor's serial fallback) so ``crp.ecc_cache_*`` counts land in
    the registry that ships back to the parent.
    """
    if state._ecc is not None:
        state._ecc[1].publish_metrics()


# --------------------------------------------------------------- main loop


def _start_heartbeat(worker_id: int, heartbeat) -> threading.Event:
    """Start the daemon thread that stamps this worker's heartbeat slot.

    Beating from a dedicated thread (started *before* the replica is
    built — deserializing a large design must not look like a hang)
    means a worker busy on a long legitimate compute keeps beating,
    while a deadlocked, frozen, or killed process goes silent and the
    parent's :class:`~repro.par.supervisor.PoolSupervisor` flags it.

    The same thread doubles as an orphan watchdog: if the parent dies
    hard (SIGKILL, OOM — nothing ran to stop the pool) this worker is
    re-parented, ``getppid()`` changes, and the worker ``os._exit``\\ s
    immediately.  Without this, orphans would block on ``task_queue``
    forever while holding inherited pipe file descriptors open — which
    visibly hangs any ``subprocess`` caller capturing the dead parent's
    output.
    """
    halt = threading.Event()
    parent = os.getppid()

    def beat() -> None:
        while not halt.is_set():
            if os.getppid() != parent:
                os._exit(1)  # orphaned: the parent is gone
            if heartbeat is not None:
                heartbeat[worker_id] = time.monotonic()
            halt.wait(HEARTBEAT_S)

    threading.Thread(
        target=beat, name=f"repro-par-heartbeat-{worker_id}", daemon=True
    ).start()
    return halt


def worker_main(
    worker_id: int, task_queue, result_queue, payload: bytes, heartbeat=None
) -> None:
    """Entry point of one worker process.

    Replays log entries, runs the chunk under the parent-supplied
    deadline budget, and ships results (plus optional metrics/span
    payloads) back.  Any exception is reported to the parent, which
    recomputes the chunk serially — a dead task never kills the run.
    ``heartbeat`` is a shared double array; slot ``worker_id`` is
    stamped with ``time.monotonic()`` by a daemon thread so the parent can
    tell a busy worker from a hung one (the thread also exits the
    process if the parent dies hard and this worker is orphaned).
    """
    halt_beat = _start_heartbeat(worker_id, heartbeat)
    try:
        state = WorkerState(build_router(payload))
        _worker_loop(worker_id, task_queue, result_queue, state)
    finally:
        halt_beat.set()


def _worker_loop(worker_id: int, task_queue, result_queue, state: WorkerState) -> None:
    while True:
        msg = task_queue.get()
        if msg[0] == MSG_STOP:
            break
        _, task_id, kind, entries, items, extra, budget_s, obs_on = msg
        wall0 = time.perf_counter()
        try:
            apply_entries(state, entries)
            done: list = []
            expired = False

            def run() -> None:
                nonlocal expired
                try:
                    with deadline_scope(budget_s, name="par.worker"):
                        for item in items:
                            done.append(compute_item(state, kind, item, extra))
                except DeadlineExceeded:
                    expired = True
                finally:
                    flush_state_caches(state)

            obs_payload = None
            if obs_on:
                registry = MetricsRegistry()
                tracer = Tracer()
                with use_metrics(registry), use_tracer(tracer):
                    with tracer.span(
                        "par.task", worker=worker_id, kind=kind, items=len(items)
                    ):
                        run()
                obs_payload = (registry.raw(), tracer.roots)
            else:
                run()
            wall_s = time.perf_counter() - wall0
            tag = RES_DEADLINE if expired else RES_OK
            result_queue.put((tag, task_id, done, wall_s, obs_payload))
        except Exception as exc:  # repro: noqa:REPRO-G002 — worker isolation: the parent recomputes the chunk serially
            result_queue.put(
                (RES_ERR, task_id, f"{type(exc).__name__}: {exc}", 0.0, None)
            )

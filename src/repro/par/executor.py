"""Parent-side parallel executor: process pool + mutation log + merge.

The executor owns three responsibilities:

1. **Replica sync.**  The parent records every routing-state mutation
   in an append-only log (route commits/rip-ups via
   :meth:`note_route`, cell moves discovered by diffing positions
   before each dispatch, full array resyncs via :meth:`note_desync`).
   Each worker tracks a log sequence number; a task carries exactly
   the unseen tail, so replicas replay the parent's mutations in
   parent order and stay bit-identical.

2. **Deterministic dispatch.**  Work items are chunked and assigned to
   workers round-robin by chunk index, results are collected by task
   id, and the returned list is aligned with the input order — worker
   scheduling and timing can never reorder results.

3. **Degradation.**  A worker error (or an armed ``par.worker`` fault
   point) marks its chunk missing and the parent recomputes it
   in-process with the *same* compute functions, so a dead worker
   costs time, never correctness.  A worker that runs out of its
   deadline budget ships back what it finished; the parent re-checks
   the ambient deadline and lets the per-stage fallback handle the
   rest.  At ``workers=1`` no processes exist at all: the same chunks
   run in-process against the live router, which is the parity
   baseline the tests pin parallel runs against.

4. **Self-healing.**  A :class:`~repro.par.supervisor.PoolSupervisor`
   daemon thread watches worker processes and their heartbeat slots;
   workers it flags (dead, or hung past ``hang_timeout_s``) are healed
   here on the dispatcher's thread: up to ``max_respawns`` respawns
   per slot with exponential backoff, the fresh worker's replica
   rebuilt by replaying the mutation log from entry 0, and the dead
   worker's in-flight tasks re-dispatched (``par.retries``).  A slot
   that exhausts its respawn budget is *shrunk* out of the rotation
   (``par.pool_shrinks``); only when no live slot remains does the
   pool fall back to the serial in-process path.  Determinism is
   untouched: replicas are bit-identical by construction and compute
   functions are pure, so *which* worker computes a chunk never
   changes its result.

Observability: when the ambient tracer/metrics are recording, workers
run each task under a private registry + tracer and ship back raw
metrics and ``par.task`` span trees; the parent folds the metrics in
task order and attaches the spans to the enclosing ``par.route`` span.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import time
from typing import TYPE_CHECKING

from repro.guard.deadline import DeadlineExceeded, check_deadline, remaining_budget
from repro.guard.faults import fault_point
from repro.obs import get_metrics, get_tracer

from repro.par import worker as parworker
from repro.par.supervisor import (
    REASON_HUNG,
    REASON_INJECTED,
    PoolSupervisor,
)
from repro.par.worker import WorkerState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.groute import GlobalRouter

#: default work items per task for routing kinds (maze compute dominates)
ROUTE_CHUNK = 8
#: default work items per task for candidate estimation (cheap per item)
ESTIMATE_CHUNK = 32
#: seconds between liveness polls while waiting on the result queue
POLL_S = 10.0


class ParallelExecutor:
    """Deterministic process-pool executor for routing and estimation."""

    def __init__(
        self,
        workers: int = 1,
        *,
        chunk: int = ROUTE_CHUNK,
        start_method: str | None = None,
        poll_s: float = POLL_S,
        hang_timeout_s: float = 30.0,
        max_respawns: int = 2,
        respawn_backoff_s: float = 0.05,
    ) -> None:
        self.workers = max(1, int(workers))
        self.chunk = max(1, int(chunk))
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self.start_method = start_method
        self.poll_s = max(0.05, float(poll_s))
        self.hang_timeout_s = float(hang_timeout_s)
        #: respawn budget *per worker slot*; exhausting it shrinks the slot
        self.max_respawns = max(0, int(max_respawns))
        #: base of the exponential backoff before each respawn attempt
        self.respawn_backoff_s = max(0.0, float(respawn_backoff_s))
        self.router: "GlobalRouter | None" = None
        self._log: list[tuple] = []
        self._procs: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._worker_seq: list[int] = []
        self._synced_pos: dict[str, tuple] = {}
        self._estimate_models: dict[bool, tuple[object, object]] = {}
        self._started = False
        self._dead = False
        #: the DetailedRouter of the active droute session (if any) and
        #: the session stash replayed to workers when the pool starts
        #: mid-first-pass: (ctor_args, guides, [(name, used), ...])
        self._droute = None
        self._droute_session: list | None = None
        self._next_task = 0
        #: monotonically increasing token scoping worker EccCaches to
        #: one run_estimates call (i.e. one CR&P ECC step)
        self._ecc_epoch = 0
        self._ctx = None
        self._payload: bytes | None = None
        self._heartbeats = None
        self._alive: list[bool] = []
        self._respawns: list[int] = []
        #: task_id -> dispatch record, for re-dispatch after a heal
        self._inflight: dict[int, dict] = {}
        self._supervisor: PoolSupervisor | None = None

    # ----------------------------------------------------------- lifecycle

    def bind(self, router: "GlobalRouter") -> "ParallelExecutor":
        """Attach to a router; the router's drivers batch through us."""
        self.router = router
        router.executor = self
        return self

    @property
    def parallel(self) -> bool:
        """True when tasks actually cross a process boundary."""
        return self.workers > 1 and not self._dead

    def close(self) -> None:
        """Stop workers and detach; safe to call twice.

        Reaping escalates: cooperative STOP + ``join(timeout)``, then
        ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL) — a worker
        wedged in uninterruptible C code cannot leak past close.
        """
        if self._supervisor is not None:
            self._supervisor.stop()
            self._supervisor = None
        if self._started:
            for worker in self._live_workers():
                try:
                    self._task_queues[worker].put((parworker.MSG_STOP,))
                except (OSError, ValueError):
                    pass
            for proc in self._procs:
                if proc is None:
                    continue
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
            self._procs = []
            self._task_queues = []
            self._result_queue = None
            self._heartbeats = None
            self._alive = []
            self._inflight.clear()
            self._started = False
        if self.router is not None and self.router.executor is self:
            self.router.executor = None
        self._dead = True

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------- mutation log

    def note_route(self, edges: list, sign: int) -> None:
        """Record one route commit (+1) or rip-up (-1) for the replicas."""
        if self._started and not self._dead:
            self._log.append(("r", tuple(edges), sign))

    def note_desync(self) -> None:
        """Record a full-state resync (arrays were mutated out-of-band)."""
        if not self._started or self._dead:
            return
        graph = self.router.graph
        positions = {
            name: (cell.x, cell.y, cell.orient)
            for name, cell in self.router.design.cells.items()
        }
        self._log.append(
            (
                "a",
                [arr.copy() for arr in graph.wire_usage],
                [arr.copy() for arr in graph.via_usage],
                positions,
            )
        )
        self._synced_pos = positions

    def note_droute_start(self, droute, guides) -> None:
        """Open a detailed-routing session for the replicas.

        Called by :meth:`DetailedRouter.route_all` before its batched
        first pass.  If the pool is live the session opens in the log
        right away (after a move sync, so replicas build their obstacle
        maps against current cell positions); otherwise it is stashed
        and flushed by :meth:`_ensure_pool` the moment the pool spins
        up, together with any commits made serially before that point.
        """
        self._droute = droute
        if self._dead:
            return
        if self._started:
            self._sync_moves()
            self._log.append(("ds", droute.ctor_args, guides))
            self._droute_session = None
        else:
            self._droute_session = [droute.ctor_args, guides, []]

    def note_droute_commit(self, name: str, used) -> None:
        """Record one committed detailed-routed net for the replicas."""
        if self._dead:
            return
        if self._started:
            self._log.append(("dn", name, tuple(used)))
        elif self._droute_session is not None:
            self._droute_session[2].append((name, tuple(used)))

    def _sync_moves(self) -> None:
        """Append a move entry for every cell that moved since last sync."""
        for name in sorted(self.router.design.cells):
            cell = self.router.design.cells[name]
            pos = (cell.x, cell.y, cell.orient)
            if self._synced_pos.get(name) != pos:
                self._synced_pos[name] = pos
                self._log.append(("m", name, *pos))

    # ------------------------------------------------------------- pool

    def _ensure_pool(self) -> None:
        if self._started or not self.parallel:
            return
        router = self.router
        ctx = mp.get_context(self.start_method)
        self._ctx = ctx
        self._payload = pickle.dumps(
            (router.design, router.ctor_args),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._result_queue = ctx.Queue()
        # Heartbeat slots start "fresh" so a worker still deserializing
        # its replica is not flagged before its first beat.
        self._heartbeats = ctx.Array("d", [time.monotonic()] * self.workers)
        self._task_queues = [None] * self.workers
        self._procs = [None] * self.workers
        self._worker_seq = [0] * self.workers
        self._alive = [True] * self.workers
        self._respawns = [0] * self.workers
        self._inflight = {}
        for worker_id in range(self.workers):
            self._spawn_worker(worker_id)
        self._started = True
        self._synced_pos = {
            name: (cell.x, cell.y, cell.orient)
            for name, cell in router.design.cells.items()
        }
        # Workers rebuilt a virgin router from the design; bring them up
        # to the parent's current committed demand with one resync.
        graph = router.graph
        self._log.append(
            (
                "a",
                [arr.copy() for arr in graph.wire_usage],
                [arr.copy() for arr in graph.via_usage],
                None,
            )
        )
        # A droute session opened before the pool existed (the first
        # batches were small enough to run in-process): replay the
        # session open plus every serial commit made so far, in order.
        if self._droute_session is not None:
            ctor_args, guides, commits = self._droute_session
            self._log.append(("ds", ctor_args, guides))
            for name, used in commits:
                self._log.append(("dn", name, used))
            self._droute_session = None
        self._supervisor = PoolSupervisor(
            self,
            poll_s=min(1.0, self.poll_s),
            hang_timeout_s=self.hang_timeout_s,
        )
        self._supervisor.start()
        get_metrics().gauge("par.pool_workers", self.workers)

    def _spawn_worker(self, worker_id: int) -> None:
        """(Re)start one worker slot with a fresh task queue."""
        task_queue = self._ctx.Queue()
        self._heartbeats[worker_id] = time.monotonic()
        proc = self._ctx.Process(
            target=parworker.worker_main,
            args=(
                worker_id,
                task_queue,
                self._result_queue,
                self._payload,
                self._heartbeats,
            ),
            daemon=True,
        )
        proc.start()
        self._task_queues[worker_id] = task_queue
        self._procs[worker_id] = proc

    def _live_workers(self) -> list[int]:
        """Slots still in the dispatch rotation."""
        return [w for w in range(len(self._procs)) if self._alive[w]]

    def _kill_pool(self) -> None:
        """Abandon a wedged/broken pool; remaining work runs in-process."""
        get_metrics().count("par.pool_failures")
        if self._supervisor is not None:
            self._supervisor.stop()
            self._supervisor = None
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        self._procs = []
        self._task_queues = []
        self._result_queue = None
        self._heartbeats = None
        self._alive = []
        self._inflight.clear()
        self._started = False
        self._dead = True

    # ---------------------------------------------------------- self-healing

    def _heal_suspects(self, metrics) -> None:
        """Drain the supervisor's suspect map and repair each worker.

        Runs on the dispatcher's thread (before enqueueing a batch and
        on every result-queue poll timeout), so all pool mutations stay
        single-threaded.  Augments the supervisor with a direct process
        liveness scan — a worker can die between supervisor polls.
        """
        if not self._started:
            return
        suspects: dict[int, str] = {}
        if self._supervisor is not None:
            suspects.update(self._supervisor.take_suspects())
        for worker in self._live_workers():
            proc = self._procs[worker]
            if proc is not None and not proc.is_alive():
                suspects.setdefault(worker, "died")
        for worker in sorted(suspects):
            if not self._started:
                return
            if self._alive[worker]:
                self._heal_worker(worker, suspects[worker], metrics)

    def _heal_worker(self, worker: int, reason: str, metrics) -> None:
        """Respawn (bounded, backed-off) or shrink one suspect slot."""
        proc = self._procs[worker]
        # Recheck before acting: a suspicion can go stale (the flagged
        # process was already healed, or a "hung" worker beat again).
        # An injected fault skips the recheck by design — its worker is
        # genuinely healthy, the point is to force the recovery path.
        if reason == REASON_HUNG:
            if (
                proc is not None
                and proc.is_alive()
                and time.monotonic() - self._heartbeats[worker] <= self.hang_timeout_s
            ):
                return
        elif reason != REASON_INJECTED:
            if proc is not None and proc.is_alive():
                return
        orphans = {
            tid: info
            for tid, info in self._inflight.items()
            if info["worker"] == worker
        }
        attempt = self._respawns[worker]
        if attempt >= self.max_respawns:
            self._shrink(worker, metrics)
        else:
            self._respawns[worker] = attempt + 1
            metrics.count("par.respawns")
            self._reap(worker)
            time.sleep(self.respawn_backoff_s * (2**attempt))
            self._spawn_worker(worker)
            # Fresh replica: replay the whole mutation log on next task.
            self._worker_seq[worker] = 0
        if self._supervisor is not None:
            self._supervisor.forget(worker)
        if not self._live_workers():
            self._kill_pool()
            return
        self._requeue(orphans, metrics)

    def _reap(self, worker: int) -> None:
        """Force one worker process down (terminate -> kill escalation)."""
        proc = self._procs[worker]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        old_queue = self._task_queues[worker]
        if old_queue is not None:
            try:
                old_queue.close()
                old_queue.cancel_join_thread()
            except (OSError, ValueError):
                pass
        self._task_queues[worker] = None
        self._procs[worker] = None

    def _shrink(self, worker: int, metrics) -> None:
        """Retire a slot whose respawn budget is exhausted."""
        metrics.count("par.pool_shrinks")
        self._alive[worker] = False
        self._reap(worker)
        metrics.gauge("par.pool_workers", len(self._live_workers()))

    def _requeue(self, orphans: dict[int, dict], metrics) -> None:
        """Re-dispatch a healed worker's in-flight tasks.

        All in-flight tasks of one batch were dispatched at the same
        log sequence (the log only grows between batches), so any live
        worker's replica can serve any orphan: the entry slice
        ``log[worker_seq:seq]`` is the full log for a fresh respawn and
        empty for an already-caught-up neighbour.
        """
        live = self._live_workers()
        if not live:
            return
        for n, task_id in enumerate(sorted(orphans)):
            info = orphans[task_id]
            target = (
                info["worker"]
                if self._alive[info["worker"]]
                else live[n % len(live)]
            )
            seq = info["seq"]
            entries = tuple(self._log[self._worker_seq[target] : seq])
            if seq > self._worker_seq[target]:
                self._worker_seq[target] = seq
            info["worker"] = target
            try:
                self._task_queues[target].put(
                    (
                        parworker.MSG_TASK,
                        task_id,
                        info["kind"],
                        entries,
                        info["items"],
                        info["extra"],
                        info["budget_s"],
                        info["obs_on"],
                    )
                )
            except (OSError, ValueError):
                self._kill_pool()
                return
            metrics.count("par.retries")

    # ----------------------------------------------------------- dispatch

    def run_route_batch(self, names: list[str]) -> dict[str, object]:
        """Pattern-route a conflict-free batch; name -> (edges, terminals).

        A ``None`` value means the worker hit its deadline budget before
        reaching that net; the caller's commit stage falls back to the
        serial deadline-safe path for it.
        """
        results = self._dispatch("route", list(names), None, self.chunk)
        return dict(zip(names, results))

    def run_droute_batch(self, names: list[str]) -> dict[str, object]:
        """Detail-route a spatial batch; name -> NetComputation.

        Requires an open droute session (:meth:`note_droute_start`).
        ``None`` values (deadline/worker loss) are recomputed serially
        by :meth:`_dispatch`'s in-process fallback, so the caller always
        sees a complete mapping.
        """
        results = self._dispatch("droute", list(names), None, self.chunk)
        return dict(zip(names, results))

    def run_maze_batch(self, items: list[tuple]) -> dict[str, object]:
        """Maze-reroute a batch of ``(name, old_edges)``; name -> result."""
        results = self._dispatch("maze", list(items), None, self.chunk)
        return {item[0]: result for item, result in zip(items, results)}

    def run_estimates(
        self, candidates: list, use_penalty: bool, use_cache: bool = False
    ) -> list[float]:
        """Price candidates in order (ECC); pure reads, order-preserving.

        ``use_cache=True`` opts this fan-out into the iteration-scoped
        ECC pricing cache: a fresh epoch token rides along as the task
        extra, so every worker (and the in-process fallback) shares one
        :class:`~repro.core.fastecc.EccCache` per call and discards it
        on the next.  Caching is read-only memoization of bit-identical
        values, so results match the uncached path byte-for-byte.
        """
        if use_cache:
            self._ecc_epoch += 1
            extra: object = (bool(use_penalty), self._ecc_epoch)
        else:
            extra = bool(use_penalty)
        return self._dispatch(
            "estimate", list(candidates), extra, ESTIMATE_CHUNK
        )

    def _dispatch(
        self, kind: str, items: list, extra: object, chunk: int
    ) -> list:
        """Run ``items`` through the pool; returns results aligned with input.

        Chunks that fail (worker error, armed ``par.worker`` fault,
        broken pool) are recomputed in-process.  Chunks cut short by a
        worker-side deadline stay ``None`` unless the ambient deadline
        turns out to still have budget.
        """
        results: list = [None] * len(items)
        metrics = get_metrics()
        deadline_hit = False
        # A single chunk cannot overlap with anything — shipping it to a
        # worker while the parent waits is pure overhead, and the long
        # singleton tail of the batch chain on dense designs would pay
        # a queue round-trip per net.  The size test depends only on
        # the input, never on worker count, so determinism holds.
        if len(items) > chunk and self.parallel:
            self._ensure_pool()
        if len(items) > chunk and self._started and not self._dead:
            deadline_hit = self._dispatch_pool(
                kind, items, extra, chunk, results, metrics
            )
        if deadline_hit:
            metrics.count("par.deadline_returns")
            # Normally the ambient scope the budget came from has also
            # expired and this raises; if it somehow still has slack,
            # fall through and finish the chunk in-process.
            check_deadline("par.worker")
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            if self._started:
                metrics.count("par.serial_fallback_items", len(missing))
            state = self._parent_state()
            try:
                for i in missing:
                    results[i] = parworker.compute_item(
                        state, kind, items[i], extra
                    )
            finally:
                parworker.flush_state_caches(state)
        return results

    def _dispatch_pool(
        self,
        kind: str,
        items: list,
        extra: object,
        chunk: int,
        results: list,
        metrics,
    ) -> bool:
        """Ship chunks to workers and fold results back; True on deadline."""
        # Heal before enqueueing: a worker that died while the pool sat
        # idle must not be handed a batch's worth of tasks first.
        self._heal_suspects(metrics)
        if not self._started:
            return False
        self._sync_moves()
        budget_s = remaining_budget()
        obs_on = bool(get_metrics().recording or get_tracer().recording)
        chunks = [
            (start, items[start : start + chunk])
            for start in range(0, len(items), chunk)
        ]
        pending: dict[int, int] = {}  # task_id -> chunk start index
        live = self._live_workers()
        for chunk_index, (start, chunk_items) in enumerate(chunks):
            try:
                fault_point("par.worker")
            except DeadlineExceeded:
                raise
            except Exception:
                metrics.count("par.worker_failures")
                continue
            worker = live[chunk_index % len(live)]
            seq = len(self._log)
            entries = tuple(self._log[self._worker_seq[worker] : seq])
            self._worker_seq[worker] = seq
            task_id = self._next_task
            self._next_task += 1
            task_items = tuple(chunk_items)
            try:
                self._task_queues[worker].put(
                    (
                        parworker.MSG_TASK,
                        task_id,
                        kind,
                        entries,
                        task_items,
                        extra,
                        budget_s,
                        obs_on,
                    )
                )
            except (OSError, ValueError):
                self._kill_pool()
                break
            pending[task_id] = start
            self._inflight[task_id] = {
                "worker": worker,
                "seq": seq,
                "kind": kind,
                "items": task_items,
                "extra": extra,
                "budget_s": budget_s,
                "obs_on": obs_on,
            }
            metrics.count("par.tasks")
        deadline_hit = self._collect(pending, chunk, results, metrics)
        for task_id in pending:  # abandoned (pool killed) tasks
            self._inflight.pop(task_id, None)
        return deadline_hit

    def _collect(
        self, pending: dict[int, int], chunk: int, results: list, metrics
    ) -> bool:
        """Drain the result queue for ``pending`` tasks; True on deadline."""
        deadline_hit = False
        span = get_tracer().current()
        stalled_s = 0.0
        while pending and self._started:
            try:
                msg = self._result_queue.get(timeout=self.poll_s)
            except queue_mod.Empty:
                try:
                    check_deadline("par.collect")
                except DeadlineExceeded:
                    # The flow budget ran out while workers stalled:
                    # without this check the poll loop can outlive the
                    # deadline by the full hang timeout.  Abandon the
                    # pool; the caller's serial fallback is
                    # deadline-checked and aborts cleanly.
                    self._kill_pool()
                    deadline_hit = True
                    break
                stalled_s += self.poll_s
                if stalled_s >= 600.0:
                    # Healing exhausted: even respawned workers are not
                    # producing.  Abandon the pool, recompute serially.
                    self._kill_pool()
                    break
                self._heal_suspects(metrics)
                continue
            stalled_s = 0.0
            tag, task_id = msg[0], msg[1]
            start = pending.pop(task_id, None)
            self._inflight.pop(task_id, None)
            if start is None:
                continue  # stale result from an abandoned dispatch
            if tag == parworker.RES_ERR:
                metrics.count("par.worker_failures")
                continue
            _, _, done, wall_s, obs_payload = msg
            for offset, value in enumerate(done):
                results[start + offset] = value
            metrics.observe("par.worker_wall_s", wall_s)
            if obs_payload is not None:
                raw, roots = obs_payload
                metrics.merge_raw(raw)
                if span is not None:
                    span.children.extend(roots)
            if tag == parworker.RES_DEADLINE:
                deadline_hit = True
        return deadline_hit

    # ------------------------------------------------------ serial compute

    def _parent_state(self) -> WorkerState:
        """A WorkerState facade over the live parent router.

        The in-process path and the worker path run the *same* compute
        functions; only the router instance differs.
        """
        state = WorkerState.__new__(WorkerState)
        state.router = self.router
        state.droute = self._droute
        state._estimate_models = self._estimate_models
        state._ecc = None
        return state

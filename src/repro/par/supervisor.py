"""Pool supervision: heartbeat-driven worker liveness detection.

The :class:`PoolSupervisor` is a daemon thread owned by one
:class:`~repro.par.executor.ParallelExecutor`.  It *detects* trouble —
it never heals it.  Each poll it scans the live worker slots and flags
as **suspect** any worker whose process has exited (``died``) or whose
heartbeat slot has gone stale past ``hang_timeout_s`` (``hung``;
workers beat from a dedicated thread, so a long legitimate compute
keeps beating while a deadlocked or frozen process goes silent).

Healing stays on the executor's own thread: the dispatcher drains
:meth:`take_suspects` before enqueueing work and while waiting on the
result queue, then respawns (bounded retries, exponential backoff,
mutation-log replay) or shrinks the pool — see
``ParallelExecutor._heal_suspects``.  Splitting detection from repair
keeps every mutation of pool state single-threaded, so the supervisor
needs no locks beyond the suspect map itself.

Fault site ``par.heartbeat``: fault plans are process-local and cannot
reach a worker, so the injection hook lives in the parent-side scan —
``plan.force("par.heartbeat", w)`` makes worker ``w`` look hung for one
poll, which exercises the whole hang→respawn→replay path without a
real frozen process.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.guard.faults import fault_point
from repro.obs import get_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.par.executor import ParallelExecutor

#: suspicion reasons, in escalation order used by the executor
REASON_DIED = "died"
REASON_HUNG = "hung"
REASON_INJECTED = "injected"


class PoolSupervisor(threading.Thread):
    """Daemon thread that watches one executor's worker pool."""

    def __init__(
        self,
        executor: "ParallelExecutor",
        *,
        poll_s: float = 1.0,
        hang_timeout_s: float = 30.0,
    ) -> None:
        super().__init__(name="repro-par-supervisor", daemon=True)
        self._executor = executor
        self.poll_s = max(0.05, float(poll_s))
        self.hang_timeout_s = float(hang_timeout_s)
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self._suspects: dict[int, str] = {}
        #: workers already counted in ``par.hung_workers`` (one count per
        #: hang episode, not per poll)
        self._counted_hung: set[int] = set()

    # ------------------------------------------------------------ lifecycle

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:  # pragma: no cover - exercised via integration
        while not self._halt.wait(self.poll_s):
            try:
                self.scan()
            except Exception:  # repro: noqa:REPRO-G002 — supervision must outlive any scan hiccup
                get_metrics().count("par.supervisor_faults")

    # ------------------------------------------------------------ detection

    def scan(self) -> None:
        """One liveness pass over the live worker slots."""
        executor = self._executor
        procs = executor._procs
        heartbeats = executor._heartbeats
        if not executor._started or heartbeats is None:
            return
        try:
            forced = fault_point("par.heartbeat")
        except Exception:  # repro: noqa:REPRO-G002 — an armed failure here must not kill supervision
            get_metrics().count("par.supervisor_faults")
            forced = None
        now = time.monotonic()
        metrics = get_metrics()
        for worker in range(len(procs)):
            if not executor._alive[worker]:
                continue
            proc = procs[worker]
            if proc is None:
                continue
            if not proc.is_alive():
                self._flag(worker, REASON_DIED)
            elif now - heartbeats[worker] > self.hang_timeout_s:
                if worker not in self._counted_hung:
                    self._counted_hung.add(worker)
                    metrics.count("par.hung_workers")
                self._flag(worker, REASON_HUNG)
        if forced is not None:
            worker = int(forced)
            if 0 <= worker < len(procs) and executor._alive[worker]:
                metrics.count("par.hung_workers")
                self._flag(worker, REASON_INJECTED)

    def _flag(self, worker: int, reason: str) -> None:
        with self._lock:
            # death outranks staleness; injection outranks both (it must
            # survive the executor's recovered-in-the-meantime recheck)
            current = self._suspects.get(worker)
            if current == REASON_INJECTED:
                return
            if current == REASON_DIED and reason == REASON_HUNG:
                return
            self._suspects[worker] = reason

    # ------------------------------------------------------------- handoff

    def take_suspects(self) -> dict[int, str]:
        """Pop the current suspect map (executor thread, before healing)."""
        with self._lock:
            suspects, self._suspects = self._suspects, {}
            self._counted_hung -= set(suspects)
        return suspects

    def forget(self, worker: int) -> None:
        """Clear any stale suspicion after ``worker`` was healed."""
        with self._lock:
            self._suspects.pop(worker, None)
            self._counted_hung.discard(worker)

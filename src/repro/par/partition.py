"""Spatial conflict partitioner: nets -> non-overlapping batches.

Parallel routing is only deterministic if two nets whose routes can
touch the same GCells never compute concurrently from the same
snapshot *in a different relative order than the serial algorithm*.
The partitioner enforces that with a layered greedy coloring over
expanded GCell regions:

    batch(N) = 1 + max{ batch(M) : M earlier in serial order and
                        region(M) overlaps region(N) }

Walking the nets in canonical serial order and assigning each the
smallest batch index above every earlier overlapping net yields
batches with two properties:

1. **Conflict-free** — nets inside one batch have pairwise disjoint
   regions, so their per-net computations read and write disjoint
   GCell sets and can run in any order (or in parallel) with
   identical results.
2. **Serial precedence** — if region(M) and region(N) overlap and M
   precedes N in serial order, then batch(M) < batch(N): M's result
   is committed before N computes, exactly as in the serial walk.

The overlap test is exact, not pairwise-approximate: a per-GCell
``int32`` array tracks the highest batch index that has claimed each
GCell, so region overlap reduces to a vectorized window max.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: GCells added on every side of a net's terminal bounding box.  One
#: halo cell is enough for pattern routing (routes never leave the
#: terminal bbox; the halo guards the via-delta reads of Eq. 9 at the
#: boundary).  Maze rerouting passes its own margin — see
#: :func:`maze_region`.
DEFAULT_EXPAND = 1


@dataclass(slots=True, frozen=True)
class ParTask:
    """One unit of parallel work: a net and its claimed GCell region."""

    name: str
    index: int  # position in the canonical serial order
    rect: tuple[int, int, int, int]  # inclusive (x0, y0, x1, y1) in gcells


def region_of(
    terminals: list[tuple[int, int, int]],
    nx: int,
    ny: int,
    expand: int = DEFAULT_EXPAND,
) -> tuple[int, int, int, int]:
    """Expanded, clipped GCell bounding box of ``(layer, gx, gy)`` nodes."""
    xs = [t[1] for t in terminals]
    ys = [t[2] for t in terminals]
    return (
        max(0, min(xs) - expand),
        max(0, min(ys) - expand),
        min(nx - 1, max(xs) + expand),
        min(ny - 1, max(ys) + expand),
    )


def union_rect(
    rect: tuple[int, int, int, int], other: tuple[int, int, int, int]
) -> tuple[int, int, int, int]:
    """Smallest rect covering both inputs (both inclusive)."""
    return (
        min(rect[0], other[0]),
        min(rect[1], other[1]),
        max(rect[2], other[2]),
        max(rect[3], other[3]),
    )


def rects_overlap(
    a: tuple[int, int, int, int], b: tuple[int, int, int, int]
) -> bool:
    """True when the two inclusive rects share at least one GCell."""
    return a[0] <= b[2] and b[0] <= a[2] and a[1] <= b[3] and b[1] <= a[3]


def partition(
    tasks: list[ParTask], nx: int, ny: int
) -> list[list[ParTask]]:
    """Group ``tasks`` (already in serial order) into conflict-free batches.

    Pure and deterministic: the batching depends only on the task order
    and rects, never on worker count or timing.
    """
    if not tasks:
        return []
    # claimed[x, y] = highest batch index whose region covers (x, y).
    claimed = np.full((nx, ny), -1, dtype=np.int32)
    batches: list[list[ParTask]] = []
    for task in tasks:
        x0, y0, x1, y1 = task.rect
        window = claimed[x0 : x1 + 1, y0 : y1 + 1]
        batch = int(window.max()) + 1 if window.size else 0
        if batch == len(batches):
            batches.append([])
        batches[batch].append(task)
        np.maximum(window, batch, out=window)
    return batches

"""repro.par — deterministic parallel execution for routing and ECC.

The subsystem splits per-net work into spatially conflict-free batches
(:mod:`repro.par.partition`), runs each batch on a spawn-safe process
pool with bit-identical state replicas (:mod:`repro.par.worker`), and
commits results in canonical net order with conflict re-routing
(:class:`GlobalRouter`'s commit stage) — so ``--workers N`` output is
byte-identical to ``--workers 1`` for any N.

The pool is self-healing: a :class:`PoolSupervisor` daemon thread
watches worker heartbeats, and the executor respawns dead/hung workers
(mutation-log replay, bounded retries with exponential backoff) or
shrinks the rotation before ever falling back to serial execution —
see :mod:`repro.par.supervisor`.
"""

from repro.par.executor import ParallelExecutor
from repro.par.partition import ParTask, partition, region_of
from repro.par.supervisor import PoolSupervisor

__all__ = ("ParallelExecutor", "ParTask", "PoolSupervisor", "partition", "region_of")

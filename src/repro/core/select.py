"""Step 4: Find the Best Candidates by ILP (Eq. 12).

One binary variable per (cell, candidate); exactly one candidate per
cell (Eq. 3); the objective is the summed Algorithm-3 route cost
(Eq. 12).  Candidates of *different* cells whose footprints (the moved
cell plus its conflict relocations) overlap get a mutual-exclusion
constraint so the combined move set stays legal — the per-cell window
legalizer guarantees legality per candidate, the ILP guarantees it
across cells.
"""

from __future__ import annotations

from repro.geom import Rect
from repro.db import Design
from repro.guard.faults import fault_point
from repro.ilp import IlpModel, Sense, solve
from repro.core.candidates import MoveCandidate


def select_moves(
    design: Design,
    candidates: dict[str, list[MoveCandidate]],
    backend: str = "auto",
    budget_s: float | None = None,
) -> dict[str, MoveCandidate]:
    """Pick one candidate per critical cell minimizing total cost."""
    # Fault site: "worst" replaces the ILP with the most expensive
    # choice per cell — a deterministically bad (worsening) move set
    # the iteration guard must catch and roll back.
    if fault_point("crp.select") == "worst":
        return {
            cell_name: max(
                cell_candidates,
                key=lambda c: min(c.route_cost, 1e9),
            )
            for cell_name, cell_candidates in candidates.items()
        }
    model = IlpModel("crp-select")
    var_of: dict[tuple[str, int], int] = {}
    for cell_name, cell_candidates in candidates.items():
        indices: list[int] = []
        for i, candidate in enumerate(cell_candidates):
            cost = candidate.route_cost
            if cost == float("inf"):
                cost = 1e9
            var = model.add_binary(f"y[{cell_name}][{i}]", cost=cost)
            var_of[(cell_name, i)] = var
            indices.append(var)
        model.add_exactly_one(indices, name=f"one[{cell_name}]")

    _add_conflict_constraints(design, candidates, model, var_of)

    solution = solve(model, backend=backend, budget_s=budget_s)
    chosen: dict[str, MoveCandidate] = {}
    if not solution.ok:
        # Infeasibility cannot happen (keep-current is always available
        # and mutually compatible), but fail safe: keep everything put.
        for cell_name, cell_candidates in candidates.items():
            chosen[cell_name] = cell_candidates[0]
        return chosen
    for (cell_name, i), var in var_of.items():
        if solution.values[model.variables[var].name] > 0.5:
            chosen[cell_name] = candidates[cell_name][i]
    return chosen


def _candidate_footprint(
    design: Design, candidate: MoveCandidate
) -> list[Rect]:
    """Outlines this candidate writes: the cell plus conflict cells."""
    rects: list[Rect] = []
    moves = {candidate.cell: candidate.position}
    moves.update(candidate.conflict_moves)
    for name, (x, y, _) in moves.items():
        cell = design.cells[name]
        rects.append(Rect(x, y, x + cell.width, y + cell.height))
    return rects


def _add_conflict_constraints(
    design: Design,
    candidates: dict[str, list[MoveCandidate]],
    model: IlpModel,
    var_of: dict[tuple[str, int], int],
) -> None:
    """Mutual exclusion between overlapping candidates of distinct cells.

    Also excludes pairs that relocate the *same* conflict cell to
    different places, and pairs where one candidate's footprint covers a
    cell another candidate assumes stays put.
    """
    entries: list[tuple[str, int, MoveCandidate, list[Rect], set[str]]] = []
    for cell_name, cell_candidates in candidates.items():
        for i, candidate in enumerate(cell_candidates):
            if candidate.is_current:
                continue
            touched = {candidate.cell} | set(candidate.conflict_moves)
            entries.append(
                (
                    cell_name,
                    i,
                    candidate,
                    _candidate_footprint(design, candidate),
                    touched,
                )
            )
    for a in range(len(entries)):
        name_a, i_a, cand_a, rects_a, touched_a = entries[a]
        for b in range(a + 1, len(entries)):
            name_b, i_b, cand_b, rects_b, touched_b = entries[b]
            if name_a == name_b:
                continue
            incompatible = bool(touched_a & touched_b) or any(
                ra.intersects(rb) for ra in rects_a for rb in rects_b
            )
            if incompatible:
                model.add_constraint(
                    [
                        (var_of[(name_a, i_a)], 1.0),
                        (var_of[(name_b, i_b)], 1.0),
                    ],
                    Sense.LE,
                    1.0,
                    name=f"excl[{name_a}:{i_a}][{name_b}:{i_b}]",
                )

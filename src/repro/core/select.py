"""Step 4: Find the Best Candidates by ILP (Eq. 12).

One binary variable per (cell, candidate); exactly one candidate per
cell (Eq. 3); the objective is the summed Algorithm-3 route cost
(Eq. 12).  Candidates of *different* cells whose footprints (the moved
cell plus its conflict relocations) overlap get a mutual-exclusion
constraint so the combined move set stays legal — the per-cell window
legalizer guarantees legality per candidate, the ILP guarantees it
across cells.
"""

from __future__ import annotations

import numpy as np

from repro.geom import Rect
from repro.db import Design
from repro.guard.faults import fault_point
from repro.ilp import IlpModel, Sense, solve
from repro.core.candidates import MoveCandidate


def select_moves(
    design: Design,
    candidates: dict[str, list[MoveCandidate]],
    backend: str = "auto",
    budget_s: float | None = None,
) -> dict[str, MoveCandidate]:
    """Pick one candidate per critical cell minimizing total cost."""
    # Fault site: "worst" replaces the ILP with the most expensive
    # choice per cell — a deterministically bad (worsening) move set
    # the iteration guard must catch and roll back.
    if fault_point("crp.select") == "worst":
        return {
            cell_name: max(
                cell_candidates,
                key=lambda c: min(c.route_cost, 1e9),
            )
            for cell_name, cell_candidates in candidates.items()
        }
    model = IlpModel("crp-select")
    var_of: dict[tuple[str, int], int] = {}
    for cell_name, cell_candidates in candidates.items():
        indices: list[int] = []
        for i, candidate in enumerate(cell_candidates):
            cost = candidate.route_cost
            if cost == float("inf"):
                cost = 1e9
            var = model.add_binary(f"y[{cell_name}][{i}]", cost=cost)
            var_of[(cell_name, i)] = var
            indices.append(var)
        model.add_exactly_one(indices, name=f"one[{cell_name}]")

    _add_conflict_constraints(design, candidates, model, var_of)

    solution = solve(model, backend=backend, budget_s=budget_s)
    chosen: dict[str, MoveCandidate] = {}
    if not solution.ok:
        # Infeasibility cannot happen (keep-current is always available
        # and mutually compatible), but fail safe: keep everything put.
        for cell_name, cell_candidates in candidates.items():
            chosen[cell_name] = cell_candidates[0]
        return chosen
    for (cell_name, i), var in var_of.items():
        if solution.values[model.variables[var].name] > 0.5:
            chosen[cell_name] = candidates[cell_name][i]
    return chosen


def _candidate_footprint(
    design: Design, candidate: MoveCandidate
) -> list[Rect]:
    """Outlines this candidate writes: the cell plus conflict cells."""
    rects: list[Rect] = []
    moves = {candidate.cell: candidate.position}
    moves.update(candidate.conflict_moves)
    for name, (x, y, _) in moves.items():
        cell = design.cells[name]
        rects.append(Rect(x, y, x + cell.width, y + cell.height))
    return rects


def _add_conflict_constraints(
    design: Design,
    candidates: dict[str, list[MoveCandidate]],
    model: IlpModel,
    var_of: dict[tuple[str, int], int],
) -> None:
    """Mutual exclusion between overlapping candidates of distinct cells.

    Also excludes pairs that relocate the *same* conflict cell to
    different places, and pairs where one candidate's footprint covers a
    cell another candidate assumes stays put.
    """
    entries: list[tuple[str, int, MoveCandidate, list[Rect], set[str]]] = []
    for cell_name, cell_candidates in candidates.items():
        for i, candidate in enumerate(cell_candidates):
            if candidate.is_current:
                continue
            touched = {candidate.cell} | set(candidate.conflict_moves)
            entries.append(
                (
                    cell_name,
                    i,
                    candidate,
                    _candidate_footprint(design, candidate),
                    touched,
                )
            )
    count = len(entries)
    if count < 2:
        return
    # The pairwise test is O(entries^2); screen it with vectorized
    # footprint bounding boxes so the exact (and strict-semantics)
    # Rect.intersects check only runs on spatially colliding pairs.
    # Same incompatibility relation, same (a, b) emission order, so
    # the resulting model is identical row-for-row.
    owner_ids: dict[str, int] = {}
    owner = np.empty(count, dtype=np.intp)
    blx = np.empty(count, dtype=np.int64)
    bly = np.empty(count, dtype=np.int64)
    bux = np.empty(count, dtype=np.int64)
    buy = np.empty(count, dtype=np.int64)
    for idx, (cell_name, _i, _cand, rects, _touched) in enumerate(entries):
        owner[idx] = owner_ids.setdefault(cell_name, len(owner_ids))
        blx[idx] = min(r.lx for r in rects)
        bly[idx] = min(r.ly for r in rects)
        bux[idx] = max(r.ux for r in rects)
        buy[idx] = max(r.uy for r in rects)
    distinct = owner[:, None] != owner[None, :]
    # strict-overlap test on bounding boxes: a superset of any-rect
    # overlap (every footprint rect lies inside its bbox)
    bbox = (
        (blx[:, None] < bux[None, :])
        & (blx[None, :] < bux[:, None])
        & (bly[:, None] < buy[None, :])
        & (bly[None, :] < buy[:, None])
    )
    incompatible = np.zeros((count, count), dtype=bool)
    touching: dict[str, list[int]] = {}
    for idx, entry in enumerate(entries):
        for name in entry[4]:
            touching.setdefault(name, []).append(idx)
    for ids in touching.values():
        if len(ids) > 1:
            hit = np.asarray(ids, dtype=np.intp)
            incompatible[np.ix_(hit, hit)] = True
    survivors = np.triu(bbox & distinct & ~incompatible, k=1)
    for a, b in zip(*np.nonzero(survivors)):
        rects_a = entries[a][3]
        rects_b = entries[b][3]
        if any(ra.intersects(rb) for ra in rects_a for rb in rects_b):
            incompatible[a, b] = True
    emit = np.triu(incompatible & distinct, k=1)
    for a in range(count):
        name_a, i_a = entries[a][0], entries[a][1]
        for b in np.nonzero(emit[a])[0]:
            name_b, i_b = entries[b][0], entries[b][1]
            model.add_constraint(
                [
                    (var_of[(name_a, i_a)], 1.0),
                    (var_of[(name_b, i_b)], 1.0),
                ],
                Sense.LE,
                1.0,
                name=f"excl[{name_a}:{i_a}][{name_b}:{i_b}]",
            )

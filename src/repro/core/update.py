"""Step 5: Update Database.

Applies the selected moves, records move history (for Algorithm 1's
annealing term), and rips up and reroutes every net touching a moved
cell so the global-routing solution, demand maps, and via counts stay
consistent (the paper reroutes with the global router after movement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import Design
from repro.groute import GlobalRouter
from repro.guard.faults import fault_point
from repro.core.candidates import MoveCandidate


@dataclass(slots=True)
class UpdateStats:
    """What an Update-Database step changed."""

    moved_cells: list[str] = field(default_factory=list)
    rerouted_nets: list[str] = field(default_factory=list)
    total_displacement: int = 0


def apply_moves(
    design: Design,
    router: GlobalRouter,
    chosen: dict[str, MoveCandidate],
) -> UpdateStats:
    """Move cells, track history, reroute dirty nets."""
    stats = UpdateStats()
    for cell_name, candidate in chosen.items():
        if candidate.is_current:
            continue
        moves = {candidate.cell: candidate.position}
        moves.update(candidate.conflict_moves)
        for name, (x, y, orient) in moves.items():
            cell = design.cells[name]
            if (cell.x, cell.y) == (x, y) and cell.orient == orient:
                continue
            stats.total_displacement += abs(cell.x - x) + abs(cell.y - y)
            design.move_cell(name, x, y, orient)
            stats.moved_cells.append(name)
    design.moved_history.update(stats.moved_cells)
    if stats.moved_cells:
        # Fault site between the move and the reroute: a failure here
        # leaves moved cells with stale routes, the exact mid-update
        # state the iteration transaction must be able to roll back.
        fault_point("crp.update.reroute")
        stats.rerouted_nets = router.dirty_nets_for_cells(stats.moved_cells)
        router.reroute_nets(stats.rerouted_nets)
    return stats

"""Step 2: Generate Candidate Positions (Algorithm 2).

Each critical cell keeps its current position as the fallback candidate
(worst case: nothing moves) and receives legalized alternatives from the
ILP-based window legalizer, each possibly carrying compensating moves
for displaced neighbour ("conflict") cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom import Orientation
from repro.db import Design
from repro.legalizer import WindowLegalizer
from repro.core.config import CrpConfig


@dataclass(slots=True)
class MoveCandidate:
    """One placement candidate of a critical cell.

    ``conflict_moves`` are the neighbour relocations this candidate
    requires (empty for the keep-current candidate); ``route_cost`` is
    filled by the estimation step (Algorithm 3).
    """

    cell: str
    position: tuple[int, int, Orientation]
    conflict_moves: dict[str, tuple[int, int, Orientation]] = field(
        default_factory=dict
    )
    displacement: float = 0.0
    route_cost: float = float("inf")

    @property
    def is_current(self) -> bool:
        return not self.conflict_moves and abs(self.displacement) <= 1e-9


def generate_candidates(
    design: Design,
    critical_cells: list[str],
    config: CrpConfig,
) -> dict[str, list[MoveCandidate]]:
    """Candidate positions per critical cell (Algorithm 2, lines 1-10)."""
    legalizer = WindowLegalizer(
        design,
        n_sites=config.n_sites,
        n_rows=config.n_rows,
        max_cells=config.max_cells,
        max_targets=config.max_targets,
        backend=config.ilp_backend,
        ilp_budget_s=config.ilp_budget_s,
        fast=config.use_fast_ecc,
    )
    result: dict[str, list[MoveCandidate]] = {}
    for name in critical_cells:
        cell = design.cells[name]
        candidates = [
            MoveCandidate(
                cell=name,
                position=(cell.x, cell.y, cell.orient),
                displacement=0.0,
            )
        ]
        for legalized in legalizer.run(name):
            candidates.append(
                MoveCandidate(
                    cell=name,
                    position=legalized.position,
                    conflict_moves=dict(legalized.conflict_moves),
                    displacement=legalized.displacement,
                )
            )
        result[name] = candidates
    if legalizer.fast:
        legalizer.publish_metrics()
    return result

"""The paper's contribution: the CR&P framework (Section IV).

Five steps per iteration, between global and detailed routing:

1. **Label Critical Cells** (Algorithm 1) — rank cells by the Eq. 10
   cost of their nets' global routes; accept with a simulated-annealing
   probability damped by selection/move history.
2. **Generate Candidate Positions** (Algorithm 2) — the ILP-based window
   legalizer proposes legalized positions for each critical cell plus
   compensating moves for displaced neighbours.
3. **Candidate Cost Estimation** (Algorithm 3) — each candidate is
   scored by FLUTE + 3D pattern routing of the cell's nets.
4. **Select** (Eq. 12) — an ILP picks one candidate per cell minimizing
   total estimated route cost, with mutual-exclusion constraints between
   spatially conflicting candidates.
5. **Update Database** — cells move, dirty nets are ripped up and
   rerouted, congestion maps refresh.
"""

from repro.core.config import CrpConfig
from repro.core.labeling import label_critical_cells
from repro.core.candidates import MoveCandidate, generate_candidates
from repro.core.estimate import estimate_candidate_cost
from repro.core.select import select_moves
from repro.core.update import apply_moves
from repro.core.crp import CrpFramework, CrpResult, IterationStats

__all__ = [
    "CrpConfig",
    "label_critical_cells",
    "MoveCandidate",
    "generate_candidates",
    "estimate_candidate_cost",
    "select_moves",
    "apply_moves",
    "CrpFramework",
    "CrpResult",
    "IterationStats",
]

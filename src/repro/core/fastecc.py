"""Iteration-scoped ECC pricing cache (the fast Algorithm 3 kernel).

:class:`EccCache` amortizes the three repeated computations of the
candidate-cost estimation step across every candidate of one CR&P
iteration:

* **fixed terminals** — the (layer, gx, gy) node of every pin whose
  cell is *not* virtually moved is a pure function of the committed
  placement, so it is derived once per net instead of once per
  candidate (and once per overridden ``(cell, pin, position)``);
* **RSMT topology** — ``build_rsmt`` is deterministic in its input
  point order, so trees are memoized on the ordered terminal tuple;
* **segment pricing** — the best pattern-path cost of a tree edge
  depends only on its endpoints and terminal layers (the demand state
  is frozen during the read-only ECC step), so each distinct segment is
  priced once, through a batched numpy DP whose every float64 operation
  mirrors :meth:`PatternRouter3D.route_cost` operation-for-operation.

Bit-parity contract: a cache hit returns the exact float the uncached
:func:`repro.core.estimate.estimate_net_cost` would compute, and a miss
computes it with the same IEEE operations in the same order (the
vectorized DP applies the scalar recurrence elementwise; ``min`` over
an axis is a selection, not a reduction-order-dependent sum).  The
cache holds no routing state of its own, so its lifetime must not span
a demand or placement mutation — CR&P builds one per iteration, and
``repro.par`` workers key theirs by dispatch epoch and drop it on any
mutation-log replay.

Invalidation rule: none within a lifetime, by construction — the ECC
step is a pure read of the routing state.  Anything that mutates demand
or cell positions (Update-Database, guard rollback, RRR) happens
outside the step, after which the cache is discarded.
"""

from __future__ import annotations

import numpy as np

from repro.geom import Orientation, Point
from repro.db import Design, Net
from repro.flute import build_rsmt
from repro.groute.patterns import pattern_paths_2d, runs_of_path
from repro.obs import get_metrics

Node = tuple[int, int, int]

_MISS = object()


class EccCache:
    """Per-iteration memo of terminal lists, RSMTs, and segment prices."""

    __slots__ = ("_fixed", "_onodes", "_trees", "_segments", "hits", "misses")

    def __init__(self) -> None:
        #: net name -> [(pin, fixed node)] in pin order
        self._fixed: dict[str, list[tuple[object, Node]]] = {}
        #: (cell, pin, x, y, orient) -> node of a virtually-moved pin
        self._onodes: dict[tuple, Node] = {}
        #: ordered (x, y) terminal tuple -> RSMT
        self._trees: dict[tuple, object] = {}
        #: (ax, ay, bx, by, src_layer, dst_layer) -> best path cost
        self._segments: dict[tuple, float | None] = {}
        self.hits = 0
        self.misses = 0

    # -------------------------------------------------------------- pricing

    def net_cost(
        self,
        design: Design,
        router,
        net: Net,
        overrides: dict[str, tuple[int, int, Orientation]],
    ) -> float:
        """Cached twin of :func:`repro.core.estimate.estimate_net_cost`."""
        terminals = self._terminals(design, router, net, overrides)
        if len(terminals) < 2:
            return 0.0
        points_key = tuple((t[1], t[2]) for t in terminals)
        tree = self._trees.get(points_key)
        if tree is None:
            self.misses += 1
            tree = build_rsmt([Point(t[1], t[2]) for t in terminals])
            self._trees[points_key] = tree
        else:
            self.hits += 1
        layer_at: dict[tuple[int, int], int] = {}
        for layer, gx, gy in terminals:
            layer_at.setdefault((gx, gy), layer)

        total = 0.0
        min_wire = router.graph.min_wire_layer
        segments = self._segments
        for a, b in tree.edges:
            pa, pb = tree.points[a], tree.points[b]
            src_layer = layer_at.get((pa.x, pa.y))
            if src_layer is None:
                src_layer = min_wire
            dst_layer = layer_at.get((pb.x, pb.y))
            key = (pa.x, pa.y, pb.x, pb.y, src_layer, dst_layer)
            best = segments.get(key, _MISS)
            if best is _MISS:
                self.misses += 1
                best = _price_segment(
                    router.pattern3d, (pa.x, pa.y), (pb.x, pb.y),
                    src_layer, dst_layer,
                )
                segments[key] = best
            else:
                self.hits += 1
            if best is not None:
                total += best
        return total

    def _terminals(
        self,
        design: Design,
        router,
        net: Net,
        overrides: dict[str, tuple[int, int, Orientation]],
    ) -> list[Node]:
        """Distinct terminal nodes, fixed pins served from the memo."""
        fixed = self._fixed.get(net.name)
        if fixed is None:
            self.misses += 1
            fixed = []
            grid = router.grid
            for pin in net.pins:
                point = design.pin_point(pin)
                layer = design.pin_layer(pin)
                gx, gy = grid.gcell_of(point)
                fixed.append((pin, (layer, gx, gy)))
            self._fixed[net.name] = fixed
        else:
            self.hits += 1
        nodes: list[Node] = []
        seen: set[Node] = set()
        for pin, fixed_node in fixed:
            if pin.cell is not None and pin.cell in overrides:
                node = self._overridden(design, router, pin, overrides[pin.cell])
            else:
                node = fixed_node
            if node not in seen:
                seen.add(node)
                nodes.append(node)
        return nodes

    def _overridden(
        self,
        design: Design,
        router,
        pin,
        position: tuple[int, int, Orientation],
    ) -> Node:
        key = (pin.cell, pin.pin, position[0], position[1], position[2])
        node = self._onodes.get(key)
        if node is None:
            from repro.core.estimate import overridden_node

            self.misses += 1
            node = overridden_node(design, router, pin, position)
            self._onodes[key] = node
        else:
            self.hits += 1
        return node

    # -------------------------------------------------------------- metrics

    def publish_metrics(self) -> None:
        """Flush hit/miss tallies as ``crp.ecc_cache_*`` metric deltas."""
        metrics = get_metrics()
        if not metrics.recording:
            return
        metrics.count("crp.ecc_cache_hits", self.hits)
        metrics.count("crp.ecc_cache_misses", self.misses)
        self.hits = 0
        self.misses = 0


def _price_segment(
    p3d, a: tuple[int, int], b: tuple[int, int],
    src_layer: int, dst_layer: int | None,
) -> float | None:
    """Best ``route_cost`` over the pattern paths of one segment.

    With a cost field attached, all runs of all candidate paths are
    gathered into one :meth:`CostField.run_cost_batch` call per
    direction and the layer-assignment DP runs vectorized over layers;
    without a field it defers to the scalar oracle path.  Either way
    the returned float is bit-identical to the per-path
    ``route_cost``/strict-``<`` scan of the uncached estimator.
    """
    field = p3d.field
    if field is None:
        best = None
        for path in pattern_paths_2d(a, b):
            cost = p3d.route_cost(path, src_layer, dst_layer)
            if cost is None:
                continue
            if best is None or cost < best:
                best = cost
        return best

    field.ensure()
    via_w = p3d.cost.params.via_weight
    paths = pattern_paths_2d(a, b)
    runs_by_path = [runs_of_path(path) for path in paths]

    # Distinct runs per direction -> one batched prefix gather each.
    h_index: dict[tuple[int, int, int], int] = {}
    v_index: dict[tuple[int, int, int], int] = {}
    for runs in runs_by_path:
        for (x0, y0), (x1, y1) in runs:
            if y0 == y1:
                key = (min(x0, x1), max(x0, x1), y0)
                h_index.setdefault(key, len(h_index))
            else:
                key = (min(y0, y1), max(y0, y1), x0)
                v_index.setdefault(key, len(v_index))
    layers_h = p3d._dir_layers[True]
    layers_v = p3d._dir_layers[False]
    costs_h = (
        field.run_cost_batch(layers_h, list(h_index))
        if h_index and layers_h
        else None
    )
    costs_v = (
        field.run_cost_batch(layers_v, list(v_index))
        if v_index and layers_v
        else None
    )
    arr_h = np.asarray(layers_h, dtype=np.int64)
    arr_v = np.asarray(layers_v, dtype=np.int64)

    best_cost: float | None = None
    for runs in runs_by_path:
        if not runs:
            end = dst_layer if dst_layer is not None else src_layer
            cost = via_w * abs(end - src_layer)
        else:
            cost = _dp_path(
                runs, src_layer, dst_layer, via_w,
                arr_h, costs_h, h_index, arr_v, costs_v, v_index,
            )
        if cost is None:
            continue
        if best_cost is None or cost < best_cost:
            best_cost = cost
    return best_cost


def _dp_path(
    runs, src_layer, dst_layer, via_w,
    arr_h, costs_h, h_index, arr_v, costs_v, v_index,
) -> float | None:
    """Vectorized twin of ``PatternRouter3D._layer_dp`` + the final min.

    Elementwise replication of the scalar recurrence:
    ``best0 = rc0 + via_w*|L - src|`` then
    ``best = min_p(best[p] + via_w*|L - p|) + rc_i`` per run, and the
    terminal ``min(best + via_w*|L - dst|)``.  ``min`` selects one of
    the scalar candidates, so no float association changes.
    """
    layers_prev = None
    best = None
    for (x0, y0), (x1, y1) in runs:
        if y0 == y1:
            if costs_h is None:
                return None
            layers_cur = arr_h
            rc = costs_h[:, h_index[(min(x0, x1), max(x0, x1), y0)]]
        else:
            if costs_v is None:
                return None
            layers_cur = arr_v
            rc = costs_v[:, v_index[(min(y0, y1), max(y0, y1), x0)]]
        if best is None:
            best = rc + via_w * np.abs(layers_cur - src_layer)
        else:
            trans = best[:, None] + via_w * np.abs(
                layers_cur[None, :] - layers_prev[:, None]
            )
            best = trans.min(axis=0) + rc
        layers_prev = layers_cur
    if dst_layer is None:
        return float(best.min())
    return float((best + via_w * np.abs(layers_prev - dst_layer)).min())

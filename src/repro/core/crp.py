"""The CR&P iteration driver.

Runs the five-step loop ``k`` times between global routing and detailed
routing.  Each step runs inside a ``repro.obs`` span (``crp.label``,
``crp.GCP``, ``crp.ECC``, ``crp.ILP``, ``crp.UD`` under a
``crp.iteration`` parent), and ``IterationStats.runtime`` is populated
from those span wall times — one source of truth for the Fig. 3
runtime breakdown (GCP / ECC / ILP / UD).

Iterations are transactional (``repro.guard``): the Update-Database
step runs against a snapshot of the cells and routes it may touch, and
any exception or post-step invariant violation (illegal placement,
demand-accounting drift, route cost regressing beyond
``GuardPolicy.cost_tolerance``) rolls the iteration back — the design
is never left worse than before the iteration started.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.guard import (
    DeadlineExceeded,
    GuardPolicy,
    IterationTransaction,
    iteration_violations,
)
from repro.obs import ensure_tracer, get_metrics

from repro.db import Design
from repro.groute import GlobalRouter
from repro.core.candidates import generate_candidates
from repro.core.config import CrpConfig
from repro.core.estimate import estimate_candidate_cost
from repro.core.labeling import label_critical_cells
from repro.core.select import select_moves
from repro.core.update import UpdateStats, apply_moves


@dataclass(slots=True)
class IterationStats:
    """Numbers and timings of one CR&P iteration."""

    iteration: int
    num_critical: int = 0
    num_candidates: int = 0
    num_moved: int = 0
    num_rerouted: int = 0
    displacement: int = 0
    #: per-step wall clock (seconds); keys are the Fig. 3 labels
    runtime: dict[str, float] = field(default_factory=dict)
    #: True when the guard rolled this iteration back
    rolled_back: bool = False
    #: invariant violations (or the exception) that caused the rollback
    rollback_reasons: list[str] = field(default_factory=list)

    @property
    def total_runtime(self) -> float:
        return sum(self.runtime.values())


@dataclass(slots=True)
class CrpResult:
    """Aggregate outcome of a CR&P run."""

    iterations: list[IterationStats] = field(default_factory=list)

    @property
    def total_moved(self) -> int:
        return sum(s.num_moved for s in self.iterations)

    @property
    def rollbacks(self) -> int:
        return sum(1 for s in self.iterations if s.rolled_back)

    @property
    def total_runtime(self) -> float:
        return sum(s.total_runtime for s in self.iterations)

    def runtime_breakdown(self) -> dict[str, float]:
        """Summed per-step runtime over all iterations (Fig. 3 input)."""
        totals: dict[str, float] = {}
        for stats in self.iterations:
            for step, seconds in stats.runtime.items():
                totals[step] = totals.get(step, 0.0) + seconds
        return totals


class CrpFramework:
    """Co-operation between Routing and Placement.

    Construct with a design and a *routed* :class:`GlobalRouter`
    (``route_all`` already run), then call :meth:`run`.
    """

    def __init__(
        self,
        design: Design,
        router: GlobalRouter,
        config: CrpConfig | None = None,
        guard: GuardPolicy | None = None,
    ) -> None:
        self.design = design
        self.router = router
        self.config = config or CrpConfig()
        self.config.validate()
        self.guard = guard or GuardPolicy()
        self._rng = random.Random(self.config.seed)
        # Incremental accounting is router state (it listens to commit
        # and rip-up); match it to the config so a use_fast_ecc=False
        # framework prices through the genuinely-uncached oracle even
        # on a router a fast framework touched before.
        router.enable_incremental_cost(self.config.use_fast_ecc)
        # Ablation support: estimate candidate costs congestion-blind
        # (use_penalty=False) while the router itself keeps its model.
        # The cost field must be swapped together with the scalar model,
        # otherwise a field-equipped pattern router would keep pricing
        # with the penalty-on maps.
        self._estimate_cost_model = router.cost
        self._estimate_field = router.field
        if not self.config.use_penalty:
            from repro.grid import CostField, CostModel, CostParams

            params = CostParams(
                wire_weight=router.cost.params.wire_weight,
                via_weight=router.cost.params.via_weight,
                slope=router.cost.params.slope,
                use_penalty=False,
            )
            self._estimate_cost_model = CostModel(router.graph, params)
            self._estimate_field = (
                CostField(router.graph, params)
                if router.field is not None
                else None
            )

    def run(
        self,
        iterations: int = 1,
        start: int = 0,
        on_iteration=None,
    ) -> CrpResult:
        """Execute ``k`` CR&P iterations (the paper reports k=1 and 10).

        CR&P is an improvement loop, so a wall-clock deadline expiring
        mid-run stops iterating (counting ``crp.deadline_stops``) and
        returns the iterations that completed, rather than raising.

        ``start`` skips the first iterations (checkpoint resume: the
        state they produced was already restored), and ``on_iteration``
        — called as ``on_iteration(index, stats)`` after each completed
        iteration — is where ``repro.ckpt`` writes its iteration-
        boundary checkpoints.
        """
        result = CrpResult()
        for k in range(start, iterations):
            try:
                result.iterations.append(self.run_iteration(k))
            except DeadlineExceeded:
                get_metrics().count("crp.deadline_stops")
                break
            if on_iteration is not None:
                on_iteration(k, result.iterations[-1])
        return result

    # ------------------------------------------------------ checkpoint hooks

    def rng_state(self) -> object:
        """The simulated-annealing RNG state (checkpoint payload)."""
        return self._rng.getstate()

    def set_rng_state(self, state: object) -> None:
        """Restore the RNG mid-stream so resumed labeling draws the
        exact numbers the interrupted run would have drawn."""
        self._rng.setstate(state)

    def run_until_converged(
        self,
        max_iterations: int = 20,
        min_gain: float = 0.001,
        patience: int = 2,
    ) -> CrpResult:
        """Iterate until the total route cost stops improving.

        The paper notes the loop "can be continued to satisfy expected
        requirements"; this is that mode.  Stops after ``patience``
        consecutive iterations whose relative total-route-cost gain is
        below ``min_gain``, or at ``max_iterations``.
        """
        result = CrpResult()
        stale = 0
        # One total per pass: the post-iteration total doubles as the
        # next iteration's guard pre-cost (nothing mutates in between),
        # so each pass pays a single scan instead of two.
        previous = self._total_route_cost()
        for k in range(max_iterations):
            try:
                result.iterations.append(self.run_iteration(k, pre_cost=previous))
            except DeadlineExceeded:
                get_metrics().count("crp.deadline_stops")
                break
            current = self._total_route_cost()
            gain = (previous - current) / previous if previous > 0 else 0.0
            previous = current
            if gain < min_gain:
                stale += 1
                if stale >= patience:
                    break
            else:
                stale = 0
        return result

    def _total_route_cost(self) -> float:
        # Canonical-order re-sum keeps the total bit-identical to the
        # uncached scan; with the NetCostCache on, only dirty nets pay
        # a fresh path_cost walk.
        return sum(
            self.router.net_cost(name)
            for name in self.design.nets  # repro: noqa:REPRO-P002 — canonical-order re-sum over O(dirty) cached per-net values; the scan itself is the deliverable
        )

    def run_iteration(
        self, index: int = 0, pre_cost: float | None = None
    ) -> IterationStats:
        """One pass of the five CR&P steps, each under its own span.

        ``pre_cost`` lets a driver that already knows the current total
        route cost (``run_until_converged`` measures it after every
        iteration) hand it in instead of paying a second scan.
        """
        stats = IterationStats(iteration=index)
        config = self.config
        if pre_cost is None:
            pre_cost = (
                self._total_route_cost() if self.guard.transactional else 0.0
            )
        with ensure_tracer() as tracer, tracer.span(
            "crp.iteration", k=index
        ):
            with tracer.span("crp.label") as sp:
                critical = label_critical_cells(
                    self.design, self.router, config, self._rng
                )
            stats.runtime["label"] = sp.wall_s
            stats.num_critical = len(critical)

            with tracer.span("crp.GCP") as sp:
                candidates = generate_candidates(self.design, critical, config)
            stats.runtime["GCP"] = sp.wall_s
            stats.num_candidates = sum(len(c) for c in candidates.values())

            with tracer.span("crp.ECC") as sp:
                executor = self.router.executor
                if executor is not None:
                    flat = [
                        candidate
                        for cell_candidates in candidates.values()
                        for candidate in cell_candidates
                    ]
                    with tracer.span("par.route", stage="estimate"):
                        costs = executor.run_estimates(
                            flat,
                            config.use_penalty,
                            use_cache=config.use_fast_ecc,
                        )
                    for candidate, cost in zip(flat, costs):
                        candidate.route_cost = cost
                else:
                    cache = None
                    if config.use_fast_ecc:
                        from repro.core.fastecc import EccCache

                        cache = EccCache()
                    with self.router.pattern3d.using(
                        self._estimate_cost_model, self._estimate_field
                    ):
                        for cell_candidates in candidates.values():
                            for candidate in cell_candidates:
                                candidate.route_cost = estimate_candidate_cost(
                                    self.design,
                                    self.router,
                                    candidate,
                                    cache=cache,
                                )
                    if cache is not None:
                        cache.publish_metrics()
            stats.runtime["ECC"] = sp.wall_s

            with tracer.span("crp.ILP") as sp:
                chosen = select_moves(
                    self.design,
                    candidates,
                    backend=config.ilp_backend,
                    budget_s=config.ilp_budget_s,
                )
            stats.runtime["ILP"] = sp.wall_s

            with tracer.span("crp.UD") as sp:
                update = self._apply_update(chosen, pre_cost, stats)
            stats.runtime["UD"] = sp.wall_s
        stats.num_moved = len(update.moved_cells)
        stats.num_rerouted = len(update.rerouted_nets)
        stats.displacement = update.total_displacement

        metrics = get_metrics()
        if self.router.cost_cache is not None:
            self.router.cost_cache.publish_metrics()
        if stats.rolled_back:
            metrics.count("guard.rollbacks")
        metrics.count("crp.iterations")
        metrics.count("crp.critical_cells", stats.num_critical)
        metrics.count("crp.candidates", stats.num_candidates)
        metrics.count("crp.cells_moved", stats.num_moved)
        metrics.count("crp.rerouted_nets", stats.num_rerouted)
        metrics.observe("crp.displacement_dbu", stats.displacement)
        return stats

    def _apply_update(
        self,
        chosen: dict,
        pre_cost: float,
        stats: IterationStats,
    ) -> UpdateStats:
        """Run Update-Database transactionally (unless the guard is off).

        An exception mid-update or a post-update invariant violation
        restores the snapshot and reports an empty update, so a bad
        iteration is a no-op rather than a corruption.
        """
        if not self.guard.transactional:
            return apply_moves(self.design, self.router, chosen)
        txn = IterationTransaction.capture(self.design, self.router, chosen)
        try:
            update = apply_moves(self.design, self.router, chosen)
        except DeadlineExceeded:
            # Restore consistency, then let the driver stop the loop.
            txn.rollback()
            stats.rolled_back = True
            stats.rollback_reasons = ["deadline expired mid-update"]
            raise
        except Exception as exc:  # noqa: BLE001 — rollback then degrade
            txn.rollback()
            stats.rolled_back = True
            stats.rollback_reasons = [f"{type(exc).__name__}: {exc}"]
            return UpdateStats()
        violations = iteration_violations(
            self.design, self.router, pre_cost, self.guard.cost_tolerance
        )
        if violations:
            txn.rollback()
            stats.rolled_back = True
            stats.rollback_reasons = violations
            return UpdateStats()
        return update

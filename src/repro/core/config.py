"""CR&P configuration (the paper's tuned constants as defaults)."""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(slots=True)
class CrpConfig:
    """Knobs of the CR&P framework.

    Defaults are the values the paper reports: ``gamma = 0.6`` (fraction
    of cells eligible for movement per iteration), window legalizer with
    ``|sites| = 20``, ``|rows| = 5``, ``|cells| <= 3``, simulated-
    annealing temperature 1 (so re-selecting an already-critical cell
    has probability ``exp(-1)`` ~ 36% and an already-moved one
    ``exp(-2)`` ~ 13%).

    ``use_penalty`` and ``prioritize`` exist for the ablation studies:
    disabling them reproduces the two modeling choices the paper credits
    for beating the state of the art [18].
    """

    gamma: float = 0.6
    temperature: float = 1.0
    n_sites: int = 20
    n_rows: int = 5
    max_cells: int = 3
    #: legalized candidates requested per critical cell
    max_targets: int = 6
    #: RNG seed for the simulated-annealing acceptance test
    seed: int = 0
    #: include the congestion penalty in movement cost estimation
    use_penalty: bool = True
    #: order cells by routed-net cost (False = arbitrary order, like [18])
    prioritize: bool = True
    #: incremental CR&P iteration kernel: iteration-scoped ECC pricing
    #: cache, O(dirty-nets) running route-cost accounting, and the
    #: window-ILP memo + specialized exact solver in the GCP step.
    #: Bit-identical to the uncached paths by construction; ``False``
    #: keeps the full-recompute oracle live for the parity suite.
    use_fast_ecc: bool = True
    #: ILP backend for legalizer and selection
    ilp_backend: str = "auto"
    #: wall-clock budget per ILP solve (None = unbounded); on expiry the
    #: guard ladder degrades to the greedy backend instead of hanging
    ilp_budget_s: float | None = None
    #: cap on critical cells per iteration (keeps runtime bounded)
    max_critical_cells: int = 200
    #: parallel workers for global routing, candidate estimation, and
    #: the detailed-routing first pass.  ``None`` keeps the classic
    #: serial walk; ``1`` runs the batched parallel pipeline in-process
    #: (the parity baseline); ``N > 1`` adds a process pool.  Defaults
    #: from the ``CRP_WORKERS`` env var so CI can exercise the parallel
    #: path without touching call sites.
    workers: int | None = None
    #: directory for ``repro.ckpt`` stage/iteration checkpoints.  ``None``
    #: disables checkpointing; excluded from the checkpoint fingerprint
    #: (it cannot change results).  Defaults from ``CRP_CHECKPOINT_DIR``.
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_dir is None:
            env_dir = os.environ.get("CRP_CHECKPOINT_DIR", "").strip()
            if env_dir:
                self.checkpoint_dir = env_dir
        if self.workers is None:
            env = os.environ.get("CRP_WORKERS", "").strip()
            if env:
                try:
                    self.workers = int(env)
                except ValueError as exc:
                    raise ValueError(
                        f"CRP_WORKERS must be an integer, got {env!r}"
                    ) from exc

    def validate(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.n_sites < 2 or self.n_rows < 1 or self.max_cells < 1:
            raise ValueError("degenerate legalizer window")
        if self.ilp_budget_s is not None and self.ilp_budget_s < 0:
            raise ValueError("ilp_budget_s must be non-negative")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

"""Step 1: Label Critical Cells (Algorithm 1).

Cells are sorted by the Eq. 10 cost of their nets' current global
routes, so cells sitting on expensive (congested, via-heavy) routes come
first.  A cell is skipped when a connected cell is already critical
(moving both endpoints of a net in one iteration would invalidate the
cost estimates).  Cells that were selected or moved in earlier
iterations are damped by the simulated-annealing acceptance test
``exp(-(hist_c + hist_m) / T) > random()``, which keeps the framework
from hammering the same congested neighbourhood every iteration.
"""

from __future__ import annotations

import math
import random

from repro.db import Design
from repro.groute import GlobalRouter
from repro.core.config import CrpConfig


def label_critical_cells(
    design: Design,
    router: GlobalRouter,
    config: CrpConfig,
    rng: random.Random,
) -> list[str]:
    """Select this iteration's critical cells (Algorithm 1)."""
    movable = [c.name for c in design.cells.values() if not c.fixed]
    if config.prioritize:
        cost_of = {name: router.cell_cost(name) for name in movable}
        movable.sort(key=lambda name: (-cost_of[name], name))
    limit = min(
        config.max_critical_cells,
        int(config.gamma * len(movable)),
    )

    critical: list[str] = []
    critical_set: set[str] = set()
    for name in movable:
        if len(critical) >= limit:
            break
        connected = design.connected_cells(name)
        if connected & critical_set:
            continue
        hist_c = 1 if name in design.critical_history else 0
        hist_m = 1 if name in design.moved_history else 0
        acceptance = math.exp(-(hist_c + hist_m) / config.temperature)
        if acceptance > rng.random():
            critical.append(name)
            critical_set.add(name)
    design.critical_history.update(critical)
    return critical

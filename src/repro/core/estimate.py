"""Step 3: Candidate Position Cost Estimation (Algorithm 3).

For every candidate position of a critical cell, the cell's nets are
re-planned *virtually*: terminal positions are recomputed with the cell
(and its conflict cells) at the candidate location, decomposed by FLUTE,
and priced by the 3D pattern router under the current demand state —
without committing anything to the routing graph.  Per the paper, only
one cell per net moves in an iteration, so the other terminals stay
where the committed routes put them.
"""

from __future__ import annotations

from repro.geom import Orientation, Point, Rect
from repro.db import Design, Net
from repro.flute import build_rsmt
from repro.groute import GlobalRouter
from repro.groute.patterns import pattern_paths_2d
from repro.core.candidates import MoveCandidate

Node = tuple[int, int, int]


def estimate_candidate_cost(
    design: Design,
    router: GlobalRouter,
    candidate: MoveCandidate,
    include_conflicts: bool = False,
    cache: "object | None" = None,
) -> float:
    """Eq. 10 route cost of the candidate's cell nets (Algorithm 3).

    ``include_conflicts`` extends the estimate to the conflict cells'
    nets as well; the paper's Algorithm 3 prices only the critical
    cell's own nets (the legalizer already minimized the conflict
    displacement), so the default stays faithful.

    ``cache`` is an optional :class:`repro.core.fastecc.EccCache`;
    pricing through it is bit-identical to the uncached path (same
    terminal walk, same RSMT, same DP float operations in the same
    order) but amortizes terminal derivation, tree topology, and
    pattern pricing across the candidates of one iteration.
    """
    overrides: dict[str, tuple[int, int, Orientation]] = {
        candidate.cell: candidate.position
    }
    if candidate.conflict_moves:
        overrides.update(candidate.conflict_moves)

    nets = list(design.nets_of_cell(candidate.cell))
    if include_conflicts:
        seen = {net.name for net in nets}
        for conflict_cell in candidate.conflict_moves:
            for net in design.nets_of_cell(conflict_cell):
                if net.name not in seen:
                    seen.add(net.name)
                    nets.append(net)

    total = 0.0
    for net in nets:
        total += estimate_net_cost(design, router, net, overrides, cache)
    return total


def estimate_net_cost(
    design: Design,
    router: GlobalRouter,
    net: Net,
    overrides: dict[str, tuple[int, int, Orientation]],
    cache: "object | None" = None,
) -> float:
    """Virtual FLUTE + 3D-pattern-route cost of one net (uncommitted)."""
    if cache is not None:
        return cache.net_cost(design, router, net, overrides)
    terminals = _terminals_with_overrides(design, router, net, overrides)
    if len(terminals) < 2:
        return 0.0
    points = [Point(t[1], t[2]) for t in terminals]
    tree = build_rsmt(points)
    layer_at: dict[tuple[int, int], int] = {}
    for layer, gx, gy in terminals:
        layer_at.setdefault((gx, gy), layer)

    total = 0.0
    for a, b in tree.edges:
        pa, pb = tree.points[a], tree.points[b]
        src_layer = layer_at.get((pa.x, pa.y))
        dst_layer = layer_at.get((pb.x, pb.y))
        best = None
        for path in pattern_paths_2d((pa.x, pa.y), (pb.x, pb.y)):
            # DP cost only — candidate pricing never needs the edge
            # lists, and with a cost field each run is two prefix
            # lookups, making this the cheapest query in the loop.
            cost = router.pattern3d.route_cost(
                path,
                src_layer if src_layer is not None else router.graph.min_wire_layer,
                dst_layer,
            )
            if cost is None:
                continue
            if best is None or cost < best:
                best = cost
        if best is not None:
            total += best
    return total


def _terminals_with_overrides(
    design: Design,
    router: GlobalRouter,
    net: Net,
    overrides: dict[str, tuple[int, int, Orientation]],
) -> list[Node]:
    """Distinct terminal nodes with some cells virtually relocated."""
    nodes: list[Node] = []
    seen: set[Node] = set()
    for pin in net.pins:
        if pin.cell is not None and pin.cell in overrides:
            node = overridden_node(design, router, pin, overrides[pin.cell])
        else:
            point = design.pin_point(pin)
            layer = design.pin_layer(pin)
            gx, gy = router.grid.gcell_of(point)
            node = (layer, gx, gy)
        if node not in seen:
            seen.add(node)
            nodes.append(node)
    return nodes


def overridden_node(
    design: Design,
    router: GlobalRouter,
    pin,
    position: tuple[int, int, Orientation],
) -> Node:
    """Terminal node of one pin with its cell virtually at ``position``."""
    cell = design.cells[pin.cell]
    x, y, orient = position
    macro_pin = cell.macro.pin(pin.pin)
    shapes = macro_pin.placed_shapes(
        x, y, orient, cell.macro.width, cell.macro.height
    )
    point = Rect.bounding([s.rect for s in shapes]).center
    layer = min(s.layer for s in shapes) if shapes else 0
    gx, gy = router.grid.gcell_of(point)
    return (layer, gx, gy)

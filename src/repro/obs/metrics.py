"""Thread-safe metrics registry: counters, gauges, histograms.

Counters accumulate (``groute.ripup_nets``), gauges keep the last value
(``flow.gr_overflow``), histograms keep exact count/sum/min/max plus a
bounded reservoir for p50/p95 (``droute.astar_expansions``,
``ilp.solve_ms``).  Names follow the same ``<layer>.<event>`` convention
as spans.

Like the tracer, the process-wide default is a :class:`NoopMetrics`
whose mutators are empty methods, so hot paths pay ~nothing when
observability is off.  Instrumented code should aggregate locally and
record once per call (e.g. count A* expansions in a local and
``observe()`` the total), never inside inner loops.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

#: histogram reservoir bound; count/sum/min/max stay exact beyond it
RESERVOIR_SIZE = 4096


class _Histogram:
    __slots__ = ("count", "total", "min", "max", "values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.values: list[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.values) < RESERVOIR_SIZE:
            self.values.append(value)
        else:
            # Deterministic decimating reservoir: overwrite round-robin.
            self.values[self.count % RESERVOIR_SIZE] = value

    def percentile(self, q: float) -> float:
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
        }


class MetricsRegistry:
    """Mutable metric store; every mutator takes the registry lock."""

    recording = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------- mutators

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            hist.add(value)

    def observe_many(self, name: str, values: list[float]) -> None:
        """Record a batch of samples into histogram ``name``.

        One lock acquisition and one series lookup for the whole batch —
        hot loops accumulate locally and flush here instead of paying a
        registry round-trip per sample (see ``droute``'s A* stats).
        """
        if not values:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            for value in values:
                hist.add(value)

    # -------------------------------------------------------------- queries

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Immutable JSON-able view: counters, gauges, histogram stats."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in self._histograms.items()
                },
            }

    # ----------------------------------------------------- cross-process

    def raw(self) -> dict[str, dict[str, object]]:
        """Mergeable (picklable) view: counters, gauges, histogram samples.

        Unlike :meth:`snapshot`, histograms are exported as their raw
        reservoir samples so another registry can re-``observe()`` them
        without distorting percentiles.  This is how worker processes
        ship their metrics back to the parent (``repro.par``).
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: list(hist.values)
                    for name, hist in self._histograms.items()
                },
            }

    def merge_raw(self, raw: dict[str, dict[str, object]]) -> None:
        """Fold a :meth:`raw` export into this registry.

        Counters add, gauges take the incoming value, histogram samples
        are re-observed.  Deterministic given a deterministic merge
        order (the parallel executor merges task results in task order).
        """
        for name, value in raw.get("counters", {}).items():
            self.count(name, value)
        for name, value in raw.get("gauges", {}).items():
            self.gauge(name, value)
        for name, values in raw.get("histograms", {}).items():
            for value in values:
                self.observe(name, value)


class NoopMetrics(MetricsRegistry):
    """Discards everything; the process-wide default."""

    recording = False

    def __init__(self) -> None:  # no lock/state
        pass

    def count(self, name: str, n: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def observe_many(self, name: str, values: list[float]) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0.0

    def snapshot(self) -> dict[str, dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def raw(self) -> dict[str, dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_raw(self, raw: dict[str, dict[str, object]]) -> None:
        pass


NOOP_METRICS = NoopMetrics()
_active_metrics: MetricsRegistry = NOOP_METRICS
_install_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The ambient registry (a shared :data:`NOOP_METRICS` by default)."""
    return _active_metrics


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (or the no-op default); returns the prior one."""
    global _active_metrics
    with _install_lock:
        previous = _active_metrics
        _active_metrics = registry if registry is not None else NOOP_METRICS
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the scope of the ``with`` block."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)

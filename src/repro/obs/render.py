"""Human-readable rendering: the ``--profile`` tree and metrics tables.

Sibling spans with the same name are aggregated into one line with a
multiplicity marker (``ilp.solve x37``) so a k=10 CR&P run stays a
readable page instead of thousands of lines.
"""

from __future__ import annotations

from repro.obs.spans import Span


def _aggregate(children: list[Span]) -> list[tuple[str, int, float, float, list[Span]]]:
    """Group sibling spans by name: (name, count, wall, cpu, members)."""
    order: list[str] = []
    groups: dict[str, list[Span]] = {}
    for child in children:
        if child.name not in groups:
            order.append(child.name)
            groups[child.name] = []
        groups[child.name].append(child)
    out = []
    for name in order:
        members = groups[name]
        out.append((
            name,
            len(members),
            sum(s.wall_s for s in members),
            sum(s.cpu_s for s in members),
            members,
        ))
    return out


def render_tree(span: Span, max_depth: int = 6) -> str:
    """ASCII profile tree of one span (wall, cpu, % of parent)."""
    lines: list[str] = []
    width = 44

    def emit(label: str, wall: float, cpu: float, parent_wall: float,
             indent: str) -> None:
        pct = f"{100.0 * wall / parent_wall:5.1f}%" if parent_wall > 0 else "      "
        lines.append(
            f"{(indent + label):<{width}} {wall * 1000.0:>10.1f} ms "
            f"{cpu * 1000.0:>10.1f} ms  {pct}"
        )

    header = f"{'span':<{width}} {'wall':>13} {'cpu':>13}  parent%"
    lines.append(header)
    lines.append("-" * len(header))
    emit(span.name, span.wall_s, span.cpu_s, 0.0, "")

    def recurse(parent: Span, indent: str, depth: int) -> None:
        if depth >= max_depth:
            return
        groups = _aggregate(parent.children)
        for index, (name, count, wall, cpu, members) in enumerate(groups):
            last = index == len(groups) - 1
            branch = "`- " if last else "|- "
            label = name if count == 1 else f"{name} x{count}"
            emit(label, wall, cpu, parent.wall_s, indent + branch)
            # Recurse into the merged children of all members so repeated
            # stages (crp.iteration x10) still show their inner breakdown.
            merged = Span(name=name, wall_s=wall)
            for member in members:
                merged.children.extend(member.children)
            recurse(merged, indent + ("   " if last else "|  "), depth + 1)

    recurse(span, "", 1)
    return "\n".join(lines)


def render_metrics(snapshot: dict[str, dict[str, object]]) -> str:
    """Counters, gauges and histogram stats as aligned text tables."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters")
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<36} {shown:>12}")
    if gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<36} {gauges[name]:>12.3f}")
    if histograms:
        lines.append(
            f"  {'histogram':<36} {'count':>8} {'mean':>10} {'p50':>10} "
            f"{'p95':>10} {'max':>10}"
        )
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<36} {h['count']:>8} {h['mean']:>10.1f} "
                f"{h['p50']:>10.1f} {h['p95']:>10.1f} {h['max']:>10.1f}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"

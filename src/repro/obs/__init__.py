"""``repro.obs`` — tracing, metrics & profiling for the whole flow.

Zero-dependency observability with three pillars:

* **Spans** (:mod:`repro.obs.tracer`): hierarchical wall+CPU timing via
  ``tracer.span("flow.GR")`` context managers or ``@traced``; the
  process default is a no-op tracer so instrumentation is ~free when
  off.
* **Metrics** (:mod:`repro.obs.metrics`): thread-safe counters, gauges
  and p50/p95 histograms (``groute.maze_fallbacks``, ``ilp.solve_ms``).
* **Exporters** (:mod:`repro.obs.export`, :mod:`repro.obs.render`,
  :mod:`repro.obs.profile`): JSON trace files, flat ``BENCH_``-style
  summaries, and the human ``--profile`` tree.

Span and metric names follow ``<layer>.<event>`` — see README.md
("Observability") for the convention.
"""

from repro.obs.spans import Span
from repro.obs.tracer import (
    NOOP_TRACER,
    NoopTracer,
    Tracer,
    ensure_tracer,
    get_tracer,
    set_tracer,
    traced,
    use_tracer,
)
from repro.obs.metrics import (
    NOOP_METRICS,
    MetricsRegistry,
    NoopMetrics,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.session import Observation, ensure_observation, observe
from repro.obs.export import (
    bench_summary,
    load_trace_document,
    span_from_dict,
    span_to_dict,
    trace_document,
    write_trace,
)
from repro.obs.render import render_metrics, render_tree
from repro.obs.profile import ProfileReport, profile_flow, write_bench_obs

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "ensure_tracer",
    "traced",
    "MetricsRegistry",
    "NoopMetrics",
    "NOOP_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "Observation",
    "observe",
    "ensure_observation",
    "span_to_dict",
    "span_from_dict",
    "trace_document",
    "load_trace_document",
    "write_trace",
    "bench_summary",
    "render_tree",
    "render_metrics",
    "ProfileReport",
    "profile_flow",
    "write_bench_obs",
]

"""Observation sessions: turn tracing + metrics on for a scope.

``observe()`` is the user-facing switch::

    from repro.obs import observe

    with observe() as obs:
        result = run_flow(design, mode="crp")
    print(obs.tracer.roots[0].name)        # "flow.run"
    print(obs.metrics.snapshot()["counters"])

``ensure_observation()`` is the driver-facing variant used by
``run_flow``: it reuses a recording ambient session when one is active
(so flows nest under a caller's ``observe()``), otherwise it installs a
fresh private session so every ``FlowResult`` carries a trace and a
metrics snapshot even with global observability off.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, get_metrics, use_metrics
from repro.obs.tracer import Tracer, get_tracer, use_tracer


@dataclass(slots=True)
class Observation:
    """A live (tracer, metrics) pair."""

    tracer: Tracer
    metrics: MetricsRegistry


@contextmanager
def observe() -> Iterator[Observation]:
    """Install a fresh recording tracer + registry for the scope."""
    with use_tracer(Tracer()) as tracer, use_metrics(MetricsRegistry()) as metrics:
        yield Observation(tracer=tracer, metrics=metrics)


@contextmanager
def ensure_observation() -> Iterator[Observation]:
    """Yield a *recording* observation, reusing the ambient one if live.

    Note that with a reused ambient session the metrics registry is
    shared: snapshots taken at flow end are cumulative across every
    flow run inside the same ``observe()`` block.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    if tracer.recording and metrics.recording:
        yield Observation(tracer=tracer, metrics=metrics)
        return
    if tracer.recording:
        with use_metrics(MetricsRegistry()) as metrics:
            yield Observation(tracer=tracer, metrics=metrics)
        return
    if metrics.recording:
        with use_tracer(Tracer()) as tracer:
            yield Observation(tracer=tracer, metrics=metrics)
        return
    with observe() as obs:
        yield obs

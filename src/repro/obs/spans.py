"""Span tree primitives for the observability subsystem.

A :class:`Span` is one timed region of the flow — a stage, an iteration,
a solver call — with wall-clock and CPU (thread) time plus arbitrary
metadata.  Spans nest: the tracer links each span under the span that
was open on the same thread when it started, so a finished root span is
a tree mirroring the call structure (``flow.run`` -> ``flow.GR`` ->
``groute.rrr`` -> ...).

Names follow the ``<layer>.<event>`` convention (``flow.GR``,
``crp.ECC``, ``ilp.solve``) so exports stay greppable across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(slots=True)
class Span:
    """One timed region; ``wall_s``/``cpu_s`` are final once closed."""

    name: str
    meta: dict[str, object] = field(default_factory=dict)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    children: list["Span"] = field(default_factory=list)
    #: perf_counter offset from the tracer epoch (for timeline exports)
    start_s: float = 0.0

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total(self, name: str) -> float:
        """Summed wall time of every descendant (or self) named ``name``."""
        return sum(s.wall_s for s in self.walk() if s.name == name)

    def child_walls(self) -> dict[str, float]:
        """Direct children's wall time summed per span name."""
        walls: dict[str, float] = {}
        for child in self.children:
            walls[child.name] = walls.get(child.name, 0.0) + child.wall_s
        return walls

    @property
    def self_wall_s(self) -> float:
        """Wall time not covered by direct children (the span's own work)."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

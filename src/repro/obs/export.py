"""Exporters: JSON span trees and flat ``BENCH_``-style summaries.

The trace document is self-describing (``schema`` key) and round-trips
through :func:`span_to_dict` / :func:`span_from_dict`, so downstream
tooling (and the test suite) can reload a committed ``BENCH_obs.json``
and compare span trees across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.spans import Span

SCHEMA = "repro.obs/1"


def span_to_dict(span: Span) -> dict[str, object]:
    """Nested JSON-able dict for one span tree."""
    out: dict[str, object] = {
        "name": span.name,
        "wall_s": span.wall_s,
        "cpu_s": span.cpu_s,
        "start_s": span.start_s,
    }
    if span.meta:
        out["meta"] = dict(span.meta)
    if span.children:
        out["children"] = [span_to_dict(c) for c in span.children]
    return out


def span_from_dict(data: dict[str, object]) -> Span:
    """Inverse of :func:`span_to_dict`."""
    return Span(
        name=str(data["name"]),
        wall_s=float(data.get("wall_s", 0.0)),
        cpu_s=float(data.get("cpu_s", 0.0)),
        start_s=float(data.get("start_s", 0.0)),
        meta=dict(data.get("meta", {})),  # type: ignore[arg-type]
        children=[span_from_dict(c) for c in data.get("children", ())],  # type: ignore[union-attr]
    )


def trace_document(
    spans: list[Span],
    metrics: dict[str, dict[str, object]] | None = None,
    extra: dict[str, object] | None = None,
) -> dict[str, object]:
    """Assemble the full trace-file payload."""
    doc: dict[str, object] = {"schema": SCHEMA}
    if extra:
        doc.update(extra)
    doc["trace"] = [span_to_dict(s) for s in spans]
    if metrics is not None:
        doc["metrics"] = metrics
    return doc


def load_trace_document(path: str | Path) -> tuple[list[Span], dict[str, object]]:
    """Read a trace file back as (root spans, whole document)."""
    doc = json.loads(Path(path).read_text())
    spans = [span_from_dict(d) for d in doc.get("trace", ())]
    return spans, doc


def write_trace(
    path: str | Path,
    spans: list[Span],
    metrics: dict[str, dict[str, object]] | None = None,
    extra: dict[str, object] | None = None,
) -> Path:
    """Write the JSON trace document atomically; returns the path written."""
    # Function-level import: repro.ckpt builds on repro.obs, so a
    # module-level import here would be a cycle.
    from repro.ckpt.atomic import atomic_write

    path = Path(path)
    atomic_write(path, json.dumps(trace_document(spans, metrics, extra), indent=1))
    return path


def flat_spans(span: Span, prefix: str = "") -> dict[str, float]:
    """Flatten a tree to ``{"flow.run/flow.GR": wall_s, ...}``.

    Sibling spans sharing a name (e.g. repeated ``ilp.solve`` calls)
    are summed, which keeps the flat summary stable across runs whose
    call counts differ.
    """
    key = f"{prefix}/{span.name}" if prefix else span.name
    out = {key: span.wall_s}
    for child in span.children:
        for k, v in flat_spans(child, key).items():
            out[k] = out.get(k, 0.0) + v
    return out


def bench_summary(span: Span) -> dict[str, float]:
    """Flat ``BENCH_``-compatible dict: dotted span path -> seconds."""
    return {k: round(v, 6) for k, v in flat_spans(span).items()}

"""Hierarchical span tracer with a zero-cost disabled mode.

Two tracer flavours share one interface:

* :class:`Tracer` — records :class:`~repro.obs.spans.Span` trees.  Open
  spans live on a per-thread stack (``threading.local``) so concurrent
  threads build independent trees; finished root spans are appended to
  a lock-protected list.
* :class:`NoopTracer` — the process-wide default.  Its ``span()``
  returns one shared inert context manager, so instrumented code costs
  a dict-free attribute lookup and nothing else when tracing is off.

Instrumented library code reads the ambient tracer via
:func:`get_tracer` at call time.  Drivers that must always produce
timings (``run_flow``, ``CrpFramework.run_iteration``) wrap themselves
in :func:`ensure_tracer`, which reuses a recording ambient tracer or
installs a fresh private one for the scope.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.spans import Span


class _SpanHandle:
    """Context manager for one open span on the calling thread."""

    __slots__ = ("_tracer", "_span", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        stack.append(self._span)
        self._span.start_s = time.perf_counter() - self._tracer.epoch
        self._wall0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.wall_s = time.perf_counter() - self._wall0
        span.cpu_s = time.thread_time() - self._cpu0
        tracer = self._tracer
        stack = tracer._stack()
        # The span may not be stack top if user code misnests handles;
        # recover by popping through it rather than corrupting the tree.
        while stack and stack.pop() is not span:
            pass
        if stack:
            stack[-1].children.append(span)
        else:
            with tracer._lock:
                tracer.roots.append(span)
        return False


class Tracer:
    """Records nested spans; safe for concurrent use across threads."""

    recording = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **meta: object) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("flow.GR") as sp:``."""
        return _SpanHandle(self, Span(name=name, meta=dict(meta)))

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def total(self, name: str) -> float:
        """Summed wall time of ``name`` across all finished root trees."""
        with self._lock:
            roots = list(self.roots)
        return sum(root.total(name) for root in roots)


class _NoopHandle:
    """Shared inert span handle — the cost of tracing when it is off."""

    __slots__ = ()
    _span = Span(name="noop")

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_HANDLE = _NoopHandle()


class NoopTracer(Tracer):
    """Discards everything; the process-wide default."""

    recording = False

    def __init__(self) -> None:  # no epoch/lock/local state needed
        self.roots = []

    def span(self, name: str, **meta: object) -> _NoopHandle:  # type: ignore[override]
        return _NOOP_HANDLE

    def current(self) -> Span | None:
        return None

    def total(self, name: str) -> float:
        return 0.0


NOOP_TRACER = NoopTracer()
_active_tracer: Tracer = NOOP_TRACER
_install_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The ambient tracer (a shared :data:`NOOP_TRACER` by default)."""
    return _active_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (or the no-op default) globally; returns prior."""
    global _active_tracer
    with _install_lock:
        previous = _active_tracer
        _active_tracer = tracer if tracer is not None else NOOP_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the scope of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def ensure_tracer() -> Iterator[Tracer]:
    """Yield a *recording* tracer: the ambient one, or a fresh private one.

    Drivers whose results must always carry timings (``FlowResult.runtime``,
    ``IterationStats.runtime``) use this so they record even when global
    tracing is off, while still attaching to an enclosing observation
    when one is active.
    """
    tracer = get_tracer()
    if tracer.recording:
        yield tracer
        return
    with use_tracer(Tracer()) as tracer:
        yield tracer


def traced(name: str | None = None) -> Callable:
    """Decorator: run the function inside a span on the ambient tracer.

    ``@traced()`` uses ``<module-tail>.<qualname>``; pass ``name`` to
    follow the ``<layer>.<event>`` convention explicitly.
    """

    def decorate(func: Callable) -> Callable:
        span_name = name or (
            f"{func.__module__.rsplit('.', 1)[-1]}.{func.__qualname__}"
        )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with get_tracer().span(span_name):
                return func(*args, **kwargs)

        return wrapper

    return decorate

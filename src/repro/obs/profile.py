"""Flow profiling: run a benchmark under observation, export BENCH_obs.

This is the library behind ``crp profile <design>``.  Each design gets
a fresh observation session so its metrics snapshot is per-design, and
the emitted document records the stage runtimes straight from the flow
trace so ``BENCH_obs.json`` agrees with ``FlowResult.runtime`` by
construction.

Imports of ``repro.flow``/``repro.benchgen`` are deferred into the
functions: those packages are themselves instrumented with ``repro.obs``
and importing them at module scope would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.obs.export import bench_summary, span_to_dict, write_trace
from repro.obs.render import render_metrics, render_tree
from repro.obs.session import observe
from repro.obs.spans import Span


@dataclass(slots=True)
class ProfileReport:
    """One design's profiled flow run."""

    design: str
    mode: str
    iterations: int
    trace: Span
    metrics: dict[str, dict[str, object]]
    runtime: dict[str, float]
    breakdown_pct: dict[str, float] | None
    summary_line: str
    failed: bool = False
    legal: bool = True

    def document(self) -> dict[str, object]:
        """JSON-able per-design record for ``BENCH_obs.json``."""
        doc: dict[str, object] = {
            "design": self.design,
            "mode": self.mode,
            "iterations": self.iterations,
            "failed": self.failed,
            "legal": self.legal,
            "runtime_s": {k: round(v, 6) for k, v in self.runtime.items()},
            "total_runtime_s": round(sum(self.runtime.values()), 6),
            "spans": bench_summary(self.trace),
            "metrics": self.metrics,
            "trace": span_to_dict(self.trace),
        }
        if self.breakdown_pct is not None:
            doc["fig3_breakdown_pct"] = {
                k: round(v, 3) for k, v in self.breakdown_pct.items()
            }
        return doc

    def render(self) -> str:
        """The human ``--profile`` report: span tree + metrics tables."""
        return "\n".join(
            (self.summary_line, "", render_tree(self.trace), "",
             render_metrics(self.metrics))
        )


def profile_flow(
    design_name: str,
    mode: str = "crp",
    iterations: int = 1,
    skip_detailed: bool = False,
) -> ProfileReport:
    """Run one flow under a fresh observation and package the evidence."""
    from repro.benchgen import make_design
    from repro.flow.pipeline import run_flow
    from repro.flow.runtime import runtime_breakdown_pct

    design = make_design(design_name)
    with observe():
        result = run_flow(
            design,
            mode=mode,
            crp_iterations=iterations,
            skip_detailed=skip_detailed,
        )
    assert result.trace is not None  # run_flow always records
    breakdown = None
    if result.crp is not None:
        breakdown = runtime_breakdown_pct(result)
    return ProfileReport(
        design=design_name,
        mode=mode,
        iterations=iterations,
        trace=result.trace,
        metrics=result.metrics or {},
        runtime=dict(result.runtime),
        breakdown_pct=breakdown,
        summary_line=result.summary(),
        failed=result.failed,
        legal=result.legal,
    )


def write_bench_obs(
    reports: list[ProfileReport], path: str | Path = "BENCH_obs.json"
) -> Path:
    """Write the multi-design ``BENCH_obs.json`` document atomically."""
    import json

    from repro.ckpt.atomic import atomic_write

    path = Path(path)
    doc = {
        "schema": "repro.obs/bench-1",
        "designs": [r.document() for r in reports],
    }
    atomic_write(path, json.dumps(doc, indent=1))
    return path


__all__ = ["ProfileReport", "profile_flow", "write_bench_obs", "write_trace"]

"""Median (optimal-region) targets for cell movement.

The legalizer cost (Eq. 11) pulls each cell toward its *median
position*: the coordinate-wise median of the other terminals of its
nets, which is the classic detailed-placement optimal region.
"""

from __future__ import annotations

from repro.geom import Point
from repro.db import Design


def median_position(design: Design, cell_name: str) -> Point:
    """Optimal-region center for ``cell_name``.

    Collects the locations of every terminal on the cell's nets except
    the terminals on the cell itself, and returns the coordinate-wise
    median.  Falls back to the cell's current center when it has no
    external connections.
    """
    cell = design.cells[cell_name]
    xs: list[int] = []
    ys: list[int] = []
    for net in design.nets_of_cell(cell_name):
        for pin in net.pins:
            if pin.cell == cell_name:
                continue
            point = design.pin_point(pin)
            xs.append(point.x)
            ys.append(point.y)
    if not xs:
        return cell.center
    xs.sort()
    ys.sort()
    return Point(xs[len(xs) // 2], ys[len(ys) // 2])

"""Greedy (Tetris-style) full-design legalizer.

Cells are processed left-to-right; each is snapped to the nearest free
span of sites over all rows, minimizing displacement.  Quality is modest
but the result is always legal — it seeds the flows and tests that need
a legal starting placement.
"""

from __future__ import annotations

import numpy as np

from repro.geom import Rect
from repro.db import Design


def tetris_legalize(design: Design) -> int:
    """Legalize all movable cells in place; returns total displacement.

    Raises ``RuntimeError`` when some cell cannot be placed (the design
    is over-full).
    """
    rows = design.rows
    if not rows:
        raise ValueError("design has no rows")
    free: list[np.ndarray] = [np.ones(row.num_sites, dtype=bool) for row in rows]

    for row_index, row in enumerate(rows):
        band = row.bbox()
        blocked = [b.rect for b in design.placement_blockages()] + [
            design.cells[name].bbox()
            for name in design.spatial.query(band)
            if design.cells[name].fixed
        ]
        for box in blocked:
            overlap = box.intersection(band)
            if overlap is None or overlap.width == 0 or overlap.height == 0:
                continue
            s0 = max(0, (overlap.lx - row.origin_x) // row.site.width)
            s1 = min(row.num_sites, -(-(overlap.ux - row.origin_x) // row.site.width))
            free[row_index][s0:s1] = False

    movable = sorted(
        (c for c in design.cells.values() if not c.fixed), key=lambda c: (c.x, c.y)
    )
    total_displacement = 0
    for cell in movable:
        placement = _best_slot(design, free, cell)
        if placement is None:
            raise RuntimeError(f"tetris: no room for cell {cell.name}")
        row_index, site_index, width_sites = placement
        row = rows[row_index]
        x = row.site_x(site_index)
        y = row.origin_y
        total_displacement += abs(cell.x - x) + abs(cell.y - y)
        design.move_cell(cell.name, x, y, row.orient)
        free[row_index][site_index : site_index + width_sites] = False
    return total_displacement


def _best_slot(design: Design, free: list[np.ndarray], cell):
    """Nearest free span of sites for ``cell`` over all rows."""
    best: tuple[int, int, int] | None = None
    best_cost = float("inf")
    for row_index, row in enumerate(design.rows):
        width_sites = max(1, -(-cell.width // row.site.width))
        if width_sites > row.num_sites:
            continue
        y_cost = abs(cell.y - row.origin_y)
        if y_cost >= best_cost:
            continue
        spans = _free_spans(free[row_index], width_sites)
        if not spans:
            continue
        want = round((cell.x - row.origin_x) / row.site.width)
        for span_start, span_end in spans:
            site = max(span_start, min(span_end - width_sites, want))
            cost = abs(site - want) * row.site.width + y_cost
            if cost < best_cost:
                best_cost = cost
                best = (row_index, site, width_sites)
    return best


def _free_spans(free: np.ndarray, min_len: int) -> list[tuple[int, int]]:
    """Maximal runs of True at least ``min_len`` long, as (start, end)."""
    spans: list[tuple[int, int]] = []
    start: int | None = None
    for i, ok in enumerate(free):
        if ok and start is None:
            start = i
        elif not ok and start is not None:
            if i - start >= min_len:
                spans.append((start, i))
            start = None
    if start is not None and len(free) - start >= min_len:
        spans.append((start, len(free)))
    return spans

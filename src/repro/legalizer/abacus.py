"""Abacus-style row legalizer.

Cells are assigned to their nearest row, then each row is legalized by
the Abacus cluster-collapse dynamic program: cells are inserted in x
order and overlapping runs are merged into clusters placed at their
weighted-mean optimal position, clamped into the row.  This gives much
lower displacement than Tetris and is used when a high-quality initial
legalization matters (the synthetic benchmarks are generated legal, so
this is a substrate for experiments and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import Design, Row


@dataclass(slots=True)
class _Cluster:
    """A maximal run of abutted cells in one row."""

    x: float = 0.0
    total_weight: float = 0.0
    total_width: int = 0
    q: float = 0.0
    cells: list[str] = field(default_factory=list)

    def add_cell(self, name: str, desired_x: float, width: int, weight: float) -> None:
        self.cells.append(name)
        self.q += weight * (desired_x - self.total_width)
        self.total_weight += weight
        self.total_width += width

    def merge(self, other: "_Cluster") -> None:
        self.q += other.q - other.total_weight * self.total_width
        self.total_weight += other.total_weight
        self.cells.extend(other.cells)
        self.total_width += other.total_width

    def optimal_x(self) -> float:
        if self.total_weight == 0:
            return self.x
        return self.q / self.total_weight


def abacus_legalize(design: Design) -> int:
    """Legalize all movable cells; returns total displacement in DBU."""
    if not design.rows:
        raise ValueError("design has no rows")
    assignment: dict[int, list[str]] = {i: [] for i in range(len(design.rows))}
    free_width = [row.num_sites * row.site.width for row in design.rows]
    for row_index, row in enumerate(design.rows):
        for other in design.cells.values():
            if other.fixed and other.bbox().intersects(row.bbox()):
                overlap = other.bbox().intersection(row.bbox())
                if overlap is not None:
                    free_width[row_index] -= overlap.width
    movable = sorted(
        (c for c in design.cells.values() if not c.fixed),
        key=lambda c: (c.x, c.name),
    )
    for cell in movable:
        rows_by_distance = sorted(
            range(len(design.rows)),
            key=lambda i: (abs(design.rows[i].origin_y - cell.y), i),
        )
        placed = False
        for row_index in rows_by_distance:
            if free_width[row_index] >= cell.width:
                assignment[row_index].append(cell.name)
                free_width[row_index] -= cell.width
                placed = True
                break
        if not placed:
            raise RuntimeError(f"abacus: no row capacity for {cell.name}")

    displacement = 0
    for row_index, names in assignment.items():
        row = design.rows[row_index]
        names.sort(key=lambda n: design.cells[n].x)
        placed = _legalize_row(design, row, names)
        for name, x in placed.items():
            cell = design.cells[name]
            displacement += abs(cell.x - x) + abs(cell.y - row.origin_y)
            design.move_cell(name, x, row.origin_y, row.orient)
    return displacement


def _legalize_row(design: Design, row: Row, names: list[str]) -> dict[str, int]:
    """Abacus cluster collapse for one row; returns cell -> x."""
    clusters: list[_Cluster] = []
    row_lx = row.origin_x
    row_ux = row.end_x

    for name in names:
        cell = design.cells[name]
        cluster = _Cluster(x=float(cell.x))
        cluster.add_cell(name, float(cell.x), cell.width, weight=1.0)
        clusters.append(cluster)
        _collapse(clusters, row_lx, row_ux)

    result: dict[str, int] = {}
    for cluster in clusters:
        x = cluster.x
        for name in cluster.cells:
            snapped = row.snap_x(int(round(x)))
            # ensure monotone non-overlapping placement after snapping
            if result:
                prev_name = next(reversed(result))
                prev_cell = design.cells[prev_name]
                min_x = result[prev_name] + prev_cell.width
                if snapped < min_x:
                    snapped = row.snap_x(min_x)
                    if snapped < min_x:
                        snapped += row.site.width
            result[name] = snapped
            x = snapped + design.cells[name].width
    # Backward clamp: nothing may stick out past the row end (possible
    # after snapping in a tightly packed row); capacity-checked
    # assignment guarantees this pass always succeeds.
    limit = row_ux
    for name in reversed(result):
        width = design.cells[name].width
        if result[name] + width > limit:
            over = result[name] + width - limit
            sites = -(-over // row.site.width)
            result[name] -= sites * row.site.width
        limit = result[name]
    return result


def _collapse(clusters: list[_Cluster], row_lx: int, row_ux: int) -> None:
    """Place the last cluster optimally; merge while it overlaps its left."""
    cluster = clusters[-1]
    cluster.x = min(
        max(cluster.optimal_x(), float(row_lx)),
        float(row_ux - cluster.total_width),
    )
    while len(clusters) > 1:
        prev = clusters[-2]
        if prev.x + prev.total_width <= cluster.x:
            break
        prev.merge(cluster)
        clusters.pop()
        cluster = prev
        cluster.x = min(
            max(cluster.optimal_x(), float(row_lx)),
            float(row_ux - cluster.total_width),
        )

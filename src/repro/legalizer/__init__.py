"""Placement legalizers.

* :class:`WindowLegalizer` — the paper's ILP-based local legalizer
  (Section IV.B.2, Eq. 11): generates multiple legalized candidate
  positions for a critical cell inside an ``N_site`` x ``N_row`` window.
* :func:`tetris_legalize` — greedy full-design legalizer (initial
  placement cleanup).
* :func:`abacus_legalize` — row-based least-squares legalizer for
  higher-quality initial legalization.
"""

from repro.legalizer.window import LegalizedCandidate, WindowLegalizer
from repro.legalizer.tetris import tetris_legalize
from repro.legalizer.abacus import abacus_legalize

__all__ = [
    "WindowLegalizer",
    "LegalizedCandidate",
    "tetris_legalize",
    "abacus_legalize",
]

"""The ILP-based window legalizer (Section IV.B.2, Eq. 11).

Given a critical cell ``c``, the legalizer considers a local window of
``n_rows`` rows by ``n_sites`` sites centered on ``c``.  Up to
``max_cells`` cells (``c`` plus its nearest movable neighbours in the
window) may move; everything else is an obstacle.  For each enumerated
target position of ``c`` an ILP places the remaining movable cells on
free sites minimizing displacement toward their median positions
(Eq. 11), yielding one *legalized candidate*: a new position for ``c``
plus the compensating moves of the conflict cells.

The paper's defaults — ``|cells| = 3``, ``|sites| = 20``, ``|rows| = 5``
— are the constructor defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geom import Orientation, Point, Rect
from repro.db import Design, Row
from repro.ilp import IlpModel, Sense, solve
from repro.legalizer.median import median_position


@dataclass(slots=True)
class LegalizedCandidate:
    """One legalized outcome of moving a critical cell.

    ``position`` is the critical cell's new placement;
    ``conflict_moves`` maps each displaced neighbour to its new legal
    placement; ``displacement`` is the Eq. 11 objective value.
    """

    cell: str
    position: tuple[int, int, Orientation]
    conflict_moves: dict[str, tuple[int, int, Orientation]] = field(
        default_factory=dict
    )
    displacement: float = 0.0

    @property
    def is_current(self) -> bool:
        return not self.conflict_moves and abs(self.displacement) <= 1e-9


@dataclass(slots=True)
class _WindowRow:
    """One row's slice of the legalization window."""

    row: Row
    first_site: int
    num_sites: int
    free: np.ndarray  # bool per site in the window slice

    def site_x(self, local_site: int) -> int:
        return self.row.site_x(self.first_site + local_site)


class WindowLegalizer:
    """Generates legalized candidate positions for critical cells."""

    def __init__(
        self,
        design: Design,
        n_sites: int = 20,
        n_rows: int = 5,
        max_cells: int = 3,
        max_targets: int = 8,
        backend: str = "auto",
        ilp_budget_s: float | None = None,
    ) -> None:
        self.design = design
        self.n_sites = n_sites
        self.n_rows = n_rows
        self.max_cells = max_cells
        self.max_targets = max_targets
        self.backend = backend
        self.ilp_budget_s = ilp_budget_s

    # ------------------------------------------------------------------ API

    def run(self, cell_name: str) -> list[LegalizedCandidate]:
        """Candidate positions for ``cell_name`` (Algorithm 2, line 3).

        Returns an empty list when the cell sits in no recognizable row
        or the window has no legal target other than the current spot.
        """
        design = self.design
        cell = design.cells[cell_name]
        home_row = design.row_at_y(cell.y) or design.row_containing(cell.y)
        if home_row is None:
            return []

        window_rows = self._window_rows(cell, home_row)
        movable = self._pick_movable(cell_name, window_rows)
        self._carve_free_space(window_rows, movable)

        cell_sites = self._width_in_sites(cell.width, home_row.site.width)
        target_positions = self._enumerate_targets(
            cell_name, window_rows, cell_sites
        )

        candidates: list[LegalizedCandidate] = []
        for row_slice, local_site in target_positions:
            candidate = self._legalize_with_target(
                cell_name, movable, window_rows, row_slice, local_site
            )
            if candidate is not None:
                candidates.append(candidate)
            if len(candidates) >= self.max_targets:
                break
        return candidates

    # ------------------------------------------------------------- geometry

    @staticmethod
    def _width_in_sites(width: int, site_width: int) -> int:
        return max(1, -(-width // site_width))

    def _window_rows(self, cell, home_row: Row) -> list[_WindowRow]:
        design = self.design
        half_rows = self.n_rows // 2
        lo = max(0, home_row.index - half_rows)
        hi = min(len(design.rows), lo + self.n_rows)
        lo = max(0, hi - self.n_rows)

        half_span = (self.n_sites * home_row.site.width) // 2
        window_lx = cell.x + cell.width // 2 - half_span

        slices: list[_WindowRow] = []
        for row in design.rows[lo:hi]:
            first = max(0, row.site_index(window_lx))
            count = min(self.n_sites, row.num_sites - first)
            if count <= 0:
                continue
            slices.append(
                _WindowRow(
                    row=row,
                    first_site=first,
                    num_sites=count,
                    free=np.ones(count, dtype=bool),
                )
            )
        return slices

    def _pick_movable(
        self, cell_name: str, window_rows: list[_WindowRow]
    ) -> list[str]:
        """The critical cell plus its nearest movable window neighbours."""
        design = self.design
        cell = design.cells[cell_name]
        window_box = self._window_bbox(window_rows)
        neighbours: list[tuple[int, str]] = []
        for name in design.spatial.query(window_box):
            if name == cell_name:
                continue
            other = design.cells[name]
            if other.fixed:
                continue
            if not window_box.contains_rect(other.bbox()):
                continue
            distance = cell.center.manhattan_to(other.center)
            neighbours.append((distance, name))
        neighbours.sort()
        picked = [name for _, name in neighbours[: self.max_cells - 1]]
        return [cell_name] + picked

    @staticmethod
    def _window_bbox(window_rows: list[_WindowRow]) -> Rect:
        boxes = [
            Rect(
                s.row.site_x(s.first_site),
                s.row.origin_y,
                s.row.site_x(s.first_site + s.num_sites),
                s.row.origin_y + s.row.height,
            )
            for s in window_rows
        ]
        return Rect.bounding(boxes)

    def _carve_free_space(
        self, window_rows: list[_WindowRow], movable: list[str]
    ) -> None:
        """Mark sites covered by obstacles (non-movable cells, blockages)."""
        design = self.design
        movable_set = set(movable)
        window_box = self._window_bbox(window_rows)
        obstacle_boxes = [
            design.cells[name].bbox()
            for name in design.spatial.query(window_box)
            if name not in movable_set
        ]
        obstacle_boxes += [
            b.rect for b in design.placement_blockages()
            if b.rect.intersects(window_box)
        ]
        for row_slice in window_rows:
            row = row_slice.row
            row_band = Rect(
                row.site_x(row_slice.first_site),
                row.origin_y,
                row.site_x(row_slice.first_site + row_slice.num_sites),
                row.origin_y + row.height,
            )
            for box in obstacle_boxes:
                overlap = box.intersection(row_band)
                if overlap is None or overlap.width == 0 or overlap.height == 0:
                    continue
                s0 = (overlap.lx - row_band.lx) // row.site.width
                s1 = -(-(overlap.ux - row_band.lx) // row.site.width)
                row_slice.free[max(0, s0) : min(row_slice.num_sites, s1)] = False

    # -------------------------------------------------------------- targets

    def _enumerate_targets(
        self,
        cell_name: str,
        window_rows: list[_WindowRow],
        cell_sites: int,
    ) -> list[tuple[_WindowRow, int]]:
        """Feasible target slots for the critical cell, best-first.

        A slot is feasible when ``cell_sites`` consecutive window sites
        are free of *obstacles* (movable neighbours may still be there —
        displacing them is exactly what the ILP resolves).  Slots are
        ordered by Eq. 11 cost so the best candidates are tried first.
        """
        design = self.design
        cell = design.cells[cell_name]
        median = median_position(design, cell_name)
        scored: list[tuple[float, int, _WindowRow, int]] = []
        for order, row_slice in enumerate(window_rows):
            for local in range(row_slice.num_sites - cell_sites + 1):
                if not row_slice.free[local : local + cell_sites].all():
                    continue
                x = row_slice.site_x(local)
                y = row_slice.row.origin_y
                if x == cell.x and y == cell.y:
                    continue
                cost = abs(x - median.x) + abs(y - median.y)
                scored.append((cost, order, row_slice, local))
        scored.sort(key=lambda item: (item[0], item[1], item[3]))
        return [(row_slice, local) for _, _, row_slice, local in scored]

    # ------------------------------------------------------------------ ILP

    def _legalize_with_target(
        self,
        cell_name: str,
        movable: list[str],
        window_rows: list[_WindowRow],
        target_row: _WindowRow,
        target_site: int,
    ) -> LegalizedCandidate | None:
        """Solve Eq. 11 with the critical cell pinned to one target slot."""
        design = self.design
        site_width = target_row.row.site.width
        row_height = target_row.row.height

        cell_sites = {
            name: self._width_in_sites(design.cells[name].width, site_width)
            for name in movable
        }
        medians = {name: median_position(design, name) for name in movable}

        target_x = target_row.site_x(target_site)
        target_y = target_row.row.origin_y

        # Fast path: if the slot displaces no movable neighbour, the
        # candidate is already legal — no ILP needed.
        target_box = Rect(
            target_x,
            target_y,
            target_x + design.cells[cell_name].width,
            target_y + row_height,
        )
        displaced = [
            name
            for name in movable
            if name != cell_name
            and design.cells[name].bbox().intersects(target_box)
        ]
        if not displaced:
            median = medians[cell_name]
            return LegalizedCandidate(
                cell=cell_name,
                position=(target_x, target_y, target_row.row.orient),
                conflict_moves={},
                displacement=float(
                    abs(target_x - median.x) + abs(target_y - median.y)
                ),
            )

        model = IlpModel(f"legalize[{cell_name}]")
        # slot coverage: (row index in window, local site) -> list of vars
        coverage: dict[tuple[int, int], list[int]] = {}
        placements: dict[int, tuple[str, int, int, Orientation]] = {}

        for name in movable:
            width_sites = cell_sites[name]
            median = medians[name]
            options: list[tuple[int, _WindowRow, int]] = []
            for row_order, row_slice in enumerate(window_rows):
                if name == cell_name and row_slice is not target_row:
                    continue
                for local in range(row_slice.num_sites - width_sites + 1):
                    if name == cell_name and local != target_site:
                        continue
                    span = row_slice.free[local : local + width_sites]
                    if not span.all():
                        continue
                    options.append((row_order, row_slice, local))
            if not options:
                return None
            var_indices: list[int] = []
            for row_order, row_slice, local in options:
                x = row_slice.site_x(local)
                y = row_slice.row.origin_y
                # Eq. 11: site/row-granular displacement toward the median.
                cost = (
                    site_width * (abs(x - median.x) / site_width)
                    + row_height * (abs(y - median.y) / row_height)
                )
                var = model.add_binary(
                    f"y[{name}][{row_order}][{local}]", cost=cost
                )
                var_indices.append(var)
                placements[var] = (name, x, y, row_slice.row.orient)
                for covered in range(local, local + cell_sites[name]):
                    coverage.setdefault((row_order, covered), []).append(var)
            model.add_exactly_one(var_indices, name=f"place[{name}]")

        for (row_order, local), vars_here in coverage.items():
            if len(vars_here) > 1:
                model.add_constraint(
                    [(v, 1.0) for v in vars_here],
                    Sense.LE,
                    1.0,
                    name=f"slot[{row_order}][{local}]",
                )

        solution = solve(model, backend=self.backend, budget_s=self.ilp_budget_s)
        if not solution.ok:
            return None

        conflict_moves: dict[str, tuple[int, int, Orientation]] = {}
        position: tuple[int, int, Orientation] | None = None
        for var_name in solution.chosen():
            name, x, y, orient = placements[model.var_index(var_name)]
            cell = design.cells[name]
            if name == cell_name:
                position = (x, y, orient)
            elif (x, y) != (cell.x, cell.y):
                conflict_moves[name] = (x, y, orient)
        if position is None:
            return None
        if position != (target_x, target_y, target_row.row.orient):
            return None
        return LegalizedCandidate(
            cell=cell_name,
            position=position,
            conflict_moves=conflict_moves,
            displacement=solution.objective,
        )

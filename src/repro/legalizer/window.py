"""The ILP-based window legalizer (Section IV.B.2, Eq. 11).

Given a critical cell ``c``, the legalizer considers a local window of
``n_rows`` rows by ``n_sites`` sites centered on ``c``.  Up to
``max_cells`` cells (``c`` plus its nearest movable neighbours in the
window) may move; everything else is an obstacle.  For each enumerated
target position of ``c`` an ILP places the remaining movable cells on
free sites minimizing displacement toward their median positions
(Eq. 11), yielding one *legalized candidate*: a new position for ``c``
plus the compensating moves of the conflict cells.

The paper's defaults — ``|cells| = 3``, ``|sites| = 20``, ``|rows| = 5``
— are the constructor defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geom import Orientation, Point, Rect
from repro.db import Design, Row
from repro.ilp import IlpModel, Sense, solve
from repro.legalizer.median import median_position


@dataclass(slots=True)
class LegalizedCandidate:
    """One legalized outcome of moving a critical cell.

    ``position`` is the critical cell's new placement;
    ``conflict_moves`` maps each displaced neighbour to its new legal
    placement; ``displacement`` is the Eq. 11 objective value.
    """

    cell: str
    position: tuple[int, int, Orientation]
    conflict_moves: dict[str, tuple[int, int, Orientation]] = field(
        default_factory=dict
    )
    displacement: float = 0.0

    @property
    def is_current(self) -> bool:
        return not self.conflict_moves and abs(self.displacement) <= 1e-9


@dataclass(slots=True)
class _WindowRow:
    """One row's slice of the legalization window."""

    row: Row
    first_site: int
    num_sites: int
    free: np.ndarray  # bool per site in the window slice

    def site_x(self, local_site: int) -> int:
        return self.row.site_x(self.first_site + local_site)


_MEMO_MISS = object()
_FALLBACK = object()


def _ambiguous(values: np.ndarray, best: float) -> bool:
    """True when the optimum is not *provably* unique.

    An exact tie means two assignments price identically and only the
    backend's tie-break picks between them; a runner-up within the
    ladder's MIP gap tolerances (HiGHS defaults: ``mip_rel_gap=1e-4``,
    ``mip_abs_gap=1e-6``, each taken with 2x headroom) means the
    backend is *allowed* to return the runner-up.  Both cases delegate
    to the real solver.
    """
    if int(np.count_nonzero(values == best)) > 1:
        return True
    others = values[values > best]
    if others.size == 0:
        return False
    gap = float(others.min()) - float(best)
    return gap <= 2e-6 + 2e-4 * abs(float(best))


class WindowLegalizer:
    """Generates legalized candidate positions for critical cells."""

    def __init__(
        self,
        design: Design,
        n_sites: int = 20,
        n_rows: int = 5,
        max_cells: int = 3,
        max_targets: int = 8,
        backend: str = "auto",
        ilp_budget_s: float | None = None,
        fast: bool = False,
    ) -> None:
        self.design = design
        self.n_sites = n_sites
        self.n_rows = n_rows
        self.max_cells = max_cells
        self.max_targets = max_targets
        self.backend = backend
        self.ilp_budget_s = ilp_budget_s
        self.fast = fast
        # The memo and the specialized exact solver arm only when a
        # solve is a reproducible function of the window signature: no
        # wall-clock budget (expiry degrades the ladder to greedy) and
        # an exact backend resolution.  Everything else keeps the plain
        # per-window ILP path.
        self._fast_gcp = (
            fast and ilp_budget_s is None and backend in ("auto", "scipy")
        )
        #: window-signature -> solved outcome, scoped to this instance
        #: (CR&P builds a fresh legalizer per iteration)
        self._memo: dict = {}
        self.memo_hits = 0
        self.memo_misses = 0
        self.fast_solves = 0
        self.fast_fallbacks = 0

    # ------------------------------------------------------------------ API

    def run(self, cell_name: str) -> list[LegalizedCandidate]:
        """Candidate positions for ``cell_name`` (Algorithm 2, line 3).

        Returns an empty list when the cell sits in no recognizable row
        or the window has no legal target other than the current spot.
        """
        design = self.design
        cell = design.cells[cell_name]
        home_row = design.row_at_y(cell.y) or design.row_containing(cell.y)
        if home_row is None:
            return []

        window_rows = self._window_rows(cell, home_row)
        movable = self._pick_movable(cell_name, window_rows)
        self._carve_free_space(window_rows, movable)

        # Median positions depend only on the committed placement, not
        # on the target slot — compute once per run, not once per target.
        medians = {name: median_position(design, name) for name in movable}

        cell_sites = self._width_in_sites(cell.width, home_row.site.width)
        target_positions = self._enumerate_targets(
            cell_name, window_rows, cell_sites, medians[cell_name]
        )

        candidates: list[LegalizedCandidate] = []
        for row_slice, local_site in target_positions:
            candidate = self._legalize_with_target(
                cell_name, movable, window_rows, row_slice, local_site, medians
            )
            if candidate is not None:
                candidates.append(candidate)
            if len(candidates) >= self.max_targets:
                break
        return candidates

    # ------------------------------------------------------------- geometry

    @staticmethod
    def _width_in_sites(width: int, site_width: int) -> int:
        return max(1, -(-width // site_width))

    def _window_rows(self, cell, home_row: Row) -> list[_WindowRow]:
        design = self.design
        half_rows = self.n_rows // 2
        lo = max(0, home_row.index - half_rows)
        hi = min(len(design.rows), lo + self.n_rows)
        lo = max(0, hi - self.n_rows)

        half_span = (self.n_sites * home_row.site.width) // 2
        window_lx = cell.x + cell.width // 2 - half_span

        slices: list[_WindowRow] = []
        for row in design.rows[lo:hi]:
            first = max(0, row.site_index(window_lx))
            count = min(self.n_sites, row.num_sites - first)
            if count <= 0:
                continue
            slices.append(
                _WindowRow(
                    row=row,
                    first_site=first,
                    num_sites=count,
                    free=np.ones(count, dtype=bool),
                )
            )
        return slices

    def _pick_movable(
        self, cell_name: str, window_rows: list[_WindowRow]
    ) -> list[str]:
        """The critical cell plus its nearest movable window neighbours."""
        design = self.design
        cell = design.cells[cell_name]
        window_box = self._window_bbox(window_rows)
        neighbours: list[tuple[int, str]] = []
        for name in design.spatial.query(window_box):
            if name == cell_name:
                continue
            other = design.cells[name]
            if other.fixed:
                continue
            if not window_box.contains_rect(other.bbox()):
                continue
            distance = cell.center.manhattan_to(other.center)
            neighbours.append((distance, name))
        neighbours.sort()
        picked = [name for _, name in neighbours[: self.max_cells - 1]]
        return [cell_name] + picked

    @staticmethod
    def _window_bbox(window_rows: list[_WindowRow]) -> Rect:
        boxes = [
            Rect(
                s.row.site_x(s.first_site),
                s.row.origin_y,
                s.row.site_x(s.first_site + s.num_sites),
                s.row.origin_y + s.row.height,
            )
            for s in window_rows
        ]
        return Rect.bounding(boxes)

    def _carve_free_space(
        self, window_rows: list[_WindowRow], movable: list[str]
    ) -> None:
        """Mark sites covered by obstacles (non-movable cells, blockages)."""
        design = self.design
        movable_set = set(movable)
        window_box = self._window_bbox(window_rows)
        obstacle_boxes = [
            design.cells[name].bbox()
            for name in design.spatial.query(window_box)
            if name not in movable_set
        ]
        obstacle_boxes += [
            b.rect for b in design.placement_blockages()
            if b.rect.intersects(window_box)
        ]
        for row_slice in window_rows:
            row = row_slice.row
            row_band = Rect(
                row.site_x(row_slice.first_site),
                row.origin_y,
                row.site_x(row_slice.first_site + row_slice.num_sites),
                row.origin_y + row.height,
            )
            for box in obstacle_boxes:
                overlap = box.intersection(row_band)
                if overlap is None or overlap.width == 0 or overlap.height == 0:
                    continue
                s0 = (overlap.lx - row_band.lx) // row.site.width
                s1 = -(-(overlap.ux - row_band.lx) // row.site.width)
                row_slice.free[max(0, s0) : min(row_slice.num_sites, s1)] = False

    # -------------------------------------------------------------- targets

    def _enumerate_targets(
        self,
        cell_name: str,
        window_rows: list[_WindowRow],
        cell_sites: int,
        median: Point,
    ) -> list[tuple[_WindowRow, int]]:
        """Feasible target slots for the critical cell, best-first.

        A slot is feasible when ``cell_sites`` consecutive window sites
        are free of *obstacles* (movable neighbours may still be there —
        displacing them is exactly what the ILP resolves).  Slots are
        ordered by Eq. 11 cost so the best candidates are tried first.
        """
        design = self.design
        cell = design.cells[cell_name]
        scored: list[tuple[float, int, _WindowRow, int]] = []
        for order, row_slice in enumerate(window_rows):
            for local in range(row_slice.num_sites - cell_sites + 1):
                if not row_slice.free[local : local + cell_sites].all():
                    continue
                x = row_slice.site_x(local)
                y = row_slice.row.origin_y
                if x == cell.x and y == cell.y:
                    continue
                cost = abs(x - median.x) + abs(y - median.y)
                scored.append((cost, order, row_slice, local))
        scored.sort(key=lambda item: (item[0], item[1], item[3]))
        return [(row_slice, local) for _, _, row_slice, local in scored]

    # ------------------------------------------------------------------ ILP

    def _legalize_with_target(
        self,
        cell_name: str,
        movable: list[str],
        window_rows: list[_WindowRow],
        target_row: _WindowRow,
        target_site: int,
        medians: dict[str, Point],
    ) -> LegalizedCandidate | None:
        """Solve Eq. 11 with the critical cell pinned to one target slot."""
        design = self.design
        site_width = target_row.row.site.width
        row_height = target_row.row.height

        cell_sites = {
            name: self._width_in_sites(design.cells[name].width, site_width)
            for name in movable
        }

        target_x = target_row.site_x(target_site)
        target_y = target_row.row.origin_y

        # Fast path: if the slot displaces no movable neighbour, the
        # candidate is already legal — no ILP needed.
        target_box = Rect(
            target_x,
            target_y,
            target_x + design.cells[cell_name].width,
            target_y + row_height,
        )
        displaced = [
            name
            for name in movable
            if name != cell_name
            and design.cells[name].bbox().intersects(target_box)
        ]
        if not displaced:
            median = medians[cell_name]
            return LegalizedCandidate(
                cell=cell_name,
                position=(target_x, target_y, target_row.row.orient),
                conflict_moves={},
                displacement=float(
                    abs(target_x - median.x) + abs(target_y - median.y)
                ),
            )

        key = None
        if self._fast_gcp:
            key = self._memo_key(
                movable, window_rows, target_row, target_site, cell_sites, medians
            )
            outcome = self._memo.get(key, _MEMO_MISS)
            if outcome is not _MEMO_MISS:
                self.memo_hits += 1
                return self._candidate_from(
                    cell_name, movable, target_row, target_site, outcome
                )
            self.memo_misses += 1

        all_options: list[list[tuple[int, _WindowRow, int]]] = []
        for name in movable:
            options = self._options_for(
                name, cell_name, cell_sites[name], window_rows,
                target_row, target_site,
            )
            if not options:
                if key is not None:
                    self._memo[key] = None
                return None
            all_options.append(options)

        outcome = _FALLBACK
        if key is not None:
            outcome = self._solve_fast(
                movable, all_options, cell_sites, medians,
                site_width, row_height,
            )
            if outcome is not _FALLBACK:
                self.fast_solves += 1
        if outcome is _FALLBACK:
            if key is not None:
                self.fast_fallbacks += 1
            outcome = self._solve_ilp(
                cell_name, movable, all_options, cell_sites, medians,
                site_width, row_height,
            )
        if key is not None:
            self._memo[key] = outcome
        return self._candidate_from(
            cell_name, movable, target_row, target_site, outcome
        )

    def _options_for(
        self,
        name: str,
        cell_name: str,
        width_sites: int,
        window_rows: list[_WindowRow],
        target_row: _WindowRow,
        target_site: int,
    ) -> list[tuple[int, _WindowRow, int]]:
        """Feasible slots of one movable cell, in model variable order."""
        if name == cell_name:
            # The critical cell is pinned: its only admissible slot is
            # the target itself (when the carved span is free).
            if target_site > target_row.num_sites - width_sites:
                return []
            span = target_row.free[target_site : target_site + width_sites]
            if not span.all():
                return []
            return [(window_rows.index(target_row), target_row, target_site)]
        options: list[tuple[int, _WindowRow, int]] = []
        for row_order, row_slice in enumerate(window_rows):
            count = row_slice.num_sites - width_sites + 1
            if count <= 0:
                continue
            free = row_slice.free
            if width_sites == 1:
                feasible = free
            else:
                # sliding-window "all free" via a prefix sum — one
                # vector op instead of a span.all() per start site
                prefix = np.zeros(len(free) + 1, dtype=np.intp)
                np.cumsum(free, out=prefix[1:])
                feasible = (
                    prefix[width_sites:] - prefix[:-width_sites]
                ) == width_sites
            for local in np.nonzero(feasible[:count])[0]:
                options.append((row_order, row_slice, int(local)))
        return options

    def _solve_ilp(
        self,
        cell_name: str,
        movable: list[str],
        all_options: list[list[tuple[int, _WindowRow, int]]],
        cell_sites: dict[str, int],
        medians: dict[str, Point],
        site_width: int,
        row_height: int,
    ):
        """The Eq. 11 window ILP (the oracle the fast solver must match).

        Returns ``None`` (infeasible / solver declined) or
        ``(assignments, objective)`` with one ``(x, y, orient)`` per
        movable cell in ``movable`` order.
        """
        model = IlpModel(f"legalize[{cell_name}]")
        # slot coverage: (row index in window, local site) -> list of vars
        coverage: dict[tuple[int, int], list[int]] = {}
        placements: dict[int, tuple[str, int, int, Orientation]] = {}

        for name, options in zip(movable, all_options):
            median = medians[name]
            var_indices: list[int] = []
            for row_order, row_slice, local in options:
                x = row_slice.site_x(local)
                y = row_slice.row.origin_y
                # Eq. 11: site/row-granular displacement toward the median.
                cost = (
                    site_width * (abs(x - median.x) / site_width)
                    + row_height * (abs(y - median.y) / row_height)
                )
                var = model.add_binary(
                    f"y[{name}][{row_order}][{local}]", cost=cost
                )
                var_indices.append(var)
                placements[var] = (name, x, y, row_slice.row.orient)
                for covered in range(local, local + cell_sites[name]):
                    coverage.setdefault((row_order, covered), []).append(var)
            model.add_exactly_one(var_indices, name=f"place[{name}]")

        for (row_order, local), vars_here in coverage.items():
            if len(vars_here) > 1:
                model.add_constraint(
                    [(v, 1.0) for v in vars_here],
                    Sense.LE,
                    1.0,
                    name=f"slot[{row_order}][{local}]",
                )

        solution = solve(model, backend=self.backend, budget_s=self.ilp_budget_s)
        if not solution.ok:
            return None

        chosen: dict[str, tuple[int, int, Orientation]] = {}
        for var_name in solution.chosen():
            name, x, y, orient = placements[model.var_index(var_name)]
            chosen[name] = (x, y, orient)
        if any(name not in chosen for name in movable):
            return None
        assignments = tuple(chosen[name] for name in movable)
        return (assignments, solution.objective)

    def _candidate_from(
        self,
        cell_name: str,
        movable: list[str],
        target_row: _WindowRow,
        target_site: int,
        outcome,
    ) -> LegalizedCandidate | None:
        """Materialize a solved outcome against the *current* placement.

        Splitting this from the solve keeps memoized outcomes reusable:
        the conflict filter compares against live cell positions, which
        are part of the memo key, so a hit reproduces the exact
        candidate a fresh solve would have produced.
        """
        if outcome is None:
            return None
        assignments, objective = outcome
        design = self.design
        target_x = target_row.site_x(target_site)
        target_y = target_row.row.origin_y
        conflict_moves: dict[str, tuple[int, int, Orientation]] = {}
        position: tuple[int, int, Orientation] | None = None
        for name, (x, y, orient) in zip(movable, assignments):
            cell = design.cells[name]
            if name == cell_name:
                position = (x, y, orient)
            elif (x, y) != (cell.x, cell.y):
                conflict_moves[name] = (x, y, orient)
        if position is None:
            return None
        if position != (target_x, target_y, target_row.row.orient):
            return None
        return LegalizedCandidate(
            cell=cell_name,
            position=position,
            conflict_moves=conflict_moves,
            displacement=objective,
        )

    # -------------------------------------------------- fast GCP kernel

    def _memo_key(
        self,
        movable: list[str],
        window_rows: list[_WindowRow],
        target_row: _WindowRow,
        target_site: int,
        cell_sites: dict[str, int],
        medians: dict[str, Point],
    ) -> tuple:
        """Everything a window solve's outcome is a function of.

        Covers the option enumeration (row geometry + free masks +
        widths in sites), the Eq. 11 costs (medians, site width, row
        height), the pinned target, and the current positions the
        conflict filter compares against.  Cell *names* are excluded on
        purpose — structurally identical subproblems deduplicate.
        """
        design = self.design
        cells = design.cells
        return (
            window_rows.index(target_row),
            target_site,
            tuple(
                (
                    cell_sites[name],
                    medians[name].x,
                    medians[name].y,
                    cells[name].x,
                    cells[name].y,
                )
                for name in movable
            ),
            tuple(
                (
                    rs.row.site_x(rs.first_site),
                    rs.row.origin_y,
                    rs.row.site.width,
                    rs.row.height,
                    rs.row.orient,
                    rs.num_sites,
                    rs.free.tobytes(),
                )
                for rs in window_rows
            ),
        )

    def _solve_fast(
        self,
        movable: list[str],
        all_options: list[list[tuple[int, _WindowRow, int]]],
        cell_sites: dict[str, int],
        medians: dict[str, Point],
        site_width: int,
        row_height: int,
    ):
        """Exact vectorized solve of the pinned-target assignment problem.

        The window model is tiny and rigidly structured: the critical
        cell is pinned to exactly one option and at most two neighbours
        each pick one free span, subject to pairwise non-overlap.  The
        optimum is found by enumerating the (masked) total matrix; the
        objective accumulates in the same order HiGHS evaluates the
        model's objective (variable index order = ``movable`` order),
        so a *unique* optimum is returned bit-identically.  Whenever
        uniqueness is in doubt — an exact tie, or a runner-up within
        the ladder backend's MIP gap tolerances — the solve is
        delegated to the real ILP (``_FALLBACK``), which keeps
        bit-identity by construction rather than by tie-break guessing.

        Returns ``None`` (infeasible), ``(assignments, objective)``, or
        ``_FALLBACK``.
        """
        n = len(movable)
        if n > 3 or len(all_options[0]) != 1:
            return _FALLBACK

        costs: list[np.ndarray] = []
        rows: list[np.ndarray] = []
        starts: list[np.ndarray] = []
        ends: list[np.ndarray] = []
        places: list[list[tuple[int, int, Orientation]]] = []
        for name, options in zip(movable, all_options):
            median = medians[name]
            width = cell_sites[name]
            count = len(options)
            cvec = np.empty(count, dtype=np.float64)
            rvec = np.empty(count, dtype=np.int64)
            svec = np.empty(count, dtype=np.int64)
            pvec: list[tuple[int, int, Orientation]] = []
            for j, (row_order, row_slice, local) in enumerate(options):
                x = row_slice.site_x(local)
                y = row_slice.row.origin_y
                # Must be the exact Eq. 11 expression of the model.
                cvec[j] = (
                    site_width * (abs(x - median.x) / site_width)
                    + row_height * (abs(y - median.y) / row_height)
                )
                rvec[j] = row_order
                svec[j] = local
                pvec.append((x, y, row_slice.row.orient))
            costs.append(cvec)
            rows.append(rvec)
            starts.append(svec)
            ends.append(svec + width)
            places.append(pvec)

        def against_pinned(i: int) -> np.ndarray:
            """Options of movable ``i`` that overlap the pinned slot."""
            return (
                (rows[i] == rows[0][0])
                & (starts[i] < ends[0][0])
                & (starts[0][0] < ends[i])
            )

        pinned = places[0][0]
        c0 = costs[0][0]
        if n == 1:
            return ((pinned,), float(c0))

        if n == 2:
            feasible = ~against_pinned(1)
            if not feasible.any():
                return None
            totals = c0 + costs[1]
            values = totals[feasible]
            best = values.min()
            if _ambiguous(values, best):
                return _FALLBACK
            j = int(np.flatnonzero(feasible & (totals == best))[0])
            return ((pinned, places[1][j]), float(best))

        pair = (
            (rows[1][:, None] == rows[2][None, :])
            & (starts[1][:, None] < ends[2][None, :])
            & (starts[2][None, :] < ends[1][:, None])
        )
        feasible = (
            (~against_pinned(1))[:, None]
            & (~against_pinned(2))[None, :]
            & ~pair
        )
        if not feasible.any():
            return None
        totals = (c0 + costs[1])[:, None] + costs[2][None, :]
        values = totals[feasible]
        best = values.min()
        if _ambiguous(values, best):
            return _FALLBACK
        i, j = np.argwhere(feasible & (totals == best))[0]
        return (
            (pinned, places[1][int(i)], places[2][int(j)]),
            float(best),
        )

    def publish_metrics(self) -> None:
        """Flush window-kernel tallies as ``crp.window_*`` metric deltas."""
        from repro.obs import get_metrics

        metrics = get_metrics()
        if not metrics.recording:
            return
        metrics.count("crp.window_memo_hits", self.memo_hits)
        metrics.count("crp.window_memo_misses", self.memo_misses)
        metrics.count("crp.window_fast_solves", self.fast_solves)
        metrics.count("crp.window_fast_fallbacks", self.fast_fallbacks)
        self.memo_hits = 0
        self.memo_misses = 0
        self.fast_solves = 0
        self.fast_fallbacks = 0

"""Placement legality checking (constraints Eq. 5-8 of the paper).

A placement is legal when every movable cell is inside the die, aligned
to a placement site horizontally (Eq. 7), aligned to a row vertically
with the row's orientation (Eq. 8), free of overlaps with other cells and
placement blockages (Eq. 6), and fully inside the circuit (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.design import Design


@dataclass(slots=True)
class LegalityReport:
    """The violations found by :func:`check_legality`."""

    out_of_die: list[str] = field(default_factory=list)
    off_site: list[str] = field(default_factory=list)
    off_row: list[str] = field(default_factory=list)
    bad_orient: list[str] = field(default_factory=list)
    overlaps: list[tuple[str, str]] = field(default_factory=list)
    blocked: list[str] = field(default_factory=list)

    @property
    def is_legal(self) -> bool:
        return not (
            self.out_of_die
            or self.off_site
            or self.off_row
            or self.bad_orient
            or self.overlaps
            or self.blocked
        )

    def summary(self) -> str:
        return (
            f"out_of_die={len(self.out_of_die)} off_site={len(self.off_site)} "
            f"off_row={len(self.off_row)} bad_orient={len(self.bad_orient)} "
            f"overlaps={len(self.overlaps)} blocked={len(self.blocked)}"
        )


def check_legality(design: Design, check_orient: bool = True) -> LegalityReport:
    """Check every cell of ``design`` against the legality constraints."""
    report = LegalityReport()
    for cell in design.cells.values():
        box = cell.bbox()
        if not design.die.contains_rect(box):
            report.out_of_die.append(cell.name)
            continue
        row = design.row_at_y(cell.y)
        if row is None:
            report.off_row.append(cell.name)
            continue
        if not row.contains_x_span(box.lx, box.ux):
            report.out_of_die.append(cell.name)
            continue
        if (cell.x - row.origin_x) % row.site.width != 0:
            report.off_site.append(cell.name)
        if check_orient and cell.orient != row.orient:
            report.bad_orient.append(cell.name)
        for blockage in design.placement_blockages():
            if box.intersects(blockage.rect, strict=True):
                report.blocked.append(cell.name)
                break
    report.overlaps = design.spatial.overlapping_pairs()
    return report

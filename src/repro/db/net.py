"""Nets, net pins, and chip-level I/O pins."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom import Point, Rect
from repro.tech import PinDirection


@dataclass(frozen=True, slots=True)
class NetPin:
    """One terminal of a net.

    ``cell`` names a component and ``pin`` a macro pin; for chip I/O
    terminals ``cell`` is ``None`` and ``pin`` names an :class:`IOPin`.
    """

    cell: str | None
    pin: str

    @property
    def is_io(self) -> bool:
        return self.cell is None

    def key(self) -> str:
        if self.cell is None:
            return f"PIN/{self.pin}"
        return f"{self.cell}/{self.pin}"


@dataclass(slots=True)
class Net:
    """A signal net connecting component pins and/or chip I/O pins."""

    name: str
    pins: list[NetPin] = field(default_factory=list)

    def add_pin(self, pin: NetPin) -> None:
        self.pins.append(pin)

    @property
    def degree(self) -> int:
        return len(self.pins)

    def cells(self) -> list[str]:
        """Names of the distinct components on this net."""
        seen: dict[str, None] = {}
        for p in self.pins:
            if p.cell is not None:
                seen.setdefault(p.cell)
        return list(seen)


@dataclass(slots=True)
class IOPin:
    """A chip-level terminal placed on the die boundary."""

    name: str
    point: Point
    layer: int
    rect: Rect
    direction: PinDirection = PinDirection.INPUT

"""The design database: cells, nets, rows, blockages, spatial queries."""

from repro.db.cell import Cell
from repro.db.net import IOPin, Net, NetPin
from repro.db.row import Row
from repro.db.design import Blockage, Design
from repro.db.spatial import SpatialIndex
from repro.db.legality import LegalityReport, check_legality

__all__ = [
    "Cell",
    "Net",
    "NetPin",
    "IOPin",
    "Row",
    "Design",
    "Blockage",
    "SpatialIndex",
    "LegalityReport",
    "check_legality",
]

"""Placement rows."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom import Orientation, Rect
from repro.tech import Site


@dataclass(slots=True)
class Row:
    """A DEF ROW: a horizontal strip of abutted placement sites."""

    name: str
    site: Site
    origin_x: int
    origin_y: int
    num_sites: int
    orient: Orientation = Orientation.N
    index: int = 0

    @property
    def y(self) -> int:
        return self.origin_y

    @property
    def height(self) -> int:
        return self.site.height

    @property
    def end_x(self) -> int:
        return self.origin_x + self.num_sites * self.site.width

    def bbox(self) -> Rect:
        return Rect(self.origin_x, self.origin_y, self.end_x, self.origin_y + self.height)

    def site_x(self, site_index: int) -> int:
        """DBU x-coordinate of site ``site_index`` in this row."""
        return self.origin_x + site_index * self.site.width

    def site_index(self, x: int) -> int:
        """Site index containing coordinate ``x`` (floored)."""
        return (x - self.origin_x) // self.site.width

    def snap_x(self, x: int) -> int:
        """Nearest legal site x for coordinate ``x``, clamped to the row."""
        idx = round((x - self.origin_x) / self.site.width)
        idx = max(0, min(self.num_sites - 1, idx))
        return self.site_x(idx)

    def contains_x_span(self, lx: int, ux: int) -> bool:
        """True when ``[lx, ux]`` lies inside the row extent."""
        return self.origin_x <= lx and ux <= self.end_x

"""Placed component instances."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom import Orientation, Point, Rect
from repro.tech import Macro, PinShape


@dataclass(slots=True)
class Cell:
    """A placed instance of a macro.

    ``(x, y)`` is the lower-left corner of the placed outline, per DEF
    ``PLACED`` semantics.  Row-based designs only use N/FS orientations, so
    the placed outline always has the macro's width and height.
    """

    name: str
    macro: Macro
    x: int = 0
    y: int = 0
    orient: Orientation = Orientation.N
    fixed: bool = False
    nets: list[str] = field(default_factory=list)

    @property
    def width(self) -> int:
        if self.orient.swaps_axes:
            return self.macro.height
        return self.macro.width

    @property
    def height(self) -> int:
        if self.orient.swaps_axes:
            return self.macro.width
        return self.macro.height

    @property
    def area(self) -> int:
        return self.width * self.height

    def bbox(self) -> Rect:
        return Rect(self.x, self.y, self.x + self.width, self.y + self.height)

    @property
    def center(self) -> Point:
        return Point(self.x + self.width // 2, self.y + self.height // 2)

    def pin_shapes(self, pin_name: str) -> list[PinShape]:
        """Physical shapes of a pin in chip coordinates."""
        pin = self.macro.pin(pin_name)
        return pin.placed_shapes(
            self.x, self.y, self.orient, self.macro.width, self.macro.height
        )

    def pin_position(self, pin_name: str) -> Point:
        """Center of a pin's bounding box in chip coordinates."""
        shapes = self.pin_shapes(pin_name)
        return Rect.bounding([s.rect for s in shapes]).center

    def obstruction_shapes(self) -> list[PinShape]:
        """Routing obstructions in chip coordinates."""
        from repro.geom import transform_rect

        return [
            PinShape(
                s.layer,
                transform_rect(
                    s.rect, self.orient, self.macro.width, self.macro.height
                ).translated(self.x, self.y),
            )
            for s in self.macro.obstructions
        ]

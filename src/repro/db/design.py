"""The top-level design database."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom import Orientation, Point, Rect
from repro.db.cell import Cell
from repro.db.net import IOPin, Net, NetPin
from repro.db.row import Row
from repro.db.spatial import SpatialIndex
from repro.tech import Technology


@dataclass(frozen=True, slots=True)
class Blockage:
    """A placement or routing blockage.

    ``layer`` is a routing-layer index for routing blockages and ``-1``
    for placement blockages (which exclude cell outlines instead of
    wires).
    """

    layer: int
    rect: Rect

    @property
    def is_placement(self) -> bool:
        return self.layer < 0


@dataclass(slots=True)
class GCellGridSpec:
    """DEF GCELLGRID equivalent: uniform gcell tiling of the die."""

    origin_x: int
    origin_y: int
    step_x: int
    step_y: int
    nx: int
    ny: int


class Design:
    """The mutable design database shared by every engine in the flow.

    It owns the placed cells, the netlist, rows, blockages, and the
    cell-move journal the CR&P framework uses for its history terms
    (``hist_c`` / ``hist_m`` in Algorithm 1).
    """

    def __init__(self, name: str, tech: Technology, die: Rect) -> None:
        self.name = name
        self.tech = tech
        self.die = die
        self.rows: list[Row] = []
        self.cells: dict[str, Cell] = {}
        self.nets: dict[str, Net] = {}
        self.iopins: dict[str, IOPin] = {}
        self.blockages: list[Blockage] = []
        self.gcell_grid: GCellGridSpec | None = None
        self.spatial = SpatialIndex(die)
        #: cells labeled critical in any earlier CR&P iteration
        self.critical_history: set[str] = set()
        #: cells actually moved in any earlier CR&P iteration
        self.moved_history: set[str] = set()

    # ------------------------------------------------------------------ rows

    def add_row(self, row: Row) -> None:
        row.index = len(self.rows)
        self.rows.append(row)

    def row_at_y(self, y: int) -> Row | None:
        """The row whose origin y equals ``y`` (exact match)."""
        for row in self.rows:
            if row.origin_y == y:
                return row
        return None

    def row_containing(self, y: int) -> Row | None:
        """The row whose vertical span contains ``y``."""
        for row in self.rows:
            if row.origin_y <= y < row.origin_y + row.height:
                return row
        return None

    # ----------------------------------------------------------------- cells

    def add_cell(self, cell: Cell) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name}")
        self.cells[cell.name] = cell
        self.spatial.insert(cell.name, cell.bbox())

    def move_cell(
        self, name: str, x: int, y: int, orient: Orientation | None = None
    ) -> None:
        """Move a cell and keep the spatial index consistent."""
        cell = self.cells[name]
        if cell.fixed:
            raise ValueError(f"cell {name} is fixed and cannot move")
        cell.x = x
        cell.y = y
        if orient is not None:
            cell.orient = orient
        self.spatial.move(name, cell.bbox())

    # ------------------------------------------------------------------ nets

    def add_net(self, net: Net) -> None:
        if net.name in self.nets:
            raise ValueError(f"duplicate net {net.name}")
        self.nets[net.name] = net
        for pin in net.pins:
            if pin.cell is not None:
                self.cells[pin.cell].nets.append(net.name)

    def connect(self, net_name: str, cell_name: str | None, pin_name: str) -> None:
        """Attach one terminal to an existing net."""
        net = self.nets[net_name]
        net.add_pin(NetPin(cell_name, pin_name))
        if cell_name is not None:
            self.cells[cell_name].nets.append(net_name)

    def add_iopin(self, pin: IOPin) -> None:
        if pin.name in self.iopins:
            raise ValueError(f"duplicate IO pin {pin.name}")
        self.iopins[pin.name] = pin

    def pin_point(self, pin: NetPin) -> Point:
        """Chip-coordinate location of a net terminal."""
        if pin.cell is None:
            return self.iopins[pin.pin].point
        return self.cells[pin.cell].pin_position(pin.pin)

    def pin_layer(self, pin: NetPin) -> int:
        """Routing-layer index a terminal is accessible on."""
        if pin.cell is None:
            return self.iopins[pin.pin].layer
        cell = self.cells[pin.cell]
        shapes = cell.macro.pin(pin.pin).shapes
        if not shapes:
            return 0
        return min(s.layer for s in shapes)

    def net_bbox(self, net: Net) -> Rect:
        """Bounding box over all terminal locations of ``net``."""
        points = [self.pin_point(p) for p in net.pins]
        return Rect(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    def net_hpwl(self, net: Net) -> int:
        """Half-perimeter wirelength of ``net``."""
        if net.degree < 2:
            return 0
        box = self.net_bbox(net)
        return box.width + box.height

    def total_hpwl(self) -> int:
        """Sum of HPWL over every net."""
        return sum(self.net_hpwl(net) for net in self.nets.values())

    def nets_of_cell(self, cell_name: str) -> list[Net]:
        """Distinct nets connected to a cell, in first-connection order."""
        seen: dict[str, None] = {}
        for net_name in self.cells[cell_name].nets:
            seen.setdefault(net_name)
        return [self.nets[name] for name in seen]

    def connected_cells(self, cell_name: str) -> set[str]:
        """Names of cells sharing at least one net with ``cell_name``."""
        neighbours: set[str] = set()
        for net in self.nets_of_cell(cell_name):
            neighbours.update(net.cells())
        neighbours.discard(cell_name)
        return neighbours

    # ------------------------------------------------------------- blockages

    def add_blockage(self, blockage: Blockage) -> None:
        self.blockages.append(blockage)

    def placement_blockages(self) -> list[Blockage]:
        return [b for b in self.blockages if b.is_placement]

    def routing_blockages(self) -> list[Blockage]:
        return [b for b in self.blockages if not b.is_placement]

    # ------------------------------------------------------------- utilities

    def utilization(self) -> float:
        """Total movable+fixed cell area over total row area."""
        cell_area = sum(c.area for c in self.cells.values())
        row_area = sum(r.bbox().area for r in self.rows)
        if row_area == 0:
            return 0.0
        return cell_area / row_area

    def stats(self) -> dict[str, int | float]:
        """Summary statistics (Table II style)."""
        return {
            "cells": len(self.cells),
            "nets": len(self.nets),
            "iopins": len(self.iopins),
            "rows": len(self.rows),
            "utilization": round(self.utilization(), 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Design({self.name!r}, cells={len(self.cells)}, "
            f"nets={len(self.nets)})"
        )

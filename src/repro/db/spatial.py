"""A bucket-grid spatial index over placed cells.

The index answers "which cells overlap this window" queries used by the
ILP legalizer and the legality checker without an O(#cells) scan.
"""

from __future__ import annotations

from collections import defaultdict

from repro.geom import Rect


class SpatialIndex:
    """Maps grid buckets to the names of cells whose outline touches them."""

    def __init__(self, die: Rect, bucket: int = 0) -> None:
        if bucket <= 0:
            bucket = max(1, min(die.width, die.height) // 64 or 1)
        self._die = die
        self._bucket = bucket
        self._buckets: dict[tuple[int, int], set[str]] = defaultdict(set)
        self._boxes: dict[str, Rect] = {}

    def _span(self, box: Rect) -> tuple[int, int, int, int]:
        b = self._bucket
        return (box.lx // b, box.ly // b, box.ux // b, box.uy // b)

    def insert(self, name: str, box: Rect) -> None:
        """Add or replace the entry for ``name``."""
        if name in self._boxes:
            self.remove(name)
        self._boxes[name] = box
        bx0, by0, bx1, by1 = self._span(box)
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                self._buckets[(bx, by)].add(name)

    def remove(self, name: str) -> None:
        """Remove ``name``; silently ignores unknown names."""
        box = self._boxes.pop(name, None)
        if box is None:
            return
        bx0, by0, bx1, by1 = self._span(box)
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                self._buckets[(bx, by)].discard(name)

    def move(self, name: str, box: Rect) -> None:
        """Update the entry for ``name`` to a new outline."""
        self.insert(name, box)

    def box_of(self, name: str) -> Rect | None:
        return self._boxes.get(name)

    def query(self, window: Rect, strict: bool = True) -> list[str]:
        """Names of cells whose outline intersects ``window`` (sorted,
        so callers iterating the result stay deterministic)."""
        bx0, by0, bx1, by1 = self._span(window)
        candidates: set[str] = set()
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                candidates |= self._buckets.get((bx, by), set())
        return sorted(
            name
            for name in candidates
            if self._boxes[name].intersects(window, strict=strict)
        )

    def overlapping_pairs(self) -> list[tuple[str, str]]:
        """All strictly overlapping cell pairs (for legality checking)."""
        pairs: set[tuple[str, str]] = set()
        for names in self._buckets.values():
            ordered = sorted(names)
            for i, a in enumerate(ordered):
                box_a = self._boxes[a]
                for b in ordered[i + 1 :]:
                    if box_a.intersects(self._boxes[b], strict=True):
                        pairs.add((a, b))
        return sorted(pairs)

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, name: str) -> bool:
        return name in self._boxes

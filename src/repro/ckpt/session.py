"""The flow-facing checkpoint driver (``FlowCheckpointer``).

``run_flow`` owns one of these per checkpointed run.  It decides what a
run's *fingerprint* is (design, mode, iteration budget, and the
result-affecting config knobs — but **not** ``workers``, since the
``repro.par`` pipeline is byte-identical at any worker count, a serial
checkpoint may be resumed under ``--workers N`` and vice versa), writes
a checkpoint at every stage / CR&P-iteration boundary, and loads the
newest compatible checkpoint on ``--resume``.

Failure policy, in both directions, is *the flow outlives the
checkpoint layer*:

* a failed write (bad disk, armed ``ckpt.write`` fault) counts
  ``ckpt.write_failures``, lands as a :class:`FailureReport` on
  ``FlowResult.ckpt_failures``, and the run continues un-checkpointed;
* a corrupt/stale checkpoint on load is skipped (older ones are tried)
  and reported the same way — resume degrades to a cold start instead
  of crashing.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING

from repro.ckpt.state import capture_state
from repro.ckpt.store import FORMAT_VERSION, CheckpointStore
from repro.guard.report import FailureReport
from repro.obs import get_metrics, get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core import CrpConfig
    from repro.db import Design
    from repro.groute import GlobalRouter

#: config fields that do not change results and must not make an
#: otherwise-valid checkpoint look stale
_FINGERPRINT_EXCLUDED = ("workers", "checkpoint_dir")


def run_fingerprint(
    design_name: str, mode: str, config: "CrpConfig"
) -> dict:
    """The JSON-able identity of one run's result-relevant inputs.

    The iteration budget ``k`` is deliberately absent: the CR&P
    trajectory up to iteration ``i`` does not depend on ``k``, so a
    checkpoint written at iteration ``i`` of a ``k=1`` run is
    byte-identical to one from a ``k=10`` run — resuming across
    different ``-k`` values is valid (and useful for extending runs).
    """
    cfg = {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(config)
        if f.name not in _FINGERPRINT_EXCLUDED
    }
    return {
        "format": FORMAT_VERSION,
        "design": design_name,
        "mode": mode,
        "config": cfg,
    }


class FlowCheckpointer:
    """Checkpoint writer/loader bound to one ``run_flow`` invocation."""

    def __init__(
        self,
        directory: str | Path,
        design: "Design",
        mode: str,
        config: "CrpConfig",
    ) -> None:
        self.store = CheckpointStore(directory)
        self.design = design
        self.fingerprint = run_fingerprint(design.name, mode, config)
        #: write/load problems encountered so far (surfaced on the
        #: FlowResult — informational, never fatal)
        self.failures: list[FailureReport] = []

    def save_boundary(
        self,
        *,
        stage: str,
        iteration: int,
        router: "GlobalRouter",
        rng_state: object | None = None,
        crp_stats: list | None = None,
        runtime: dict | None = None,
    ) -> Path | None:
        """Checkpoint one boundary; absorbs (and reports) any failure."""
        metrics = get_metrics()
        with get_tracer().span("ckpt.write", stage=stage, iteration=iteration):
            try:
                state = capture_state(
                    self.design,
                    router,
                    stage=stage,
                    iteration=iteration,
                    rng_state=rng_state,
                    crp_stats=crp_stats,
                    runtime=runtime,
                    metrics_raw=metrics.raw(),
                )
                return self.store.save(
                    {
                        "stage": stage,
                        "iteration": iteration,
                        "fingerprint": self.fingerprint,
                    },
                    state,
                )
            except Exception as exc:  # repro: noqa:REPRO-G002 — checkpointing must never kill the run it protects
                metrics.count("ckpt.write_failures")
                self.failures.append(
                    FailureReport.from_exception("ckpt.write", exc)
                )
                return None

    def load_resume(self) -> dict | None:
        """The newest compatible state, or ``None`` for a cold start."""
        metrics = get_metrics()
        with get_tracer().span("ckpt.load"):
            meta, state, reports = self.store.load_latest(self.fingerprint)
        self.failures.extend(reports)
        if state is None:
            metrics.count("ckpt.resume_misses")
            return None
        metrics.count("ckpt.resumes")
        metrics.gauge("ckpt.resume_iteration", float(meta.get("iteration", 0)))
        return state

"""``repro.ckpt`` — durable checkpoint/resume for the flow.

Three layers:

* :mod:`repro.ckpt.atomic` — ``atomic_write`` (temp + fsync + rename),
  the primitive every persisted artifact in the repo goes through.
* :mod:`repro.ckpt.store` — versioned, SHA-256-checksummed checkpoint
  files (:class:`CheckpointStore`); corrupt/stale files are detected
  and skipped, never trusted.
* :mod:`repro.ckpt.state` / :mod:`repro.ckpt.session` — flow-state
  snapshot & restore plus the ``run_flow``-facing driver
  (:class:`FlowCheckpointer`) that writes at stage and CR&P-iteration
  boundaries and resumes with byte-identical downstream results.

``run_flow(checkpoint_dir=..., resume=True)`` — or ``crp run
--checkpoint-dir DIR --resume`` — is the public entry point.
"""

from repro.ckpt.atomic import atomic_write
from repro.ckpt.store import (
    FORMAT_VERSION,
    CheckpointError,
    CheckpointStore,
)
from repro.ckpt.state import (
    capture_state,
    install_routes,
    positions_digest,
    restore_design,
    restore_router,
    routes_digest,
)
from repro.ckpt.session import FlowCheckpointer, run_fingerprint

__all__ = [
    "atomic_write",
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "capture_state",
    "install_routes",
    "positions_digest",
    "restore_design",
    "restore_router",
    "routes_digest",
    "FlowCheckpointer",
    "run_fingerprint",
]

"""Flow-state snapshot & restore for checkpoint/resume.

A checkpoint captures everything the flow needs to continue from a
stage or CR&P-iteration boundary with *byte-identical* downstream
results:

* cell positions (plus the CR&P critical/moved history sets the
  labeling step's ``hist_c``/``hist_m`` terms read),
* every committed route (edges + terminals) and the graph's wire/via
  demand arrays,
* the router's constructor arguments, so the replica is rebuilt with
  the same grid/cost configuration,
* the CR&P framework's RNG state and completed-iteration stats,
* the flow's per-stage runtimes and accumulated obs metrics.

Restore rebuilds a fresh :class:`GlobalRouter` over the restored
design, overwrites its demand arrays with the saved ones (integer
route increments on float64 arrays are exact, so saved demand equals
replayed demand bit-for-bit — the same discipline ``repro.par``
replicas rely on), reinstalls the committed routes, and invalidates the
cost field so every derived cost is recomputed from identical inputs.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.db import Design
    from repro.groute import GlobalRouter

#: pickle protocol used for digests (must stay fixed for comparability)
DIGEST_PROTOCOL = 4


def capture_state(
    design: "Design",
    router: "GlobalRouter",
    *,
    stage: str,
    iteration: int = 0,
    rng_state: object | None = None,
    crp_stats: list | None = None,
    runtime: dict | None = None,
    metrics_raw: dict | None = None,
) -> dict:
    """Snapshot the flow state at a stage/iteration boundary."""
    graph = router.graph
    return {
        "stage": stage,
        "iteration": iteration,
        "design": design.name,
        "positions": {
            name: (cell.x, cell.y, cell.orient)
            for name, cell in design.cells.items()
        },
        "critical_history": sorted(design.critical_history),
        "moved_history": sorted(design.moved_history),
        "routes": {
            name: (tuple(sorted(route.edges)), tuple(route.terminals))
            for name, route in router.routes.items()
        },
        "wire_usage": [arr.copy() for arr in graph.wire_usage],
        "via_usage": [arr.copy() for arr in graph.via_usage],
        "router_ctor": dict(router.ctor_args),
        "rng_state": rng_state,
        "crp_stats": list(crp_stats or []),
        "runtime": dict(runtime or {}),
        "metrics_raw": metrics_raw,
    }


def restore_design(design: "Design", state: dict) -> None:
    """Reinstate cell positions and CR&P history sets from ``state``."""
    for name, (x, y, orient) in state["positions"].items():
        cell = design.cells.get(name)
        if cell is None:
            raise ValueError(f"checkpoint references unknown cell {name!r}")
        if (cell.x, cell.y, cell.orient) != (x, y, orient):
            design.move_cell(name, x, y, orient)
    design.critical_history = set(state["critical_history"])
    design.moved_history = set(state["moved_history"])


def restore_router(design: "Design", state: dict) -> "GlobalRouter":
    """Rebuild a router carrying the checkpointed routing state.

    ``restore_design`` must run first so the router's fixed-usage and
    terminal queries see the checkpointed placement.
    """
    from repro.groute import GlobalRouter

    router = GlobalRouter(design, **state["router_ctor"])
    return install_routes(router, state)


def install_routes(router: "GlobalRouter", state: dict) -> "GlobalRouter":
    """Overwrite a virgin router's routes + demand with ``state``'s."""
    from repro.groute.router import NetRoute

    graph = router.graph
    for arr, saved in zip(graph.wire_usage, state["wire_usage"]):
        arr[:] = saved
    for arr, saved in zip(graph.via_usage, state["via_usage"]):
        arr[:] = saved
    router.routes.clear()
    router._edge_nets.clear()
    for name, (edges, terminals) in state["routes"].items():
        route = NetRoute(net=name, edges=set(edges), terminals=list(terminals))
        router.routes[name] = route
        for edge in route.edges:
            router._edge_nets.setdefault(edge, set()).add(name)
    router.invalidate_cost_fields()
    return router


# ----------------------------------------------------------------- digests


def routes_digest(router: "GlobalRouter") -> str:
    """SHA-256 over the canonical committed-routes serialization.

    Used by the parity tests and the CI ``ckpt`` job to assert that a
    resumed run's final routes are byte-identical to an uninterrupted
    run's.
    """
    canon = tuple(
        (name, tuple(sorted(router.routes[name].edges)))
        for name in sorted(router.routes)
    )
    return hashlib.sha256(
        pickle.dumps(canon, protocol=DIGEST_PROTOCOL)
    ).hexdigest()


def positions_digest(design: "Design") -> str:
    """SHA-256 over the canonical cell-placement serialization."""
    canon = tuple(
        (name, cell.x, cell.y, cell.orient.value)
        for name, cell in sorted(design.cells.items())
    )
    return hashlib.sha256(
        pickle.dumps(canon, protocol=DIGEST_PROTOCOL)
    ).hexdigest()

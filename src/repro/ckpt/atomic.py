"""Atomic file writes: temp file + fsync + ``os.rename``.

Every persisted artifact in this repo — checkpoints, ``BENCH_*.json``
baselines, trace dumps, analyze reports — must never be observable in a
half-written state: a truncated JSON baseline poisons CI gates, and a
truncated checkpoint would make a crash *worse* by corrupting the very
state that was supposed to survive it.  ``atomic_write`` guarantees a
reader sees either the old content or the complete new content, never a
prefix: the bytes land in a temp file in the *same directory* (so the
rename cannot cross filesystems), are fsync'd to disk, and are then
renamed over the target in one atomic step.

This module is dependency-free on purpose (stdlib only, no ``repro``
imports) so anything — exporters, scripts, the linter's fix hint — can
use it without import cycles.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write(path: str | os.PathLike, data: bytes | str) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path.

    ``str`` data is encoded as UTF-8.  On any failure the temp file is
    removed and the original ``path`` content (if any) is untouched.
    """
    target = Path(path)
    payload = data.encode("utf-8") if isinstance(data, str) else data
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target

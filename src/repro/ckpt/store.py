"""Durable checkpoint files: versioned, checksummed, atomically written.

On-disk layout of one checkpoint (``ckpt-0003-CRP2.ckpt``)::

    MAGIC            b"RPCKPT1\\n"
    header length    8 bytes, big-endian
    header           JSON: {"format": 1, "sha256": ..., "meta": {...}}
    payload          canonical pickle (fixed protocol) of the state

The SHA-256 in the header is computed over the canonical pickle payload
and verified on every load, so a torn write, bit rot, or a truncated
file is *detected* (raising :class:`CheckpointError`) instead of
silently resuming from garbage.  Files are written through
:func:`repro.ckpt.atomic.atomic_write` (temp + fsync + rename), so a
crash during checkpointing leaves the previous checkpoint intact.

The small JSON header is readable without unpickling the payload, which
is what lets :meth:`CheckpointStore.load_latest` reject format-version
and fingerprint (stale-run) mismatches cheaply before touching the
payload bytes.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import re
from pathlib import Path

from repro.ckpt.atomic import atomic_write
from repro.guard.deadline import DeadlineExceeded
from repro.guard.faults import fault_point
from repro.guard.report import FailureReport
from repro.obs import get_metrics

MAGIC = b"RPCKPT1\n"
#: bump when the payload schema changes incompatibly
FORMAT_VERSION = 1
#: fixed pickle protocol so payload bytes (and their digest) are stable
#: across interpreter versions that share the protocol
PICKLE_PROTOCOL = 4

_NAME_RE = re.compile(r"^ckpt-(\d{4})-[A-Za-z0-9_]+\.ckpt$")


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupt, truncated, or incompatible."""


class CheckpointStore:
    """One directory of ordered checkpoints for a single flow run."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # --------------------------------------------------------------- paths

    def paths(self) -> list[Path]:
        """Checkpoint files in ascending sequence order."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in sorted(self.directory.iterdir()):
            match = _NAME_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _, path in sorted(found)]

    def _next_index(self) -> int:
        paths = self.paths()
        if not paths:
            return 0
        return int(_NAME_RE.match(paths[-1].name).group(1)) + 1

    # --------------------------------------------------------------- write

    def save(self, meta: dict, state: object) -> Path:
        """Write one checkpoint; returns its path.

        ``meta`` must be JSON-able (it lands in the header); ``state``
        is the pickled payload.  Raises on failure — callers that must
        survive a bad disk wrap this (see ``FlowCheckpointer.save``).
        """
        fault_point("ckpt.write")
        payload = pickle.dumps(state, protocol=PICKLE_PROTOCOL)
        header = {
            "format": FORMAT_VERSION,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "meta": meta,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        blob = (
            MAGIC
            + len(header_bytes).to_bytes(8, "big")
            + header_bytes
            + payload
        )
        stage = re.sub(r"[^A-Za-z0-9_]", "", str(meta.get("stage", "state")))
        iteration = meta.get("iteration")
        suffix = f"{stage}{iteration}" if iteration is not None else stage
        path = self.directory / f"ckpt-{self._next_index():04d}-{suffix}.ckpt"
        atomic_write(path, blob)
        metrics = get_metrics()
        metrics.count("ckpt.writes")
        metrics.observe("ckpt.write_bytes", len(blob))
        return path

    # ---------------------------------------------------------------- read

    def read_header(self, path: Path) -> dict:
        """The JSON header of ``path`` (no payload verification)."""
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise CheckpointError(f"{path.name}: bad magic (not a checkpoint)")
            raw_len = handle.read(8)
            if len(raw_len) != 8:
                raise CheckpointError(f"{path.name}: truncated header length")
            header_len = int.from_bytes(raw_len, "big")
            header_bytes = handle.read(header_len)
            if len(header_bytes) != header_len:
                raise CheckpointError(f"{path.name}: truncated header")
        try:
            header = json.loads(header_bytes)
        except ValueError as exc:
            raise CheckpointError(f"{path.name}: unreadable header: {exc}") from exc
        if header.get("format") != FORMAT_VERSION:
            raise CheckpointError(
                f"{path.name}: format version {header.get('format')!r} "
                f"(this build reads {FORMAT_VERSION})"
            )
        return header

    def load(self, path: Path) -> tuple[dict, object]:
        """Verify and unpickle one checkpoint; ``(meta, state)``.

        Raises :class:`CheckpointError` on magic/version/checksum
        mismatch or a truncated payload.
        """
        fault_point("ckpt.load")
        header = self.read_header(path)
        offset = len(MAGIC) + 8 + len(
            json.dumps(header, sort_keys=True).encode("utf-8")
        )
        with open(path, "rb") as handle:
            handle.seek(offset)
            payload = handle.read()
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise CheckpointError(
                f"{path.name}: payload checksum mismatch "
                f"(stored {str(header.get('sha256'))[:12]}…, got {digest[:12]}…)"
            )
        try:
            state = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(f"{path.name}: unpicklable payload: {exc}") from exc
        get_metrics().count("ckpt.loads")
        return header.get("meta", {}), state

    def load_latest(
        self, fingerprint: dict | None = None
    ) -> tuple[dict | None, object | None, list[FailureReport]]:
        """The newest loadable, fingerprint-matching checkpoint.

        Walks checkpoints newest-first.  Corrupt or truncated files are
        *skipped* (each one becomes a :class:`FailureReport` in the
        returned list, and counts ``ckpt.load_failures``) rather than
        crashing the resume; a checkpoint whose recorded fingerprint
        does not match ``fingerprint`` is stale (different design, mode,
        or config) and is likewise skipped, counting ``ckpt.stale``.
        Returns ``(None, None, reports)`` when nothing usable exists.
        """
        metrics = get_metrics()
        reports: list[FailureReport] = []
        for path in reversed(self.paths()):
            try:
                meta, state = self.load(path)
            except DeadlineExceeded:
                raise
            except Exception as exc:
                metrics.count("ckpt.load_failures")
                reports.append(
                    FailureReport(
                        stage="ckpt.load",
                        error_type=type(exc).__name__,
                        message=str(exc),
                    )
                )
                continue
            if fingerprint is not None and meta.get("fingerprint") != fingerprint:
                metrics.count("ckpt.stale")
                reports.append(
                    FailureReport(
                        stage="ckpt.load",
                        error_type="StaleCheckpoint",
                        message=(
                            f"{path.name}: fingerprint mismatch "
                            "(different design/mode/config) — skipped"
                        ),
                    )
                )
                continue
            return meta, state, reports
        return None, None, reports

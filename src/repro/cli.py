"""Command-line interface: ``crp`` (or ``python -m repro``).

Subcommands:

* ``crp table2`` — print the synthetic suite statistics (Table II).
* ``crp run -b ispd18_test2 -m crp -k 10`` — one flow run; add
  ``--profile`` for the span tree and ``--trace-out trace.json`` for a
  machine-readable trace.
* ``crp suite -b ispd18_test1 ispd18_test2`` — Table III rows for the
  given designs (baseline, [18], CR&P k=1, CR&P k=10).
* ``crp profile ispd18_test1`` — run the flow under full observation,
  print the per-stage span tree + metrics, and write ``BENCH_obs.json``.
* ``crp dump -b ispd18_test2 -o outdir`` — write LEF/DEF/guides for a
  synthetic benchmark.
* ``crp check -b ispd18_test1 --crp 2`` — route a benchmark, then audit
  the flow invariants (demand accounting, route connectivity, guide
  coverage, placement legality); ``python -m repro.analyze src/`` is
  the companion source-code linter.
* ``crp analyze [--json PATH] [--no-dataflow] [-b DESIGN]`` — run the
  whole static-analysis stack (AST linter + interprocedural dataflow)
  in one shot, optionally followed by the flow-invariant audit of a
  routed benchmark; one combined exit code.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crp",
        description="CR&P (DATE 2022) reproduction flows",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table2 = sub.add_parser("table2", help="print suite statistics")

    p_run = sub.add_parser("run", help="run one flow")
    p_run.add_argument("-b", "--bench", required=True)
    p_run.add_argument(
        "-m", "--mode", default="crp", choices=("baseline", "crp", "fontana")
    )
    p_run.add_argument("-k", "--iterations", type=int, default=1)
    p_run.add_argument("--skip-detailed", action="store_true")
    p_run.add_argument(
        "--profile", action="store_true",
        help="print the per-stage span tree and metrics after the run",
    )
    p_run.add_argument(
        "--trace-out", metavar="PATH",
        help="write the JSON span trace (+ metrics) to this path",
    )
    p_run.add_argument(
        "--budget", type=float, metavar="S",
        help="wall-clock budget for the whole flow in seconds",
    )
    p_run.add_argument(
        "--stage-budget", type=float, metavar="S",
        help="wall-clock budget per flow stage in seconds",
    )
    p_run.add_argument(
        "--workers", type=int, metavar="N",
        help="parallel workers for global/detailed routing + estimation "
        "(1 = batched serial; default: CRP_WORKERS env or classic serial)",
    )
    p_run.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write atomic repro.ckpt checkpoints at stage/iteration "
        "boundaries (default: CRP_CHECKPOINT_DIR env or off)",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="resume from the newest compatible checkpoint in "
        "--checkpoint-dir (byte-identical final routes/quality)",
    )

    p_profile = sub.add_parser(
        "profile",
        help="run a flow under full observation and emit BENCH_obs.json",
    )
    p_profile.add_argument("bench", nargs="+", help="benchmark design name(s)")
    p_profile.add_argument(
        "-m", "--mode", default="crp", choices=("baseline", "crp", "fontana")
    )
    p_profile.add_argument("-k", "--iterations", type=int, default=1)
    p_profile.add_argument("--skip-detailed", action="store_true")
    p_profile.add_argument(
        "-o", "--out", default="BENCH_obs.json",
        help="output document path (default: BENCH_obs.json)",
    )

    p_suite = sub.add_parser("suite", help="Table III rows for designs")
    p_suite.add_argument("-b", "--bench", nargs="+", required=True)
    p_suite.add_argument("--k10", action="store_true", help="include k=10")

    p_dump = sub.add_parser("dump", help="write LEF/DEF/guide files")
    p_dump.add_argument("-b", "--bench", required=True)
    p_dump.add_argument("-o", "--out", default=".")

    p_check = sub.add_parser(
        "check",
        help="audit flow invariants (accounting/connectivity/legality/ILP)",
    )
    p_check.add_argument(
        "-b", "--bench", "--design", dest="bench", default="ispd18_test1",
        help="benchmark design to route and audit (default: ispd18_test1)",
    )
    p_check.add_argument(
        "--crp", type=int, default=0, metavar="K",
        help="run K CR&P iterations before auditing",
    )
    p_check.add_argument(
        "--skip-routing", action="store_true",
        help="audit placement legality only (no global routing run)",
    )
    p_check.add_argument(
        "--json", metavar="PATH",
        help="write the JSON (SARIF-lite) report to this path",
    )

    p_analyze = sub.add_parser(
        "analyze",
        help="run every analyzer: lint + interprocedural dataflow "
        "(+ flow invariants with -b)",
    )
    p_analyze.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p_analyze.add_argument(
        "--no-dataflow", action="store_true",
        help="skip the interprocedural dataflow passes",
    )
    p_analyze.add_argument(
        "-b", "--bench", default=None, metavar="DESIGN",
        help="also route this benchmark and audit the flow invariants",
    )
    p_analyze.add_argument(
        "--crp", type=int, default=0, metavar="K",
        help="with -b: run K CR&P iterations before auditing",
    )
    p_analyze.add_argument(
        "--json", metavar="PATH",
        help="write the combined JSON (SARIF-lite) report to this path",
    )

    p_show = sub.add_parser("show", help="ASCII congestion map + SVG plot")
    p_show.add_argument("-b", "--bench", required=True)
    p_show.add_argument("--svg", help="write an SVG die plot to this path")
    p_show.add_argument(
        "--crp", type=int, default=0, metavar="K",
        help="run K CR&P iterations before rendering",
    )

    args = parser.parse_args(argv)
    if args.command == "table2":
        return _cmd_table2()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "dump":
        return _cmd_dump(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "show":
        return _cmd_show(args)
    return 2


def _cmd_table2() -> int:
    from repro.benchgen import suite_table

    header = f"{'circuit':<16}{'#nets':>8}{'#cells':>8}  node    (paper: nets/cells)"
    print(header)
    print("-" * len(header))
    for row in suite_table():
        print(
            f"{row['circuit']:<16}{row['nets']:>8}{row['cells']:>8}"
            f"  {row['tech_node']:<6}  ({row['paper_nets']}/{row['paper_cells']})"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.benchgen import make_design
    from repro.flow import run_flow

    import os

    if args.resume and not (
        args.checkpoint_dir or os.environ.get("CRP_CHECKPOINT_DIR", "").strip()
    ):
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    design = make_design(args.bench)
    result = run_flow(
        design,
        mode=args.mode,
        crp_iterations=args.iterations,
        skip_detailed=args.skip_detailed,
        budget_s=args.budget,
        stage_budget_s=args.stage_budget,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    print(result.summary())
    if result.resumed_from is not None:
        print(f"  resumed from checkpoint {result.resumed_from}")
    for report in result.ckpt_failures:
        print(f"  checkpoint warning: {report.summary()}", file=sys.stderr)
    if result.failure is not None:
        print(f"  failure: {result.failure.summary()}", file=sys.stderr)
    if result.quality:
        print(
            f"  score={result.quality.score:.1f} "
            f"drvs={result.quality.drv_breakdown}"
        )
    print(f"  runtime: {({k: round(v, 2) for k, v in result.runtime.items()})}")
    if args.profile and result.trace is not None:
        from repro.obs import render_metrics, render_tree

        print()
        print(render_tree(result.trace))
        print()
        print(render_metrics(result.metrics or {}))
    if args.trace_out and result.trace is not None:
        from repro.obs import write_trace

        path = write_trace(
            args.trace_out,
            [result.trace],
            result.metrics,
            extra={"design": result.design, "mode": result.mode},
        )
        print(f"wrote trace to {path}")
    if result.failed or not result.legal:
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import profile_flow, write_bench_obs

    reports = []
    for bench in args.bench:
        report = profile_flow(
            bench,
            mode=args.mode,
            iterations=args.iterations,
            skip_detailed=args.skip_detailed,
        )
        reports.append(report)
        print(report.render())
        print()
    path = write_bench_obs(reports, args.out)
    print(f"wrote {path}")
    if any(r.failed or not r.legal for r in reports):
        return 1
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.benchgen import make_design
    from repro.flow import run_flow

    modes: list[tuple[str, int]] = [("baseline", 0), ("fontana", 0), ("crp", 1)]
    if args.k10:
        modes.append(("crp", 10))
    rc = 0
    for bench in args.bench:
        rows = {}
        for mode, k in modes:
            design = make_design(bench)
            result = run_flow(design, mode=mode, crp_iterations=max(k, 1))
            rows[(mode, k)] = result
        base = rows[("baseline", 0)].quality
        print(f"== {bench} ==")
        for (mode, k), result in rows.items():
            if result.failed or result.quality is None or base is None:
                print(f"  {mode:<10} FAILED")
                rc = 1
                continue
            if not result.legal:
                rc = 1
            imp = result.quality.improvement_over(base)
            label = f"{mode}{f' k={k}' if k else ''}"
            print(
                f"  {label:<12} wl={result.quality.wirelength_dbu:>10} "
                f"({imp['wirelength']:+.2f}%) vias={result.quality.vias:>7} "
                f"({imp['vias']:+.2f}%) drvs={result.quality.drvs}"
            )
    return rc


def _cmd_dump(args: argparse.Namespace) -> int:
    from repro.benchgen import SUITE, make_design
    from repro.db import check_legality
    from repro.groute import GlobalRouter
    from repro.lefdef import write_def, write_guides, write_lef

    design = make_design(args.bench)
    legality = check_legality(design)
    if not legality.is_legal:
        print(
            f"refusing to dump an illegal placement "
            f"({len(legality.violations)} violations)",
            file=sys.stderr,
        )
        return 1
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{args.bench}.lef").write_text(write_lef(design.tech))
    (out / f"{args.bench}.def").write_text(write_def(design))
    router = GlobalRouter(design)
    router.route_all()
    (out / f"{args.bench}.guide").write_text(
        write_guides(router.guides(), design.tech)
    )
    print(f"wrote {args.bench}.lef/.def/.guide to {out}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analyze import (
        FLOW_RULES,
        check_flow_state,
        render_findings,
        report_document,
        write_report,
    )
    from repro.benchgen import make_design
    from repro.core import CrpConfig, CrpFramework
    from repro.groute import GlobalRouter
    from repro.obs import ensure_observation

    design = make_design(args.bench)
    with ensure_observation():
        router = None
        if not args.skip_routing:
            router = GlobalRouter(design)
            router.route_all()
            if args.crp > 0:
                CrpFramework(design, router, CrpConfig(seed=0)).run(args.crp)
        findings = check_flow_state(design, router)
    print(render_findings(findings))
    if args.json:
        document = report_document(
            findings,
            tool="repro.analyze.check",
            rule_table=FLOW_RULES,
            extra={"design": args.bench, "crp_iterations": args.crp},
        )
        path = write_report(args.json, document)
        print(f"wrote report to {path}")
    return 1 if findings else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analyze import (
        analysis_report,
        check_flow_state,
        render_findings,
        run_source_analysis,
        write_report,
    )

    analysis = run_source_analysis(
        list(args.paths), dataflow=not args.no_dataflow
    )
    print(
        render_findings(analysis.findings, suppressed=analysis.suppressed)
    )
    print(f"scanned {analysis.files_scanned} file(s)")
    for path, message in analysis.parse_errors:
        print(f"  parse error: {path}: {message}", file=sys.stderr)

    flow_findings = []
    if args.bench is not None:
        from repro.benchgen import make_design
        from repro.core import CrpConfig, CrpFramework
        from repro.groute import GlobalRouter
        from repro.obs import ensure_observation

        design = make_design(args.bench)
        with ensure_observation():
            router = GlobalRouter(design)
            router.route_all()
            if args.crp > 0:
                CrpFramework(design, router, CrpConfig(seed=0)).run(args.crp)
            flow_findings = check_flow_state(design, router)
        print()
        print(f"== flow invariants: {args.bench} ==")
        print(render_findings(flow_findings))

    if args.json:
        document = analysis_report(analysis)
        if args.bench is not None:
            from repro.analyze import FLOW_RULES, finding_to_dict

            document["flow"] = {
                "design": args.bench,
                "crp_iterations": args.crp,
                "rules": FLOW_RULES,
                "findings": [finding_to_dict(f) for f in flow_findings],
            }
        path = write_report(args.json, document)
        print(f"wrote report to {path}")
    return 0 if analysis.ok and not flow_findings else 1


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.benchgen import make_design
    from repro.core import CrpConfig, CrpFramework
    from repro.db import check_legality
    from repro.groute import GlobalRouter
    from repro.viz import congestion_heatmap, layer_usage_table, svg_die_plot

    design = make_design(args.bench)
    router = GlobalRouter(design)
    router.route_all()
    if args.crp > 0:
        CrpFramework(design, router, CrpConfig(seed=0)).run(args.crp)
    legal = check_legality(design).is_legal
    print(f"{args.bench}: wl={router.total_wirelength_dbu()} "
          f"vias={router.total_vias()} overflow={router.total_overflow():.1f}"
          f"{'' if legal else ' !ILLEGAL-PLACEMENT'}")
    print()
    print(congestion_heatmap(router))
    print()
    print(layer_usage_table(router))
    if args.svg:
        nets = sorted(design.nets)[:20]
        Path(args.svg).write_text(svg_die_plot(design, router, nets=nets))
        print(f"\nwrote {args.svg}")
    return 0 if legal else 1


if __name__ == "__main__":
    sys.exit(main())

"""Synthetic standard-cell technology libraries (45 nm / 32 nm flavours)."""

from __future__ import annotations

from repro.geom import Rect
from repro.tech import (
    Layer,
    LayerDirection,
    Macro,
    MacroPin,
    PinDirection,
    PinShape,
    Site,
    Technology,
)

#: (name, width in sites, input pins, output pins)
_CELL_SHAPES: list[tuple[str, int, list[str], list[str]]] = [
    ("INV_X1", 2, ["A"], ["Y"]),
    ("BUF_X2", 3, ["A"], ["Y"]),
    ("NAND2_X1", 3, ["A", "B"], ["Y"]),
    ("NOR2_X1", 3, ["A", "B"], ["Y"]),
    ("XOR2_X1", 4, ["A", "B"], ["Y"]),
    ("AOI22_X1", 5, ["A1", "A2", "B1", "B2"], ["Y"]),
    ("DFF_X1", 8, ["D", "CK"], ["Q", "QN"]),
]


def build_tech(node: str = "45nm", num_layers: int = 9) -> Technology:
    """A Technology shaped like the contest's: 9 metals, one CORE site.

    ``node`` scales the geometry: the 32 nm flavour uses a finer site and
    tighter pitches, mirroring how ispd18_test4-10 differ from test1-3.
    """
    if node == "45nm":
        site_width, row_height, pitch = 200, 1400, 200
    elif node == "32nm":
        # Row height is a pitch multiple so FS rows keep pins on-track.
        site_width, row_height, pitch = 150, 1050, 150
    else:
        raise ValueError(f"unknown node {node!r}")

    tech = Technology(name=f"synth_{node}", dbu_per_micron=1000)
    tech.add_site(Site("core", site_width, row_height))
    width = pitch * 3 // 10
    spacing = pitch - width
    for index in range(num_layers):
        direction = (
            LayerDirection.HORIZONTAL if index % 2 == 0 else LayerDirection.VERTICAL
        )
        tech.add_layer(
            Layer(
                name=f"Metal{index + 1}",
                index=index,
                direction=direction,
                pitch=pitch,
                width=width,
                spacing=spacing,
                min_area=2 * width * width,
                offset=pitch // 2,
            )
        )
    tech.make_default_vias()

    for name, width_sites, inputs, outputs in _CELL_SHAPES:
        macro = _make_macro(
            name, width_sites, inputs, outputs, site_width, row_height, pitch
        )
        tech.add_macro(macro)
    return tech


def _make_macro(
    name: str,
    width_sites: int,
    inputs: list[str],
    outputs: list[str],
    site_width: int,
    row_height: int,
    pitch: int,
) -> Macro:
    """A macro with evenly spread Metal1 pin landing pads."""
    width = width_sites * site_width
    macro = Macro(name=name, width=width, height=row_height, site_name="core")
    pin_names = [(p, PinDirection.INPUT) for p in inputs] + [
        (p, PinDirection.OUTPUT) for p in outputs
    ]
    # Pins land exactly on track crossings so detailed-routing access is
    # unambiguous: x on distinct vertical tracks, a shared mid-cell y.
    # Cells are site-aligned and site_width == pitch, and the track offset
    # is pitch/2, so macro-local offset + k*pitch stays on-track after
    # placement; row_height is a pitch multiple so FS flips stay on-track.
    offset = pitch // 2
    x_tracks = list(range(offset, width, pitch))
    if len(x_tracks) < len(pin_names):
        raise ValueError(f"macro {name}: more pins than vertical tracks")
    # Stagger pin rows across the middle horizontal tracks so cells in a
    # row do not contend for a single M3 track; the middle tracks map to
    # middle tracks under an FS flip, keeping pins on-track in odd rows.
    y_tracks = list(range(offset, row_height, pitch))
    middle = y_tracks[1:-1] or y_tracks
    pad = max(20, pitch // 4)
    stride = max(1, len(x_tracks) // len(pin_names))
    for i, (pin_name, direction) in enumerate(pin_names):
        cx = x_tracks[min(i * stride, len(x_tracks) - 1)]
        cy = middle[i % len(middle)]
        rect = Rect(cx - pad, cy - pad, cx + pad, cy + pad)
        pin = MacroPin(name=pin_name, direction=direction)
        pin.shapes.append(PinShape(layer=0, rect=rect))
        macro.add_pin(pin)
    return macro

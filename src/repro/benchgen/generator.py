"""The synthetic design generator.

Produces fully legal, routable, row-based designs whose statistics are
controlled by a :class:`DesignSpec`: cell/net counts, placement
utilization, netlist locality (the knob that creates congestion), and
optional fixed macro blockages that carve routing hot-spots.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.geom import Orientation, Point, Rect
from repro.db import Blockage, Cell, Design, IOPin, Net, NetPin, Row
from repro.db.design import GCellGridSpec
from repro.tech import PinDirection, Technology
from repro.benchgen.techlib import build_tech


@dataclass(slots=True)
class DesignSpec:
    """Parameters of one synthetic benchmark."""

    name: str
    num_cells: int
    num_nets: int
    node: str = "45nm"
    utilization: float = 0.85
    #: fraction of net sinks drawn from the driver's neighbourhood
    locality: float = 0.8
    #: neighbourhood radius in row heights
    locality_radius_rows: int = 4
    num_blockages: int = 0
    num_iopins: int = 16
    gcells_per_axis: int = 24
    seed: int = 0
    #: net degree distribution as (degree, weight) pairs
    degree_weights: list[tuple[int, float]] = field(
        default_factory=lambda: [(2, 0.55), (3, 0.25), (4, 0.12), (5, 0.05), (8, 0.03)]
    )

    def rng(self) -> random.Random:
        """The spec's seeded generator stream.

        This is the *only* RNG construction point in the generator:
        every helper takes the stream as an explicit parameter, no path
        touches the module-level ``random`` functions, and each
        placement attempt restarts the stream so retries are
        self-contained.  A design is therefore a pure function of its
        spec — identical bytes in any process, including ``spawn``-ed
        parallel workers that re-import everything from scratch.
        """
        return random.Random(self.seed)


def generate_design(spec: DesignSpec, tech: Technology | None = None) -> Design:
    """Generate a legal placed design from ``spec``.

    The result is deterministic in ``spec.seed`` (see
    :meth:`DesignSpec.rng`).  Blockage area is random, so the die is
    grown and placement retried if the first attempt cannot fit every
    cell.
    """
    last_error: Exception | None = None
    for attempt in range(6):
        try:
            return _generate_once(
                spec, tech, grow=1.0 + 0.1 * attempt, rng=spec.rng()
            )
        except RuntimeError as error:
            last_error = error
    raise RuntimeError(f"{spec.name}: generation failed: {last_error}")


def _generate_once(
    spec: DesignSpec,
    tech: Technology | None,
    grow: float,
    rng: random.Random,
) -> Design:
    if tech is None:
        tech = build_tech(spec.node)
    site = tech.default_site()

    macros = list(tech.macros.values())
    weights = [max(1.0, 8.0 - m.width / site.width) for m in macros]
    chosen = rng.choices(macros, weights=weights, k=spec.num_cells)
    total_width_sites = sum(m.width // site.width for m in chosen)

    # Near-square die: rows x sites_per_row sized for the target utilization.
    sites_needed = grow * total_width_sites / max(0.05, spec.utilization)
    # Reserve room for the randomly sized blockages up front.
    sites_needed *= 1.0 + 0.18 * spec.num_blockages
    aspect = site.height / site.width  # sites per row ~ rows * aspect
    num_rows = max(2, int(round(math.sqrt(sites_needed / aspect))))
    sites_per_row = max(8, int(math.ceil(sites_needed / num_rows)))

    die = Rect(0, 0, sites_per_row * site.width, num_rows * site.height)
    design = Design(spec.name, tech, die)
    for r in range(num_rows):
        design.add_row(
            Row(
                name=f"ROW_{r}",
                site=site,
                origin_x=0,
                origin_y=r * site.height,
                num_sites=sites_per_row,
                orient=Orientation.for_row(r),
            )
        )
    _make_gcell_grid(design, spec)
    blocked_rects = _add_blockages(design, spec, rng)
    _place_cells(design, chosen, blocked_rects, rng)
    _add_iopins(design, spec, rng)
    _build_netlist(design, spec, rng)
    return design


def _make_gcell_grid(design: Design, spec: DesignSpec) -> None:
    die = design.die
    step_x = max(1, die.width // spec.gcells_per_axis)
    step_y = max(1, die.height // spec.gcells_per_axis)
    design.gcell_grid = GCellGridSpec(
        origin_x=die.lx,
        origin_y=die.ly,
        step_x=step_x,
        step_y=step_y,
        nx=max(1, -(-die.width // step_x)),
        ny=max(1, -(-die.height // step_y)),
    )


def _add_blockages(
    design: Design, spec: DesignSpec, rng: random.Random
) -> list[Rect]:
    """Fixed macro-like blockages (placement + lower-metal routing)."""
    rects: list[Rect] = []
    die = design.die
    site = design.tech.default_site()
    for b in range(spec.num_blockages):
        w = rng.randint(die.width // 10, die.width // 5)
        h_rows = rng.randint(2, max(2, len(design.rows) // 5))
        h = h_rows * site.height
        lx = rng.randint(0, max(0, die.width - w))
        lx -= lx % site.width
        row = rng.randint(0, max(0, len(design.rows) - h_rows))
        ly = row * site.height
        rect = Rect(lx, ly, min(lx + w, die.ux), min(ly + h, die.uy))
        rects.append(rect)
        design.add_blockage(Blockage(-1, rect))
        for layer in range(min(4, design.tech.num_layers)):
            design.add_blockage(Blockage(layer, rect))
    return rects


def _place_cells(
    design: Design,
    chosen_macros: list,
    blocked_rects: list[Rect],
    rng: random.Random,
) -> None:
    """Row-fill placement with randomly distributed free sites."""
    site = design.tech.default_site()
    rows = design.rows
    row_free: list[list[tuple[int, int]]] = []
    for row in rows:
        spans = [(0, row.num_sites)]
        for rect in blocked_rects:
            overlap = rect.intersection(row.bbox())
            if overlap is None or overlap.width == 0 or overlap.height == 0:
                continue
            s0 = max(0, overlap.lx // site.width)
            s1 = min(row.num_sites, -(-overlap.ux // site.width))
            spans = _cut_spans(spans, s0, s1)
        row_free.append(spans)

    total_free = sum(e - s for spans in row_free for s, e in spans)
    need = sum(m.width // site.width for m in chosen_macros)
    slack = max(0, total_free - need)

    order = list(chosen_macros)
    rng.shuffle(order)
    index = 0
    cursor: list[tuple[int, int]] = []  # (row, span index) walk state
    flat: list[tuple[int, int, int]] = []  # (row, span start, span end)
    for r, spans in enumerate(row_free):
        for s, e in spans:
            flat.append((r, s, e))
    rng.shuffle(flat)

    placed = 0
    for r, start, end in flat:
        position = start
        row = rows[r]
        while index < len(order) and position < end:
            macro = order[index]
            width_sites = macro.width // site.width
            if position + width_sites > end:
                break
            # Insert random gaps so free space is spread, not banked at ends.
            if slack > 0 and rng.random() < 0.3:
                gap = rng.randint(1, max(1, min(3, slack)))
                gap = min(gap, end - position - width_sites)
                if gap > 0:
                    position += gap
                    slack -= gap
            if position + width_sites > end:
                break
            design.add_cell(
                Cell(
                    name=f"c{placed}",
                    macro=macro,
                    x=row.site_x(position),
                    y=row.origin_y,
                    orient=row.orient,
                )
            )
            placed += 1
            index += 1
            position += width_sites
        if index >= len(order):
            break
    if index < len(order):
        raise RuntimeError(
            f"{design.name}: could not place all cells "
            f"({index}/{len(order)} placed); lower utilization"
        )


def _cut_spans(
    spans: list[tuple[int, int]], s0: int, s1: int
) -> list[tuple[int, int]]:
    result: list[tuple[int, int]] = []
    for s, e in spans:
        if s1 <= s or s0 >= e:
            result.append((s, e))
            continue
        if s < s0:
            result.append((s, s0))
        if s1 < e:
            result.append((s1, e))
    return result


def _add_iopins(design: Design, spec: DesignSpec, rng: random.Random) -> None:
    die = design.die
    top_layer = design.tech.num_layers - 1
    pad = 50
    for i in range(spec.num_iopins):
        side = i % 4
        if side == 0:
            point = Point(rng.randint(die.lx, die.ux), die.ly)
        elif side == 1:
            point = Point(rng.randint(die.lx, die.ux), die.uy)
        elif side == 2:
            point = Point(die.lx, rng.randint(die.ly, die.uy))
        else:
            point = Point(die.ux, rng.randint(die.ly, die.uy))
        design.add_iopin(
            IOPin(
                name=f"io{i}",
                point=point,
                layer=rng.randint(max(0, top_layer - 2), top_layer),
                rect=Rect(point.x - pad, point.y - pad, point.x + pad, point.y + pad),
                direction=PinDirection.INPUT if i % 2 else PinDirection.OUTPUT,
            )
        )


def _build_netlist(design: Design, spec: DesignSpec, rng: random.Random) -> None:
    """Clustered netlist: drivers connect mostly to nearby sinks.

    Each cell's pins are single-use, as in a real netlist; a net is a
    driver output pin plus input pins of the sinks.  ``spec.locality``
    controls the local/global mix, which in turn controls congestion.
    """
    cells = list(design.cells.values())
    free_outputs: dict[str, list[str]] = {}
    free_inputs: dict[str, list[str]] = {}
    for cell in cells:
        outs = [
            p.name
            for p in cell.macro.pins.values()
            if p.direction is PinDirection.OUTPUT
        ]
        ins = [
            p.name
            for p in cell.macro.pins.values()
            if p.direction is PinDirection.INPUT
        ]
        rng.shuffle(outs)
        rng.shuffle(ins)
        free_outputs[cell.name] = outs
        free_inputs[cell.name] = ins

    radius = spec.locality_radius_rows * design.tech.default_site().height
    degrees = [d for d, _ in spec.degree_weights]
    weights = [w for _, w in spec.degree_weights]
    io_names = list(design.iopins)
    rng.shuffle(io_names)

    driver_pool = [c.name for c in cells]
    rng.shuffle(driver_pool)
    made = 0
    attempts = 0
    max_attempts = spec.num_nets * 30
    while made < spec.num_nets and attempts < max_attempts:
        attempts += 1
        if not driver_pool:
            break
        driver = driver_pool[made % len(driver_pool)]
        if not free_outputs[driver]:
            driver_pool.remove(driver)
            continue
        degree = rng.choices(degrees, weights=weights)[0]
        sinks = _pick_sinks(
            design, driver, degree - 1, radius, spec.locality, free_inputs, rng
        )
        if not sinks:
            continue
        net = Net(f"net{made}")
        out_pin = free_outputs[driver].pop()
        net.add_pin(NetPin(driver, out_pin))
        for sink in sinks:
            net.add_pin(NetPin(sink, free_inputs[sink].pop()))
        # A small share of nets also reach an I/O pin (chip ports).
        if io_names and rng.random() < min(0.2, 4.0 * len(io_names) / spec.num_nets):
            net.add_pin(NetPin(None, io_names.pop()))
        design.add_net(net)
        made += 1


def _pick_sinks(
    design: Design,
    driver: str,
    count: int,
    radius: int,
    locality: float,
    free_inputs: dict[str, list[str]],
    rng: random.Random,
) -> list[str]:
    center = design.cells[driver].center
    window = Rect(
        center.x - radius, center.y - radius, center.x + radius, center.y + radius
    )
    local = [
        name
        for name in design.spatial.query(window, strict=False)
        if name != driver and free_inputs[name]
    ]
    everyone = [
        name for name in design.cells if name != driver and free_inputs[name]
    ]
    sinks: list[str] = []
    for _ in range(count):
        pool = local if (local and rng.random() < locality) else everyone
        if not pool:
            break
        pick = rng.choice(pool)
        if pick in sinks:
            continue
        sinks.append(pick)
    return sinks

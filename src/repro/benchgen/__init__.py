"""Synthetic ISPD-2018-style benchmark generation.

The contest LEF/DEF files are not redistributable, so this package
generates designs with the same *shape*: row-based standard-cell layouts
at high utilization, clustered netlists whose locality creates realistic
congestion hot-spots, fixed macro blockages, and the relative cell/net
counts of Table II (scaled down to keep a pure-Python flow tractable).
"""

from repro.benchgen.techlib import build_tech
from repro.benchgen.generator import DesignSpec, generate_design
from repro.benchgen.suites import SUITE, make_design, suite_table

__all__ = [
    "build_tech",
    "DesignSpec",
    "generate_design",
    "SUITE",
    "make_design",
    "suite_table",
]

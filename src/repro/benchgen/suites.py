"""The ispd18_test1..10 analogue suite (Table II, scaled 1/100).

Cell/net counts keep the published ratios; congestion knobs follow the
paper's characterization: test2/test3 are the *least congested* designs
(the two where the state of the art [18] beats CR&P), the 32 nm designs
are denser, and test10 is the largest.
"""

from __future__ import annotations

from repro.benchgen.generator import DesignSpec, generate_design
from repro.db import Design

#: Published Table II statistics for reference (#nets, #cells, node).
PAPER_TABLE2: dict[str, tuple[int, int, str]] = {
    "ispd18_test1": (3_000, 8_000, "45nm"),
    "ispd18_test2": (36_000, 35_000, "45nm"),
    "ispd18_test3": (36_000, 35_000, "45nm"),
    "ispd18_test4": (72_000, 72_000, "32nm"),
    "ispd18_test5": (72_000, 71_000, "32nm"),
    "ispd18_test6": (107_000, 107_000, "32nm"),
    "ispd18_test7": (179_000, 179_000, "32nm"),
    "ispd18_test8": (179_000, 192_000, "32nm"),
    "ispd18_test9": (178_000, 192_000, "32nm"),
    "ispd18_test10": (182_000, 290_000, "32nm"),
}

_SCALE = 100

SUITE: dict[str, DesignSpec] = {
    "ispd18_test1": DesignSpec(
        name="ispd18_test1",
        num_cells=80,
        num_nets=30,
        node="45nm",
        utilization=0.80,
        locality=0.80,
        num_blockages=0,
        gcells_per_axis=10,
        seed=1,
    ),
    "ispd18_test2": DesignSpec(
        name="ispd18_test2",
        num_cells=350,
        num_nets=360,
        node="45nm",
        utilization=0.65,
        locality=0.70,
        num_blockages=0,
        gcells_per_axis=16,
        seed=2,
    ),
    "ispd18_test3": DesignSpec(
        name="ispd18_test3",
        num_cells=350,
        num_nets=360,
        node="45nm",
        utilization=0.65,
        locality=0.70,
        num_blockages=0,
        gcells_per_axis=16,
        seed=3,
    ),
    "ispd18_test4": DesignSpec(
        name="ispd18_test4",
        num_cells=720,
        num_nets=720,
        node="32nm",
        utilization=0.80,
        locality=0.80,
        num_blockages=1,
        gcells_per_axis=20,
        seed=4,
    ),
    "ispd18_test5": DesignSpec(
        name="ispd18_test5",
        num_cells=710,
        num_nets=720,
        node="32nm",
        utilization=0.80,
        locality=0.80,
        num_blockages=1,
        gcells_per_axis=20,
        seed=5,
    ),
    "ispd18_test6": DesignSpec(
        name="ispd18_test6",
        num_cells=1070,
        num_nets=1070,
        node="32nm",
        utilization=0.80,
        locality=0.82,
        num_blockages=2,
        gcells_per_axis=22,
        seed=6,
    ),
    "ispd18_test7": DesignSpec(
        name="ispd18_test7",
        num_cells=1790,
        num_nets=1790,
        node="32nm",
        utilization=0.80,
        locality=0.82,
        num_blockages=2,
        gcells_per_axis=24,
        seed=7,
    ),
    "ispd18_test8": DesignSpec(
        name="ispd18_test8",
        num_cells=1920,
        num_nets=1790,
        node="32nm",
        utilization=0.80,
        locality=0.82,
        num_blockages=2,
        gcells_per_axis=24,
        seed=8,
    ),
    "ispd18_test9": DesignSpec(
        name="ispd18_test9",
        num_cells=1920,
        num_nets=1780,
        node="32nm",
        utilization=0.82,
        locality=0.82,
        num_blockages=2,
        gcells_per_axis=24,
        seed=9,
    ),
    "ispd18_test10": DesignSpec(
        name="ispd18_test10",
        num_cells=2900,
        num_nets=1820,
        node="32nm",
        utilization=0.82,
        locality=0.82,
        num_blockages=3,
        gcells_per_axis=26,
        seed=10,
    ),
}


def make_design(name: str) -> Design:
    """Generate one suite design by name (deterministic per name)."""
    if name not in SUITE:
        raise KeyError(f"unknown benchmark {name!r}; know {sorted(SUITE)}")
    return generate_design(SUITE[name])


def suite_table() -> list[dict[str, object]]:
    """Table II analogue: per-design statistics of the synthetic suite."""
    rows: list[dict[str, object]] = []
    for name, spec in SUITE.items():
        paper_nets, paper_cells, node = PAPER_TABLE2[name]
        rows.append(
            {
                "circuit": name,
                "nets": spec.num_nets,
                "cells": spec.num_cells,
                "tech_node": node,
                "paper_nets": paper_nets,
                "paper_cells": paper_cells,
                "scale": _SCALE,
            }
        )
    return rows

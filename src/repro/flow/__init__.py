"""The end-to-end physical-design flow (Fig. 1 of the paper):
global routing -> [CR&P or baseline cell movement] -> detailed routing,
with per-stage runtime instrumentation for Figs. 2 and 3."""

from repro.flow.pipeline import FlowResult, run_flow
from repro.flow.runtime import runtime_breakdown_pct
from repro.flow.experiments import (
    RuntimeComparison,
    Table3Row,
    fig2_runtimes,
    fig3_breakdown,
    table3_row,
)

__all__ = [
    "FlowResult",
    "run_flow",
    "runtime_breakdown_pct",
    "Table3Row",
    "RuntimeComparison",
    "table3_row",
    "fig2_runtimes",
    "fig3_breakdown",
]

"""Flow orchestration: GR -> (CR&P | [18] | nothing) -> DR -> evaluate."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.db import Design, check_legality
from repro.groute import GlobalRouter
from repro.droute import DetailedRouter
from repro.evalmetrics import QualityScore, evaluate
from repro.core import CrpConfig, CrpFramework, CrpResult
from repro.baseline import FontanaBaseline, FontanaResult


@dataclass(slots=True)
class FlowResult:
    """Everything one flow run produces."""

    design: str
    mode: str
    crp_iterations: int = 0
    gr_wirelength_dbu: int = 0
    gr_vias: int = 0
    gr_overflow: float = 0.0
    quality: QualityScore | None = None
    crp: CrpResult | None = None
    fontana: FontanaResult | None = None
    #: wall clock per stage: GR, CRP (or BASELINE), DR
    runtime: dict[str, float] = field(default_factory=dict)
    legal: bool = True
    failed: bool = False

    @property
    def total_runtime(self) -> float:
        return sum(self.runtime.values())

    def summary(self) -> str:
        q = self.quality
        quality = q and (
            f"wl={q.wirelength_dbu} vias={q.vias} drvs={q.drvs}"
        )
        return (
            f"{self.design} [{self.mode}"
            f"{f' k={self.crp_iterations}' if self.crp_iterations else ''}] "
            f"{'FAILED' if self.failed else quality} "
            f"({self.total_runtime:.1f}s)"
        )


def run_flow(
    design: Design,
    mode: str = "baseline",
    crp_iterations: int = 1,
    config: CrpConfig | None = None,
    baseline_budget_s: float | None = None,
    rrr_passes: int = 3,
    skip_detailed: bool = False,
) -> FlowResult:
    """Run the full flow on ``design``.

    ``mode`` is ``baseline`` (GR + DR only), ``crp`` (GR + CR&P x k +
    DR), or ``fontana`` (GR + [18] + DR).  ``skip_detailed`` stops after
    the movement stage for GR-level experiments.
    """
    if mode not in ("baseline", "crp", "fontana"):
        raise ValueError(f"unknown flow mode {mode!r}")
    result = FlowResult(
        design=design.name,
        mode=mode,
        crp_iterations=crp_iterations if mode == "crp" else 0,
    )

    t0 = time.perf_counter()
    router = GlobalRouter(design)
    router.route_all(rrr_passes=rrr_passes)
    result.runtime["GR"] = time.perf_counter() - t0

    if mode == "crp":
        framework = CrpFramework(design, router, config)
        t0 = time.perf_counter()
        result.crp = framework.run(crp_iterations)
        result.runtime["CRP"] = time.perf_counter() - t0
    elif mode == "fontana":
        baseline = FontanaBaseline(
            design, router, time_budget_s=baseline_budget_s
        )
        t0 = time.perf_counter()
        result.fontana = baseline.run()
        result.runtime["BASELINE"] = time.perf_counter() - t0
        if result.fontana.failed:
            result.failed = True
            return result

    result.gr_wirelength_dbu = router.total_wirelength_dbu()
    result.gr_vias = router.total_vias()
    result.gr_overflow = router.total_overflow()
    result.legal = check_legality(design).is_legal

    if skip_detailed:
        return result

    t0 = time.perf_counter()
    guides = router.guides()
    detailed = DetailedRouter(design)
    dr_result = detailed.route_all(guides)
    result.runtime["DR"] = time.perf_counter() - t0
    result.quality = evaluate(design.name, design.tech, dr_result)
    return result

"""Flow orchestration: GR -> (CR&P | [18] | nothing) -> DR -> evaluate.

Stage timing is recorded as ``repro.obs`` spans (``flow.run`` ->
``flow.GR`` / ``flow.CRP`` / ``flow.BASELINE`` / ``flow.DR``); the
``FlowResult.runtime`` dict keeps its historical shape but is populated
from those spans, and every result carries the full span tree plus a
metrics snapshot for the profiling exporters.

Stages are fault-isolated (``repro.guard``): an exception — or a
deadline expiry under ``budget_s`` / ``stage_budget_s`` — inside a
stage marks ``FlowResult.failed`` with a :class:`FailureReport`
(stage, exception, traceback, partial metrics) instead of crashing, so
callers always get back whatever the flow managed to produce.  Each
stage also passes a ``fault_point`` (``flow.GR`` etc.) so the recovery
paths are testable.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.db import Design, check_legality
from repro.groute import GlobalRouter
from repro.droute import DetailedRouter
from repro.evalmetrics import QualityScore, evaluate
from repro.core import CrpConfig, CrpFramework, CrpResult
from repro.baseline import FontanaBaseline, FontanaResult
from repro.guard import FailureReport, GuardPolicy, deadline_scope, fault_point
from repro.obs import Span, ensure_observation


@dataclass(slots=True)
class FlowResult:
    """Everything one flow run produces."""

    design: str
    mode: str
    crp_iterations: int = 0
    gr_wirelength_dbu: int = 0
    gr_vias: int = 0
    gr_overflow: float = 0.0
    quality: QualityScore | None = None
    crp: CrpResult | None = None
    fontana: FontanaResult | None = None
    #: wall clock per stage: GR, CRP (or BASELINE), DR — backed by ``trace``
    runtime: dict[str, float] = field(default_factory=dict)
    legal: bool = True
    failed: bool = False
    #: what killed the failing stage, when ``failed`` is set
    failure: FailureReport | None = None
    #: the ``flow.run`` span tree this run recorded
    trace: Span | None = None
    #: metrics snapshot at flow end (cumulative within an ``observe()``)
    metrics: dict[str, dict[str, object]] | None = None

    @property
    def total_runtime(self) -> float:
        return sum(self.runtime.values())

    def summary(self) -> str:
        if self.failed:
            body = (
                f"FAILED[{self.failure.summary()}]"
                if self.failure is not None
                else "FAILED"
            )
        elif self.quality is not None:
            q = self.quality
            body = f"wl={q.wirelength_dbu} vias={q.vias} drvs={q.drvs}"
        else:
            # GR-level run (e.g. skip_detailed): report router stats
            # instead of printing a literal "None".
            body = (
                f"gr_wl={self.gr_wirelength_dbu} gr_vias={self.gr_vias} "
                f"gr_overflow={self.gr_overflow:.1f}"
            )
        warning = "" if self.legal else " !ILLEGAL-PLACEMENT"
        return (
            f"{self.design} [{self.mode}"
            f"{f' k={self.crp_iterations}' if self.crp_iterations else ''}] "
            f"{body} "
            f"({self.total_runtime:.1f}s){warning}"
        )


def run_flow(
    design: Design,
    mode: str = "baseline",
    crp_iterations: int = 1,
    config: CrpConfig | None = None,
    baseline_budget_s: float | None = None,
    rrr_passes: int = 3,
    skip_detailed: bool = False,
    budget_s: float | None = None,
    stage_budget_s: float | None = None,
    guard: GuardPolicy | None = None,
    workers: int | None = None,
) -> FlowResult:
    """Run the full flow on ``design``.

    ``mode`` is ``baseline`` (GR + DR only), ``crp`` (GR + CR&P x k +
    DR), or ``fontana`` (GR + [18] + DR).  ``skip_detailed`` stops after
    the movement stage for GR-level experiments.  ``budget_s`` bounds
    the whole flow's wall clock and ``stage_budget_s`` each stage's;
    expiry fails the stage (with a :class:`FailureReport`) rather than
    hanging.  ``guard`` tunes the CR&P iteration transaction.

    ``workers`` selects the ``repro.par`` execution pipeline: ``None``
    (default) keeps the classic serial walk, ``1`` runs the batched
    pipeline in-process, ``N > 1`` routes and estimates on a process
    pool with byte-identical results.  Falls back to
    ``config.workers`` (which itself reads ``CRP_WORKERS``).
    """
    if mode not in ("baseline", "crp", "fontana"):
        raise ValueError(f"unknown flow mode {mode!r}")
    if workers is None:
        workers = (config or CrpConfig()).workers
    result = FlowResult(
        design=design.name,
        mode=mode,
        crp_iterations=crp_iterations if mode == "crp" else 0,
    )
    executor = None
    if workers is not None and workers >= 1:
        from repro.par import ParallelExecutor

        executor = ParallelExecutor(workers)
    try:
        with ensure_observation() as obs:
            tracer = obs.tracer
            if executor is not None:
                obs.metrics.gauge("par.workers", workers)
            with tracer.span(
                "flow.run", design=design.name, mode=mode
            ) as root:
                with deadline_scope(budget_s, name="flow.run"):
                    _run_stages(
                        design, mode, crp_iterations, config,
                        baseline_budget_s, rrr_passes, skip_detailed,
                        stage_budget_s, guard, result, tracer, obs.metrics,
                        executor,
                    )
            result.trace = root
            result.metrics = obs.metrics.snapshot()
    finally:
        if executor is not None:
            executor.close()
    return result


@contextmanager
def _stage(result: FlowResult, name: str, metrics, budget_s: float | None) -> Iterator[None]:
    """Isolate one stage: budget it, and convert death to a FailureReport.

    The stage body must call ``fault_point("flow.<name>")`` as its first
    statement (a context manager cannot raise before its ``yield``).
    """
    try:
        with deadline_scope(budget_s, name=f"flow.{name}"):
            yield
    except Exception as exc:  # repro: noqa:REPRO-G002 — isolation is the point; expiry becomes a FailureReport, not a hang
        result.failed = True
        result.failure = FailureReport.from_exception(
            name, exc, metrics=metrics.snapshot()
        )
        metrics.count("flow.stage_failures")
        metrics.count(f"flow.failed.{name}")


def _run_stages(
    design: Design,
    mode: str,
    crp_iterations: int,
    config: CrpConfig | None,
    baseline_budget_s: float | None,
    rrr_passes: int,
    skip_detailed: bool,
    stage_budget_s: float | None,
    guard: GuardPolicy | None,
    result: FlowResult,
    tracer,
    metrics,
    executor=None,
) -> None:
    """The stage sequence, inside the open ``flow.run`` span."""
    router: GlobalRouter | None = None
    with tracer.span("flow.GR") as sp, _stage(result, "GR", metrics, stage_budget_s):
        fault_point("flow.GR")
        router = GlobalRouter(design)
        if executor is not None:
            executor.bind(router)
        router.route_all(rrr_passes=rrr_passes)
    result.runtime["GR"] = sp.wall_s
    if result.failed:
        return

    if mode == "crp":
        framework = CrpFramework(design, router, config, guard=guard)
        with tracer.span("flow.CRP") as sp, _stage(
            result, "CRP", metrics, stage_budget_s
        ):
            fault_point("flow.CRP")
            result.crp = framework.run(crp_iterations)
        result.runtime["CRP"] = sp.wall_s
        if result.failed:
            return
    elif mode == "fontana":
        baseline = FontanaBaseline(
            design, router, time_budget_s=baseline_budget_s
        )
        with tracer.span("flow.BASELINE") as sp, _stage(
            result, "BASELINE", metrics, stage_budget_s
        ):
            fault_point("flow.BASELINE")
            result.fontana = baseline.run()
        result.runtime["BASELINE"] = sp.wall_s
        if result.failed:
            return
        if result.fontana.failed:
            result.failed = True
            result.failure = FailureReport(
                stage="BASELINE",
                error_type="TimeBudgetExceeded",
                message="the [18] baseline exhausted its time budget",
                metrics=metrics.snapshot(),
            )
            return

    result.gr_wirelength_dbu = router.total_wirelength_dbu()
    result.gr_vias = router.total_vias()
    result.gr_overflow = router.total_overflow()
    result.legal = check_legality(design).is_legal
    metrics.gauge("flow.gr_overflow", result.gr_overflow)
    if not result.legal:
        # An illegal post-movement placement must be loud: counted here,
        # flagged in summary(), and turned into a non-zero CLI exit.
        metrics.count("flow.illegal")

    if skip_detailed:
        return

    with tracer.span("flow.DR") as sp, _stage(result, "DR", metrics, stage_budget_s):
        fault_point("flow.DR")
        guides = router.guides()
        detailed = DetailedRouter(design)
        dr_result = detailed.route_all(guides)
        result.quality = evaluate(design.name, design.tech, dr_result)
    result.runtime["DR"] = sp.wall_s

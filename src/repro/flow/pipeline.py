"""Flow orchestration: GR -> (CR&P | [18] | nothing) -> DR -> evaluate.

Stage timing is recorded as ``repro.obs`` spans (``flow.run`` ->
``flow.GR`` / ``flow.CRP`` / ``flow.BASELINE`` / ``flow.DR``); the
``FlowResult.runtime`` dict keeps its historical shape but is populated
from those spans, and every result carries the full span tree plus a
metrics snapshot for the profiling exporters.

Stages are fault-isolated (``repro.guard``): an exception — or a
deadline expiry under ``budget_s`` / ``stage_budget_s`` — inside a
stage marks ``FlowResult.failed`` with a :class:`FailureReport`
(stage, exception, traceback, partial metrics) instead of crashing, so
callers always get back whatever the flow managed to produce.  Each
stage also passes a ``fault_point`` (``flow.GR`` etc.) so the recovery
paths are testable.

Crash durability (``repro.ckpt``): with ``checkpoint_dir`` set the
flow writes an atomic, checksummed checkpoint after global routing and
after every CR&P iteration; ``resume=True`` restores the newest
compatible checkpoint and continues from that boundary with
byte-identical final routes, positions, and quality.  Corrupt or stale
checkpoints are skipped (reported on ``FlowResult.ckpt_failures``),
and a failed checkpoint *write* never kills the run it protects.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.db import Design, check_legality
from repro.groute import GlobalRouter
from repro.droute import DetailedRouter
from repro.evalmetrics import QualityScore, evaluate
from repro.core import CrpConfig, CrpFramework, CrpResult
from repro.baseline import FontanaBaseline, FontanaResult
from repro.guard import FailureReport, GuardPolicy, deadline_scope, fault_point
from repro.obs import Span, ensure_observation


@dataclass(slots=True)
class FlowResult:
    """Everything one flow run produces."""

    design: str
    mode: str
    crp_iterations: int = 0
    gr_wirelength_dbu: int = 0
    gr_vias: int = 0
    gr_overflow: float = 0.0
    quality: QualityScore | None = None
    crp: CrpResult | None = None
    fontana: FontanaResult | None = None
    #: wall clock per stage: GR, CRP (or BASELINE), DR — backed by ``trace``
    runtime: dict[str, float] = field(default_factory=dict)
    legal: bool = True
    failed: bool = False
    #: what killed the failing stage, when ``failed`` is set
    failure: FailureReport | None = None
    #: ``"<stage>:<iteration>"`` of the checkpoint this run resumed
    #: from, or ``None`` for a cold start
    resumed_from: str | None = None
    #: SHA-256 of the canonical final committed-routes serialization
    #: (``repro.ckpt.routes_digest``) — what the resume-parity tests and
    #: the CI ``ckpt`` job compare byte-for-byte
    routes_digest: str | None = None
    #: SHA-256 of the canonical final cell placement
    placement_digest: str | None = None
    #: non-fatal checkpoint problems (corrupt/stale files skipped on
    #: load, failed writes) — informational, the run continued
    ckpt_failures: list[FailureReport] = field(default_factory=list)
    #: the ``flow.run`` span tree this run recorded
    trace: Span | None = None
    #: metrics snapshot at flow end (cumulative within an ``observe()``)
    metrics: dict[str, dict[str, object]] | None = None

    @property
    def total_runtime(self) -> float:
        return sum(self.runtime.values())

    def summary(self) -> str:
        if self.failed:
            body = (
                f"FAILED[{self.failure.summary()}]"
                if self.failure is not None
                else "FAILED"
            )
        elif self.quality is not None:
            q = self.quality
            body = f"wl={q.wirelength_dbu} vias={q.vias} drvs={q.drvs}"
        else:
            # GR-level run (e.g. skip_detailed): report router stats
            # instead of printing a literal "None".
            body = (
                f"gr_wl={self.gr_wirelength_dbu} gr_vias={self.gr_vias} "
                f"gr_overflow={self.gr_overflow:.1f}"
            )
        warning = "" if self.legal else " !ILLEGAL-PLACEMENT"
        return (
            f"{self.design} [{self.mode}"
            f"{f' k={self.crp_iterations}' if self.crp_iterations else ''}] "
            f"{body} "
            f"({self.total_runtime:.1f}s){warning}"
        )


def run_flow(
    design: Design,
    mode: str = "baseline",
    crp_iterations: int = 1,
    config: CrpConfig | None = None,
    baseline_budget_s: float | None = None,
    rrr_passes: int = 3,
    skip_detailed: bool = False,
    budget_s: float | None = None,
    stage_budget_s: float | None = None,
    guard: GuardPolicy | None = None,
    workers: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> FlowResult:
    """Run the full flow on ``design``.

    ``mode`` is ``baseline`` (GR + DR only), ``crp`` (GR + CR&P x k +
    DR), or ``fontana`` (GR + [18] + DR).  ``skip_detailed`` stops after
    the movement stage for GR-level experiments.  ``budget_s`` bounds
    the whole flow's wall clock and ``stage_budget_s`` each stage's;
    expiry fails the stage (with a :class:`FailureReport`) rather than
    hanging.  ``guard`` tunes the CR&P iteration transaction.

    ``workers`` selects the ``repro.par`` execution pipeline: ``None``
    (default) keeps the classic serial walk, ``1`` runs the batched
    pipeline in-process, ``N > 1`` routes and estimates on a process
    pool with byte-identical results.  Falls back to
    ``config.workers`` (which itself reads ``CRP_WORKERS``).

    ``checkpoint_dir`` enables ``repro.ckpt`` durability: a checkpoint
    is written after GR and after every CR&P iteration (falls back to
    ``config.checkpoint_dir``, which itself reads
    ``CRP_CHECKPOINT_DIR``).  With ``resume=True`` the newest
    compatible checkpoint in that directory is restored and the flow
    continues from its boundary — final routes, positions, and quality
    are byte-identical to an uninterrupted run.
    """
    if mode not in ("baseline", "crp", "fontana"):
        raise ValueError(f"unknown flow mode {mode!r}")
    config = config or CrpConfig()
    if workers is None:
        workers = config.workers
    if checkpoint_dir is None:
        checkpoint_dir = config.checkpoint_dir
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    result = FlowResult(
        design=design.name,
        mode=mode,
        crp_iterations=crp_iterations if mode == "crp" else 0,
    )
    executor = None
    if workers is not None and workers >= 1:
        from repro.par import ParallelExecutor

        executor = ParallelExecutor(workers)
    ckpt = None
    if checkpoint_dir is not None:
        from repro.ckpt import FlowCheckpointer

        ckpt = FlowCheckpointer(checkpoint_dir, design, mode, config)
    try:
        with ensure_observation() as obs:
            tracer = obs.tracer
            if executor is not None:
                obs.metrics.gauge("par.workers", workers)
            with tracer.span(
                "flow.run", design=design.name, mode=mode
            ) as root:
                with deadline_scope(budget_s, name="flow.run"):
                    _run_stages(
                        design, mode, crp_iterations, config,
                        baseline_budget_s, rrr_passes, skip_detailed,
                        stage_budget_s, guard, result, tracer, obs.metrics,
                        executor, ckpt, resume,
                    )
            result.trace = root
            result.metrics = obs.metrics.snapshot()
    finally:
        if executor is not None:
            executor.close()
        if ckpt is not None:
            result.ckpt_failures.extend(ckpt.failures)
    return result


@contextmanager
def _stage(result: FlowResult, name: str, metrics, budget_s: float | None) -> Iterator[None]:
    """Isolate one stage: budget it, and convert death to a FailureReport.

    The stage body must call ``fault_point("flow.<name>")`` as its first
    statement (a context manager cannot raise before its ``yield``).
    """
    try:
        with deadline_scope(budget_s, name=f"flow.{name}"):
            yield
    except Exception as exc:  # repro: noqa:REPRO-G002 — isolation is the point; expiry becomes a FailureReport, not a hang
        result.failed = True
        result.failure = FailureReport.from_exception(
            name, exc, metrics=metrics.snapshot()
        )
        metrics.count("flow.stage_failures")
        metrics.count(f"flow.failed.{name}")


def _restore_from_checkpoint(
    design: Design,
    result: FlowResult,
    tracer,
    metrics,
    ckpt,
) -> tuple[GlobalRouter | None, dict | None]:
    """Try to resume: ``(restored router, state)`` or ``(None, None)``.

    Any restore failure — on top of the corrupt/stale skipping the
    store already does — degrades to a cold start (reported on
    ``FlowResult.ckpt_failures``), never a crash: a broken checkpoint
    must not be able to take down the run it was meant to protect.
    """
    from repro.ckpt import restore_design, restore_router
    from repro.guard import FailureReport

    with tracer.span("ckpt.restore"):
        state = ckpt.load_resume()
        if state is None:
            return None, None
        try:
            restore_design(design, state)
            router = restore_router(design, state)
        except Exception as exc:  # repro: noqa:REPRO-G002 — a bad restore degrades to a cold start, reported not raised
            metrics.count("ckpt.restore_failures")
            ckpt.failures.append(
                FailureReport.from_exception("ckpt.restore", exc)
            )
            return None, None
    saved_raw = state.get("metrics_raw")
    if saved_raw:
        metrics.merge_raw(saved_raw)
    result.runtime.update(state.get("runtime", {}))
    result.resumed_from = f"{state['stage']}:{state['iteration']}"
    metrics.count("ckpt.restores")
    return router, state


def _run_stages(
    design: Design,
    mode: str,
    crp_iterations: int,
    config: CrpConfig | None,
    baseline_budget_s: float | None,
    rrr_passes: int,
    skip_detailed: bool,
    stage_budget_s: float | None,
    guard: GuardPolicy | None,
    result: FlowResult,
    tracer,
    metrics,
    executor=None,
    ckpt=None,
    resume: bool = False,
) -> None:
    """The stage sequence, inside the open ``flow.run`` span."""
    router: GlobalRouter | None = None
    restored: dict | None = None
    if ckpt is not None and resume:
        router, restored = _restore_from_checkpoint(
            design, result, tracer, metrics, ckpt
        )
    if router is not None and executor is not None:
        executor.bind(router)
    if router is None:
        with tracer.span("flow.GR") as sp, _stage(
            result, "GR", metrics, stage_budget_s
        ):
            fault_point("flow.GR")
            router = GlobalRouter(design)
            if executor is not None:
                executor.bind(router)
            router.route_all(rrr_passes=rrr_passes)
        result.runtime["GR"] = sp.wall_s
        if result.failed:
            return
        if ckpt is not None:
            ckpt.save_boundary(
                stage="GR", iteration=0, router=router,
                runtime=result.runtime,
            )

    if mode == "crp":
        framework = CrpFramework(design, router, config, guard=guard)
        start = 0
        prior_stats: list = []
        if restored is not None:
            start = int(restored["iteration"])
            prior_stats = list(restored["crp_stats"])
            if restored["rng_state"] is not None:
                framework.set_rng_state(restored["rng_state"])
        on_iteration = None
        if ckpt is not None:
            new_stats: list = []

            def on_iteration(k: int, stats) -> None:
                new_stats.append(stats)
                ckpt.save_boundary(
                    stage="CRP", iteration=k + 1, router=router,
                    rng_state=framework.rng_state(),
                    crp_stats=prior_stats + new_stats,
                    runtime=result.runtime,
                )
        with tracer.span("flow.CRP") as sp, _stage(
            result, "CRP", metrics, stage_budget_s
        ):
            fault_point("flow.CRP")
            result.crp = framework.run(
                crp_iterations, start=start, on_iteration=on_iteration
            )
        if result.crp is not None and prior_stats:
            result.crp.iterations[:0] = prior_stats
        result.runtime["CRP"] = (
            result.runtime.get("CRP", 0.0) + sp.wall_s
        )
        if result.failed:
            return
    elif mode == "fontana":
        baseline = FontanaBaseline(
            design, router, time_budget_s=baseline_budget_s
        )
        with tracer.span("flow.BASELINE") as sp, _stage(
            result, "BASELINE", metrics, stage_budget_s
        ):
            fault_point("flow.BASELINE")
            result.fontana = baseline.run()
        result.runtime["BASELINE"] = sp.wall_s
        if result.failed:
            return
        if result.fontana.failed:
            result.failed = True
            result.failure = FailureReport(
                stage="BASELINE",
                error_type="TimeBudgetExceeded",
                message="the [18] baseline exhausted its time budget",
                metrics=metrics.snapshot(),
            )
            return

    result.gr_wirelength_dbu = router.total_wirelength_dbu()
    result.gr_vias = router.total_vias()
    result.gr_overflow = router.total_overflow()
    from repro.ckpt import positions_digest, routes_digest

    result.routes_digest = routes_digest(router)
    result.placement_digest = positions_digest(design)
    result.legal = check_legality(design).is_legal
    metrics.gauge("flow.gr_overflow", result.gr_overflow)
    if not result.legal:
        # An illegal post-movement placement must be loud: counted here,
        # flagged in summary(), and turned into a non-zero CLI exit.
        metrics.count("flow.illegal")

    if skip_detailed:
        return

    with tracer.span("flow.DR") as sp, _stage(result, "DR", metrics, stage_budget_s):
        fault_point("flow.DR")
        guides = router.guides()
        detailed = DetailedRouter(design)
        # Reuse the GR executor's worker pool (and mutation log) for the
        # batched detailed-routing first pass; byte-identical by the
        # commit-in-canonical-order + conflict-reroute discipline.
        detailed.executor = executor
        dr_result = detailed.route_all(guides)
        result.quality = evaluate(design.name, design.tech, dr_result)
    result.runtime["DR"] = sp.wall_s

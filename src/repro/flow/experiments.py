"""Programmatic regeneration of the paper's evaluation artifacts.

The ``benchmarks/`` tree prints human-readable tables; this module is
the library-level API behind the same experiments, so downstream users
(and the CLI) can run a Table III row or a Fig. 3 breakdown and get
structured data back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchgen import make_design
from repro.core import CrpConfig
from repro.flow.pipeline import FlowResult, run_flow
from repro.flow.runtime import runtime_breakdown_pct


@dataclass(slots=True)
class Table3Row:
    """One benchmark's Table III entries."""

    design: str
    baseline: FlowResult
    fontana: FlowResult
    crp_k1: FlowResult
    crp_k10: FlowResult

    def improvements(self) -> dict[str, dict[str, float] | None]:
        """Percentage improvements vs the baseline per contender."""
        out: dict[str, dict[str, float] | None] = {}
        base = self.baseline.quality
        for label, result in (
            ("fontana", self.fontana),
            ("crp_k1", self.crp_k1),
            ("crp_k10", self.crp_k10),
        ):
            if result.failed or result.quality is None or base is None:
                out[label] = None
            else:
                out[label] = result.quality.improvement_over(base)
        return out


def table3_row(
    design_name: str,
    k10: int = 10,
    baseline_budget_s: float | None = 600.0,
    seed: int = 0,
) -> Table3Row:
    """Run the four Table III flows on one benchmark."""
    return Table3Row(
        design=design_name,
        baseline=run_flow(make_design(design_name), mode="baseline"),
        fontana=run_flow(
            make_design(design_name),
            mode="fontana",
            baseline_budget_s=baseline_budget_s,
        ),
        crp_k1=run_flow(
            make_design(design_name),
            mode="crp",
            crp_iterations=1,
            config=CrpConfig(seed=seed),
        ),
        crp_k10=run_flow(
            make_design(design_name),
            mode="crp",
            crp_iterations=k10,
            config=CrpConfig(seed=seed),
        ),
    )


@dataclass(slots=True)
class RuntimeComparison:
    """Fig. 2 data for one benchmark."""

    design: str
    seconds: dict[str, float | None] = field(default_factory=dict)


def fig2_runtimes(row: Table3Row) -> RuntimeComparison:
    """Extract the Fig. 2 runtime comparison from a Table III row."""
    comparison = RuntimeComparison(design=row.design)
    for label, result in (
        ("baseline", row.baseline),
        ("fontana", row.fontana),
        ("crp_k1", row.crp_k1),
        ("crp_k10", row.crp_k10),
    ):
        comparison.seconds[label] = (
            None if result.failed else result.total_runtime
        )
    return comparison


def fig3_breakdown(row: Table3Row) -> dict[str, float]:
    """Extract the Fig. 3 percentage breakdown from the k=10 flow."""
    return runtime_breakdown_pct(row.crp_k10)

"""Runtime accounting helpers for the Fig. 2 / Fig. 3 benchmarks."""

from __future__ import annotations

from repro.flow.pipeline import FlowResult

#: Fig. 3 stage labels, in the paper's plotting order.
FIG3_STAGES = ("GR", "GCP", "ECC", "UD", "Misc", "DR")


def runtime_breakdown_pct(result: FlowResult) -> dict[str, float]:
    """Percentage runtime per Fig. 3 stage for one CR&P flow run.

    ``GCP`` = candidate generation, ``ECC`` = candidate cost estimation,
    ``UD`` = database update, ``Misc`` = labeling + selection ILP; GR
    and DR are the routing stages around CR&P.
    """
    seconds: dict[str, float] = {stage: 0.0 for stage in FIG3_STAGES}
    seconds["GR"] = result.runtime.get("GR", 0.0)
    seconds["DR"] = result.runtime.get("DR", 0.0)
    if result.crp is not None:
        breakdown = result.crp.runtime_breakdown()
        seconds["GCP"] = breakdown.get("GCP", 0.0)
        seconds["ECC"] = breakdown.get("ECC", 0.0)
        seconds["UD"] = breakdown.get("UD", 0.0)
        seconds["Misc"] = breakdown.get("label", 0.0) + breakdown.get("ILP", 0.0)
    total = sum(seconds.values())
    if total <= 0:
        return {stage: 0.0 for stage in FIG3_STAGES}
    return {stage: 100.0 * s / total for stage, s in seconds.items()}

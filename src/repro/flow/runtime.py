"""Runtime accounting helpers for the Fig. 2 / Fig. 3 benchmarks.

Since the ``repro.obs`` integration the numbers flowing through here
come from tracer spans: ``FlowResult.runtime`` mirrors the ``flow.*``
stage spans and ``CrpResult.runtime_breakdown()`` mirrors the
``crp.*`` step spans of every iteration.
"""

from __future__ import annotations

from repro.flow.pipeline import FlowResult

#: Fig. 3 stage labels, in the paper's plotting order.
FIG3_STAGES = ("GR", "GCP", "ECC", "UD", "Misc", "DR")

#: Per-iteration CR&P step keys every tracer-backed breakdown must have.
CRP_STEP_KEYS = ("label", "GCP", "ECC", "ILP", "UD")


def runtime_breakdown_pct(result: FlowResult) -> dict[str, float]:
    """Percentage runtime per Fig. 3 stage for one CR&P flow run.

    ``GCP`` = candidate generation, ``ECC`` = candidate cost estimation,
    ``UD`` = database update, ``Misc`` = labeling + selection ILP; GR
    and DR are the routing stages around CR&P.

    Raises :class:`KeyError` when ``result.crp`` is present but its
    span-backed breakdown is missing any of the five step keys — a
    silent all-zero answer here used to hide instrumentation bugs.
    """
    seconds: dict[str, float] = {stage: 0.0 for stage in FIG3_STAGES}
    seconds["GR"] = result.runtime.get("GR", 0.0)
    seconds["DR"] = result.runtime.get("DR", 0.0)
    if result.crp is not None:
        breakdown = result.crp.runtime_breakdown()
        missing = [key for key in CRP_STEP_KEYS if key not in breakdown]
        if missing:
            raise KeyError(
                f"CR&P runtime breakdown is missing step spans {missing}; "
                f"got keys {sorted(breakdown)}"
            )
        seconds["GCP"] = breakdown["GCP"]
        seconds["ECC"] = breakdown["ECC"]
        seconds["UD"] = breakdown["UD"]
        seconds["Misc"] = breakdown["label"] + breakdown["ILP"]
    total = sum(seconds.values())
    if total <= 0:
        return {stage: 0.0 for stage in FIG3_STAGES}
    return {stage: 100.0 * s / total for stage, s in seconds.items()}

"""The GCell tiling of the die area."""

from __future__ import annotations

from repro.geom import Point, Rect
from repro.db.design import Design, GCellGridSpec


class GCellGrid:
    """Uniform partition of the die into ``nx`` x ``ny`` GCells.

    GCells are indexed ``(gx, gy)`` with ``(0, 0)`` at the lower-left.
    The 3D routing space of the paper is this tiling replicated on every
    routing layer.
    """

    def __init__(self, spec: GCellGridSpec) -> None:
        self.origin_x = spec.origin_x
        self.origin_y = spec.origin_y
        self.step_x = spec.step_x
        self.step_y = spec.step_y
        self.nx = spec.nx
        self.ny = spec.ny
        if self.nx <= 0 or self.ny <= 0 or self.step_x <= 0 or self.step_y <= 0:
            raise ValueError("degenerate gcell grid")

    @classmethod
    def for_design(cls, design: Design, target_gcells: int = 32) -> "GCellGrid":
        """Build from the design's GCELLGRID, or derive a near-square one.

        ``target_gcells`` controls the derived resolution per axis when the
        DEF does not specify a grid.
        """
        if design.gcell_grid is not None:
            return cls(design.gcell_grid)
        die = design.die
        step_x = max(1, die.width // target_gcells)
        step_y = max(1, die.height // target_gcells)
        spec = GCellGridSpec(
            origin_x=die.lx,
            origin_y=die.ly,
            step_x=step_x,
            step_y=step_y,
            nx=max(1, -(-die.width // step_x)),
            ny=max(1, -(-die.height // step_y)),
        )
        design.gcell_grid = spec
        return cls(spec)

    def gcell_of(self, p: Point) -> tuple[int, int]:
        """Grid index containing point ``p`` (clamped to the grid)."""
        gx = (p.x - self.origin_x) // self.step_x
        gy = (p.y - self.origin_y) // self.step_y
        return (max(0, min(self.nx - 1, gx)), max(0, min(self.ny - 1, gy)))

    def center_of(self, gx: int, gy: int) -> Point:
        """DBU center of GCell ``(gx, gy)``."""
        return Point(
            self.origin_x + gx * self.step_x + self.step_x // 2,
            self.origin_y + gy * self.step_y + self.step_y // 2,
        )

    def rect_of(self, gx: int, gy: int) -> Rect:
        """DBU extent of GCell ``(gx, gy)``."""
        lx = self.origin_x + gx * self.step_x
        ly = self.origin_y + gy * self.step_y
        return Rect(lx, ly, lx + self.step_x, ly + self.step_y)

    def gcells_overlapping(self, rect: Rect) -> list[tuple[int, int]]:
        """All grid indices whose extent intersects ``rect``."""
        gx0, gy0 = self.gcell_of(Point(rect.lx, rect.ly))
        gx1, gy1 = self.gcell_of(Point(max(rect.lx, rect.ux - 1), max(rect.ly, rect.uy - 1)))
        return [
            (gx, gy) for gx in range(gx0, gx1 + 1) for gy in range(gy0, gy1 + 1)
        ]

    def manhattan_centers(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Manhattan distance between two GCell centers in DBU (Dist(e))."""
        return abs(a[0] - b[0]) * self.step_x + abs(a[1] - b[1]) * self.step_y

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GCellGrid({self.nx}x{self.ny}, step=({self.step_x},{self.step_y}))"

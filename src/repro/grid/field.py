"""Dense Eq. 9/10 cost kernel with prefix sums and lazy invalidation.

:class:`CostField` materializes the Eq. 9 demand and Eq. 10 wire cost of
every wire edge as per-layer numpy arrays (vias cost a flat
``via_weight``, so they need no map), plus a running prefix sum along
each layer's preferred direction so the cost of a straight run of
``n`` edges is two lookups instead of ``n`` scalar ``edge_cost`` calls.

The field registers itself as a :class:`RoutingGraph` listener:
``add_wire``/``add_via``/``apply_route`` mark the touched *line* (the
row or column of edges along the layer's preferred direction) dirty,
and the next query recomputes only the dirty lines — a via change
dirties the two adjacent wire layers because of the ``delta_e``
via-crowding term in Eq. 9.  Rip-up, reroute, and guard-transaction
rollback all mutate the graph through the same methods, so the field
can never observe stale demand.

Bit-parity contract: every value in the dense maps is computed with the
same float64 operations, in the same order, as the scalar
:class:`repro.grid.cost.CostModel` oracle, so ``edge_cost`` lookups and
``path_cost`` sums are *bit-identical* to the scalar path; only the
prefix-sum run costs may differ from a left-to-right scalar sum by
float association (the parity tests pin this to 1e-9).
"""

from __future__ import annotations

import numpy as np

from repro.grid.cost import CostParams, m2_pitch, wire_edge_dists
from repro.grid.graph import EdgeKind, GridEdge, RoutingGraph
from repro.obs import get_metrics


class CostField:
    """Vectorized Eq. 10 cost maps over a :class:`RoutingGraph`."""

    def __init__(
        self, graph: RoutingGraph, params: CostParams | None = None
    ) -> None:
        self.graph = graph
        self.params = params or CostParams()
        #: flat Eq. 10 cost of any via edge
        self.via_cost = self.params.via_weight
        self._wire_dist = wire_edge_dists(
            graph.grid, graph.tech, m2_pitch(graph.tech)
        )
        self._horizontal = tuple(
            layer.is_horizontal for layer in graph.tech.layers
        )
        num_layers = graph.num_layers
        self._wire_cost: list[np.ndarray] = []
        self._demand: list[np.ndarray] = []
        self._prefix: list[np.ndarray] = []
        for layer in range(num_layers):
            shape = graph.wire_edge_shape(layer)
            self._wire_cost.append(np.zeros(shape, dtype=np.float64))
            self._demand.append(np.zeros(shape, dtype=np.float64))
            if self._horizontal[layer]:
                prefix_shape = (shape[0] + 1, shape[1])
            else:
                prefix_shape = (shape[0], shape[1] + 1)
            self._prefix.append(np.zeros(prefix_shape, dtype=np.float64))
        #: dirty line indices per layer (gy on horizontal layers, gx on
        #: vertical ones); ``_all_dirty`` short-circuits line tracking
        self._dirty_lines: list[set[int]] = [set() for _ in range(num_layers)]
        self._all_dirty = [True] * num_layers
        # Stats are plain ints (no registry lock in hot paths); they are
        # flushed as cost_field.* metrics by publish_metrics().
        self._ensures = 0
        self._hits = 0
        self._flushes = 0
        self._lines_recomputed = 0
        self._tiles_recomputed = 0
        self._tiles_total = sum(
            int(a.size) for a in self._wire_cost
        )
        graph.add_listener(self)

    # -------------------------------------------------- graph notifications

    def note_wire(self, layer: int, gx: int, gy: int) -> None:
        """Wire usage changed on edge ``(gx, gy)`` of ``layer``."""
        if not self._all_dirty[layer]:
            self._dirty_lines[layer].add(
                gy if self._horizontal[layer] else gx
            )

    def note_via(self, layer: int, gx: int, gy: int) -> None:
        """Via count changed between ``layer`` and ``layer + 1`` at a GCell.

        The Eq. 9 ``delta_e`` term makes both adjacent wire layers stale:
        every wire edge touching the GCell lies on one line per layer.
        """
        for wire_layer in (layer, layer + 1):
            if 0 <= wire_layer < self.graph.num_layers and not self._all_dirty[
                wire_layer
            ]:
                self._dirty_lines[wire_layer].add(
                    gy if self._horizontal[wire_layer] else gx
                )

    def note_all(self) -> None:
        """Invalidate the whole field (fixed-usage rebuild, rollback)."""
        for layer in range(self.graph.num_layers):
            self._all_dirty[layer] = True
            self._dirty_lines[layer].clear()

    # ------------------------------------------------------------- freshness

    def ensure(self) -> None:
        """Recompute every dirty slice; afterwards all maps are current."""
        self._ensures += 1
        clean = True
        for layer in range(self.graph.num_layers):
            if self._all_dirty[layer]:
                self._flush(layer, None)
                clean = False
            elif self._dirty_lines[layer]:
                self._flush(layer, sorted(self._dirty_lines[layer]))
                clean = False
        if clean:
            self._hits += 1

    def _flush(self, layer: int, lines: list[int] | None) -> None:
        self._flushes += 1
        self._recompute(layer, lines)
        self._all_dirty[layer] = False
        self._dirty_lines[layer].clear()

    def _recompute(self, layer: int, lines: list[int] | None) -> None:
        """Rebuild demand/cost/prefix for ``lines`` (``None`` = whole layer).

        Every arithmetic step mirrors :meth:`RoutingGraph.demand` +
        :meth:`CostModel.edge_cost` operation-for-operation so the dense
        values are bit-identical to the scalar oracle.
        """
        graph = self.graph
        cost = self._wire_cost[layer]
        if cost.size == 0:
            return
        horizontal = self._horizontal[layer]
        # A single dirty line (the common incremental case) uses basic
        # indexing — 1D views instead of fancy-index copies.
        if lines is None:
            sel = np.s_[:, :]
        elif horizontal:
            sel = np.s_[:, lines[0]] if len(lines) == 1 else np.s_[:, lines]
        else:
            sel = np.s_[lines[0], :] if len(lines) == 1 else np.s_[lines, :]
        # Via crowding per GCell of the selected lines (Eq. 9 delta_e).
        below = graph.via_usage[layer - 1] if layer >= 1 else None
        above = (
            graph.via_usage[layer]
            if layer < graph.num_layers - 1
            else None
        )
        if below is not None and above is not None:
            via_count = below[sel] + above[sel]
        elif below is not None:
            via_count = below[sel]
        elif above is not None:
            via_count = above[sel]
        else:
            via_count = np.zeros(
                (graph.grid.nx, graph.grid.ny), dtype=np.int32
            )[sel]
        if via_count.ndim == 1:
            # Single-line selection collapsed the cross axis; the edge
            # axis is all that remains.
            v_src, v_dst = via_count[:-1], via_count[1:]
        elif horizontal:
            v_src, v_dst = via_count[:-1, :], via_count[1:, :]
        else:
            v_src, v_dst = via_count[:, :-1], via_count[:, 1:]
        delta = np.sqrt((v_src + v_dst) / 2.0)
        demand = (
            graph.wire_usage[layer][sel]
            + graph.fixed_usage[layer][sel]
            + graph.beta * delta
        )
        capacity = graph.wire_capacity[layer][sel]
        params = self.params
        if params.use_penalty:
            x = params.slope * (demand - capacity)
            with np.errstate(over="ignore"):
                penalty = 1.0 / (1.0 + np.exp(-x))
            penalty[x > 60.0] = 1.0
            penalty[x < -60.0] = 0.0
        else:
            penalty = np.zeros_like(demand)
        unit = params.wire_weight * self._wire_dist[layer]
        line_cost = unit * (1.0 + penalty)
        self._demand[layer][sel] = demand
        cost[sel] = line_cost
        prefix = self._prefix[layer]
        if horizontal:
            if lines is None:
                prefix[1:, :] = np.cumsum(line_cost, axis=0)
            elif len(lines) == 1:
                prefix[1:, lines[0]] = np.cumsum(line_cost)
            else:
                prefix[1:, lines] = np.cumsum(line_cost, axis=0)
        else:
            if lines is None:
                prefix[:, 1:] = np.cumsum(line_cost, axis=1)
            elif len(lines) == 1:
                prefix[lines[0], 1:] = np.cumsum(line_cost)
            else:
                prefix[lines, 1:] = np.cumsum(line_cost, axis=1)
        self._lines_recomputed += (
            cost.shape[1 if horizontal else 0]
            if lines is None
            else len(lines)
        )
        self._tiles_recomputed += int(demand.size)

    # --------------------------------------------------------------- queries

    def wire_cost_maps(self) -> list[np.ndarray]:
        """Per-layer Eq. 10 wire-edge cost arrays (refreshed first)."""
        self.ensure()
        return self._wire_cost

    def demand_maps(self) -> list[np.ndarray]:
        """Per-layer Eq. 9 demand arrays, via term included."""
        self.ensure()
        return self._demand

    def edge_cost(self, edge: GridEdge) -> float:
        """Eq. 10 cost of one edge — bit-identical to the scalar oracle."""
        if edge.kind is EdgeKind.VIA:
            return self.via_cost
        self.ensure()
        return float(self._wire_cost[edge.layer][edge.gx, edge.gy])

    def path_cost(self, edges: list[GridEdge]) -> float:
        """Total route cost, summed left-to-right like the scalar oracle."""
        self.ensure()
        total = 0.0
        via_cost = self.via_cost
        wire_cost = self._wire_cost
        for edge in edges:
            if edge.kind is EdgeKind.VIA:
                total += via_cost
            else:
                total += float(wire_cost[edge.layer][edge.gx, edge.gy])
        return total

    def run_cost(self, layer: int, start: int, end: int, line: int) -> float:
        """Cost of wire edges ``[start, end)`` along ``layer`` on ``line``.

        ``line`` is the gy of a horizontal run (edges vary in gx) or the
        gx of a vertical run.  Two prefix lookups — O(1) regardless of
        run length.  Call :meth:`ensure` (or any map query) first when
        the graph may have changed; :class:`PatternRouter3D` refreshes
        once per ``route()`` call.
        """
        prefix = self._prefix[layer]
        if self._horizontal[layer]:
            return float(prefix[end, line] - prefix[start, line])
        return float(prefix[line, end] - prefix[line, start])

    def run_cost_batch(
        self, layers: list[int], runs: list[tuple[int, int, int]]
    ) -> np.ndarray:
        """Vectorized :meth:`run_cost` over a ``layers`` x ``runs`` grid.

        ``runs`` is a list of ``(start, end, line)`` triples, all on
        layers of one preferred direction; the result is a float64
        array of shape ``(len(layers), len(runs))`` whose every element
        is the same two-lookup prefix difference :meth:`run_cost` would
        return (one subtraction per element, so the values are
        bit-identical).  The caller must :meth:`ensure` freshness first.
        """
        count = len(runs)
        starts = np.fromiter((r[0] for r in runs), dtype=np.intp, count=count)
        ends = np.fromiter((r[1] for r in runs), dtype=np.intp, count=count)
        lines = np.fromiter((r[2] for r in runs), dtype=np.intp, count=count)
        out = np.empty((len(layers), count), dtype=np.float64)
        for i, layer in enumerate(layers):
            prefix = self._prefix[layer]
            if self._horizontal[layer]:
                out[i] = prefix[ends, lines] - prefix[starts, lines]
            else:
                out[i] = prefix[lines, ends] - prefix[lines, starts]
        return out

    def overflow_edges(self) -> list[GridEdge]:
        """Wire edges with Eq. 9 demand strictly above capacity.

        Vectorized replacement for the per-edge RRR scan: one
        ``demand > capacity`` mask and ``np.argwhere`` per layer, in
        (layer, gx, gy) order.
        """
        self.ensure()
        result: list[GridEdge] = []
        for layer in range(self.graph.num_layers):
            demand = self._demand[layer]
            if demand.size == 0:
                continue
            over = np.argwhere(demand > self.graph.wire_capacity[layer])
            result.extend(
                GridEdge(layer, int(gx), int(gy), EdgeKind.WIRE)
                for gx, gy in over
            )
        return result

    # --------------------------------------------------------------- metrics

    def publish_metrics(self) -> None:
        """Flush the locally-tallied stats as ``cost_field.*`` metrics.

        Counters are deltas since the last publish; the ratios are
        lifetime aggregates.  Hot paths never touch the registry.
        """
        metrics = get_metrics()
        if not metrics.recording:
            return
        metrics.count("cost_field.recomputes", self._flushes)
        metrics.count("cost_field.lines_recomputed", self._lines_recomputed)
        metrics.count("cost_field.queries", self._ensures)
        if self._ensures:
            metrics.gauge(
                "cost_field.hit_rate", self._hits / self._ensures
            )
        if self._tiles_total and self._flushes:
            metrics.gauge(
                "cost_field.dirty_ratio",
                self._tiles_recomputed / (self._tiles_total * self._flushes),
            )
        self._flushes = 0
        self._lines_recomputed = 0
        self._ensures = 0
        self._hits = 0

"""The 3D GCell routing graph ``G`` with per-edge capacity and demand.

Every routing layer replicates the GCell tiling; wire edges connect
adjacent GCells along the layer's preferred direction, and via edges
connect vertically adjacent layers at each GCell.  Demand follows Eq. 9
of the paper:

    D_e = U_w(e) + U_f(e) + beta * delta_e,
    delta_e = sqrt((V_src + V_dst) / 2)

where ``U_w`` is routed-wire usage, ``U_f`` fixed-component usage, and
``delta_e`` a probabilistic via-crowding estimate inspired by CUGR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.db.design import Design
from repro.grid.gcellgrid import GCellGrid
from repro.tech import Technology


class EdgeKind(str, Enum):
    """The two edge species of the 3D graph (str-based so edges sort)."""

    WIRE = "wire"
    VIA = "via"


@dataclass(frozen=True, slots=True, order=True)
class GridEdge:
    """One edge of the 3D GCell graph.

    For ``WIRE`` edges on a horizontal layer the edge joins ``(gx, gy)``
    to ``(gx + 1, gy)``; on a vertical layer it joins ``(gx, gy)`` to
    ``(gx, gy + 1)``.  For ``VIA`` edges it joins layer ``layer`` to
    ``layer + 1`` at ``(gx, gy)``.
    """

    layer: int
    gx: int
    gy: int
    kind: EdgeKind

    def endpoints(self, graph: "RoutingGraph") -> tuple[tuple[int, int, int], tuple[int, int, int]]:
        """The two ``(layer, gx, gy)`` nodes this edge joins."""
        if self.kind is EdgeKind.VIA:
            return ((self.layer, self.gx, self.gy), (self.layer + 1, self.gx, self.gy))
        if graph.tech.layers[self.layer].is_horizontal:
            return ((self.layer, self.gx, self.gy), (self.layer, self.gx + 1, self.gy))
        return ((self.layer, self.gx, self.gy), (self.layer, self.gx, self.gy + 1))


class RoutingGraph:
    """Capacity/demand bookkeeping for the 3D GCell graph.

    Wire usage, fixed usage, and via counts are dense numpy arrays, one
    per layer, so whole-map congestion queries are vectorized.
    """

    def __init__(
        self,
        grid: GCellGrid,
        tech: Technology,
        beta: float = 1.5,
        min_wire_layer: int = 1,
    ) -> None:
        self.grid = grid
        self.tech = tech
        self.beta = beta
        #: usage-change listeners (e.g. CostField); a tuple so the notify
        #: loops in the mutators iterate without allocation
        self._listeners: tuple = ()
        #: lowest layer wires may run on (M1 is reserved for pin access,
        #: as in CUGR/TritonRoute default configurations)
        self.min_wire_layer = min_wire_layer
        self.num_layers = tech.num_layers
        nx, ny = grid.nx, grid.ny
        self.wire_capacity: list[np.ndarray] = []
        self.wire_usage: list[np.ndarray] = []
        self.fixed_usage: list[np.ndarray] = []
        #: vias between layer l and l+1 per gcell; index l in [0, L-2]
        self.via_usage: list[np.ndarray] = [
            np.zeros((nx, ny), dtype=np.int32) for _ in range(self.num_layers - 1)
        ]
        for layer in tech.layers:
            if layer.is_horizontal:
                shape = (max(0, nx - 1), ny)
                tracks = max(1, grid.step_y // layer.pitch)
            else:
                shape = (nx, max(0, ny - 1))
                tracks = max(1, grid.step_x // layer.pitch)
            self.wire_capacity.append(np.full(shape, tracks, dtype=np.float64))
            self.wire_usage.append(np.zeros(shape, dtype=np.float64))
            self.fixed_usage.append(np.zeros(shape, dtype=np.float64))

    # -------------------------------------------------------------- listeners

    def add_listener(self, listener) -> None:
        """Subscribe to usage changes.

        ``listener`` must provide ``note_wire(layer, gx, gy)``,
        ``note_via(layer, gx, gy)`` (via between ``layer``/``layer + 1``),
        and ``note_all()``.  Every mutator below notifies, so derived
        caches (the :class:`repro.grid.field.CostField` cost maps) stay
        coherent through rip-up and transaction rollback for free.
        """
        self._listeners = (*self._listeners, listener)

    # ------------------------------------------------------------- topology

    def wire_edge_shape(self, layer: int) -> tuple[int, int]:
        return self.wire_capacity[layer].shape  # type: ignore[return-value]

    def valid_wire_edge(self, edge: GridEdge) -> bool:
        if edge.kind is not EdgeKind.WIRE:
            return False
        shape = self.wire_edge_shape(edge.layer)
        return 0 <= edge.gx < shape[0] and 0 <= edge.gy < shape[1]

    def valid_via_edge(self, edge: GridEdge) -> bool:
        return (
            edge.kind is EdgeKind.VIA
            and 0 <= edge.layer < self.num_layers - 1
            and 0 <= edge.gx < self.grid.nx
            and 0 <= edge.gy < self.grid.ny
        )

    def neighbors(
        self, node: tuple[int, int, int]
    ) -> list[tuple[tuple[int, int, int], GridEdge]]:
        """Adjacent nodes with the edge that reaches them (for maze search)."""
        layer, gx, gy = node
        result: list[tuple[tuple[int, int, int], GridEdge]] = []
        tech_layer = self.tech.layers[layer]
        if layer < self.min_wire_layer:
            pass  # no wire moves below the first routing layer
        elif tech_layer.is_horizontal:
            if gx + 1 < self.grid.nx:
                result.append(
                    ((layer, gx + 1, gy), GridEdge(layer, gx, gy, EdgeKind.WIRE))
                )
            if gx - 1 >= 0:
                result.append(
                    ((layer, gx - 1, gy), GridEdge(layer, gx - 1, gy, EdgeKind.WIRE))
                )
        else:
            if gy + 1 < self.grid.ny:
                result.append(
                    ((layer, gx, gy + 1), GridEdge(layer, gx, gy, EdgeKind.WIRE))
                )
            if gy - 1 >= 0:
                result.append(
                    ((layer, gx, gy - 1), GridEdge(layer, gx, gy - 1, EdgeKind.WIRE))
                )
        if layer + 1 < self.num_layers:
            result.append(
                ((layer + 1, gx, gy), GridEdge(layer, gx, gy, EdgeKind.VIA))
            )
        if layer - 1 >= 0:
            result.append(
                ((layer - 1, gx, gy), GridEdge(layer - 1, gx, gy, EdgeKind.VIA))
            )
        return result

    # --------------------------------------------------------------- updates

    def add_wire(self, edge: GridEdge, amount: float = 1.0) -> None:
        """Record routed-wire usage on a wire edge."""
        if not self.valid_wire_edge(edge):
            raise ValueError(f"invalid wire edge {edge}")
        self.wire_usage[edge.layer][edge.gx, edge.gy] += amount
        for listener in self._listeners:
            listener.note_wire(edge.layer, edge.gx, edge.gy)

    def remove_wire(self, edge: GridEdge, amount: float = 1.0) -> None:
        self.wire_usage[edge.layer][edge.gx, edge.gy] -= amount
        for listener in self._listeners:
            listener.note_wire(edge.layer, edge.gx, edge.gy)

    def add_via(self, edge: GridEdge, amount: int = 1) -> None:
        """Record a via between ``edge.layer`` and ``edge.layer + 1``."""
        if not self.valid_via_edge(edge):
            raise ValueError(f"invalid via edge {edge}")
        self.via_usage[edge.layer][edge.gx, edge.gy] += amount
        for listener in self._listeners:
            listener.note_via(edge.layer, edge.gx, edge.gy)

    def remove_via(self, edge: GridEdge, amount: int = 1) -> None:
        self.via_usage[edge.layer][edge.gx, edge.gy] -= amount
        for listener in self._listeners:
            listener.note_via(edge.layer, edge.gx, edge.gy)

    def apply_route(self, edges: list[GridEdge], sign: int = 1) -> None:
        """Commit (+1) or rip up (-1) a whole route's usage."""
        listeners = self._listeners
        for edge in edges:
            if edge.kind is EdgeKind.WIRE:
                self.wire_usage[edge.layer][edge.gx, edge.gy] += sign
                for listener in listeners:
                    listener.note_wire(edge.layer, edge.gx, edge.gy)
            else:
                self.via_usage[edge.layer][edge.gx, edge.gy] += sign
                for listener in listeners:
                    listener.note_via(edge.layer, edge.gx, edge.gy)

    # ---------------------------------------------------------- fixed usage

    def init_fixed_usage(self, design: Design) -> None:
        """Derive ``U_f`` from routing blockages and macro obstructions.

        A per-GCell blocked-track count is accumulated first; each wire
        edge then takes the *maximum* of its two endpoint GCells, capped
        at the edge capacity (a blockage can never remove more tracks
        than exist).
        """
        nx, ny = self.grid.nx, self.grid.ny
        blocked = [np.zeros((nx, ny), dtype=np.float64) for _ in range(self.num_layers)]
        rects = [(b.layer, b.rect) for b in design.routing_blockages()]
        for cell in design.cells.values():
            if not cell.fixed:
                continue
            rects.extend((s.layer, s.rect) for s in cell.obstruction_shapes())
        for layer, rect in rects:
            tech_layer = self.tech.layers[layer]
            for gx, gy in self.grid.gcells_overlapping(rect):
                overlap = rect.intersection(self.grid.rect_of(gx, gy))
                if overlap is None:
                    continue
                if tech_layer.is_horizontal:
                    tracks = overlap.height / max(1, tech_layer.pitch)
                    frac = min(1.0, overlap.width / self.grid.step_x)
                else:
                    tracks = overlap.width / max(1, tech_layer.pitch)
                    frac = min(1.0, overlap.height / self.grid.step_y)
                blocked[layer][gx, gy] += tracks * frac
        for layer in range(self.num_layers):
            if self.tech.layers[layer].is_horizontal:
                per_edge = np.maximum(blocked[layer][:-1, :], blocked[layer][1:, :])
            else:
                per_edge = np.maximum(blocked[layer][:, :-1], blocked[layer][:, 1:])
            self.fixed_usage[layer][:] = np.minimum(
                per_edge, self.wire_capacity[layer]
            )
        for listener in self._listeners:
            listener.note_all()

    # ------------------------------------------------------ demand (Eq. 9)

    def _via_count_at(self, layer: int, gx: int, gy: int) -> int:
        """Total vias touching GCell ``(gx, gy)`` on ``layer``."""
        count = 0
        if layer - 1 >= 0:
            count += int(self.via_usage[layer - 1][gx, gy])
        if layer < self.num_layers - 1:
            count += int(self.via_usage[layer][gx, gy])
        return count

    def demand(self, edge: GridEdge) -> float:
        """Eq. 9 demand of a wire edge."""
        if edge.kind is not EdgeKind.WIRE:
            raise ValueError("demand is defined for wire edges")
        (l0, x0, y0), (l1, x1, y1) = edge.endpoints(self)
        assert l0 == l1
        v_src = self._via_count_at(l0, x0, y0)
        v_dst = self._via_count_at(l1, x1, y1)
        delta = math.sqrt((v_src + v_dst) / 2.0)
        return (
            float(self.wire_usage[edge.layer][edge.gx, edge.gy])
            + float(self.fixed_usage[edge.layer][edge.gx, edge.gy])
            + self.beta * delta
        )

    def capacity(self, edge: GridEdge) -> float:
        if edge.kind is not EdgeKind.WIRE:
            raise ValueError("capacity is defined for wire edges")
        return float(self.wire_capacity[edge.layer][edge.gx, edge.gy])

    # ----------------------------------------------------------- congestion

    def overflow(self) -> float:
        """Total max(demand - capacity, 0) over all wire edges.

        Uses the cheap (no via term) demand for a vectorized whole-map
        number; the via term matters for routing costs, not this summary.
        """
        total = 0.0
        for layer in range(self.num_layers):
            over = self.wire_usage[layer] + self.fixed_usage[layer] - self.wire_capacity[layer]
            total += float(np.maximum(over, 0.0).sum())
        return total

    def congestion_map(self) -> np.ndarray:
        """Per-GCell max utilization (demand/capacity) over all layers."""
        result = np.zeros((self.grid.nx, self.grid.ny), dtype=np.float64)
        for layer in range(self.num_layers):
            usage = self.wire_usage[layer] + self.fixed_usage[layer]
            util = usage / np.maximum(self.wire_capacity[layer], 1e-9)
            if self.tech.layers[layer].is_horizontal:
                if util.shape[0] == 0:
                    continue
                result[:-1, :] = np.maximum(result[:-1, :], util)
                result[1:, :] = np.maximum(result[1:, :], util)
            else:
                if util.shape[1] == 0:
                    continue
                result[:, :-1] = np.maximum(result[:, :-1], util)
                result[:, 1:] = np.maximum(result[:, 1:], util)
        return result

    def total_vias(self) -> int:
        return int(sum(v.sum() for v in self.via_usage))

    def total_wire_dbu(self) -> int:
        """Total routed wire length in DBU (edge count x gcell step)."""
        total = 0
        for layer, usage in enumerate(self.wire_usage):
            step = (
                self.grid.step_x
                if self.tech.layers[layer].is_horizontal
                else self.grid.step_y
            )
            total += int(usage.sum()) * step
        return total

"""Edge and path costs (Eq. 10 of the paper).

    cost_e = Unit_e * Dist(e) * (1 + penalty(e))

``Unit_e`` is the ISPD-2018 metric weight of the edge species (wire 0.5
per M2-pitch of length, via 2 per cut), ``Dist(e)`` the Manhattan
distance between GCell centers, and ``penalty(e)`` a logistic function of
demand versus capacity.

Note on the penalty sign: the paper prints ``1 / (1 + exp(S * (D_e -
C_e)))``, which *decreases* as demand exceeds capacity — a typo, since
the text says increasing ``S`` causes "faster overflow in an edge" (the
penalty must grow with congestion, as in NTHU-Route [22]).  We implement
the intended ``1 / (1 + exp(-S * (D_e - C_e)))``.

This scalar model is the *reference oracle*: the vectorized
:class:`repro.grid.field.CostField` kernel is pinned to it bit-for-bit
(same ``np.exp``, same operation order), and the parity tests enforce
agreement to 1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.gcellgrid import GCellGrid
from repro.grid.graph import EdgeKind, GridEdge, RoutingGraph
from repro.tech import Technology


@dataclass(slots=True)
class CostParams:
    """Tunable constants of the cost model.

    ``wire_weight`` and ``via_weight`` mirror the ISPD-2018 evaluation
    weights (0.5 per wire unit, 2 per via) the paper cites to explain why
    via reduction dominates.  ``slope`` is the logistic slope ``S``;
    ``use_penalty`` exists for the ablation study.
    """

    wire_weight: float = 0.5
    via_weight: float = 2.0
    slope: float = 1.0
    use_penalty: bool = True


def m2_pitch(tech: Technology) -> int:
    """The wire-length normalization pitch (M2, or M1 on 1-layer stacks)."""
    pitch_layer = min(len(tech.layers) - 1, 1)
    return max(1, tech.layers[pitch_layer].pitch)


def wire_edge_dists(
    grid: GCellGrid, tech: Technology, pitch: int
) -> tuple[float, ...]:
    """Per-layer Eq. 10 ``Dist(e)`` of one wire edge, in M2-pitch units.

    Adjacent-GCell center distance is constant per layer direction
    (``step_x`` on horizontal layers, ``step_y`` on vertical ones), so it
    is computed once here instead of per ``edge_cost`` call; the
    vectorized :class:`repro.grid.field.CostField` reuses the exact same
    constants.
    """
    return tuple(
        (grid.step_x if layer.is_horizontal else grid.step_y) / pitch
        for layer in tech.layers
    )


def logistic(x: float) -> float:
    """Clamped logistic ``1 / (1 + exp(-x))`` used by the Eq. 10 penalty.

    Uses ``np.exp`` (not ``math.exp``) so the scalar oracle and the
    vectorized kernel round identically — numpy's scalar and array exp
    agree bit-for-bit, while libm's may differ by one ulp.
    """
    if x > 60.0:
        return 1.0
    if x < -60.0:
        return 0.0
    return float(1.0 / (1.0 + np.exp(-x)))


class CostModel:
    """Evaluates Eq. 10 over a :class:`RoutingGraph`."""

    def __init__(self, graph: RoutingGraph, params: CostParams | None = None) -> None:
        self.graph = graph
        self.params = params or CostParams()
        # Normalize wire length to M2-pitch units so wire and via weights
        # are on the contest's common scale.
        self.pitch = m2_pitch(graph.tech)
        self._wire_dist = wire_edge_dists(graph.grid, graph.tech, self.pitch)

    def penalty(self, edge: GridEdge) -> float:
        """Logistic congestion penalty in [0, 1]."""
        if not self.params.use_penalty:
            return 0.0
        demand = self.graph.demand(edge)
        capacity = self.graph.capacity(edge)
        return logistic(self.params.slope * (demand - capacity))

    def edge_cost(self, edge: GridEdge) -> float:
        """Eq. 10 cost of one edge."""
        if edge.kind is EdgeKind.VIA:
            return self.params.via_weight
        return (
            self.params.wire_weight
            * self._wire_dist[edge.layer]
            * (1.0 + self.penalty(edge))
        )

    def path_cost(self, edges: list[GridEdge]) -> float:
        """Total cost of a route (a list of graph edges)."""
        return sum(self.edge_cost(edge) for edge in edges)

    def lower_bound(
        self, a: tuple[int, int, int], b: tuple[int, int, int]
    ) -> float:
        """Admissible A* heuristic: congestion-free cost from ``a`` to ``b``."""
        grid = self.graph.grid
        dist = grid.manhattan_centers((a[1], a[2]), (b[1], b[2])) / self.pitch
        vias = abs(a[0] - b[0])
        return self.params.wire_weight * dist + self.params.via_weight * vias

"""Edge and path costs (Eq. 10 of the paper).

    cost_e = Unit_e * Dist(e) * (1 + penalty(e))

``Unit_e`` is the ISPD-2018 metric weight of the edge species (wire 0.5
per M2-pitch of length, via 2 per cut), ``Dist(e)`` the Manhattan
distance between GCell centers, and ``penalty(e)`` a logistic function of
demand versus capacity.

Note on the penalty sign: the paper prints ``1 / (1 + exp(S * (D_e -
C_e)))``, which *decreases* as demand exceeds capacity — a typo, since
the text says increasing ``S`` causes "faster overflow in an edge" (the
penalty must grow with congestion, as in NTHU-Route [22]).  We implement
the intended ``1 / (1 + exp(-S * (D_e - C_e)))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.grid.graph import EdgeKind, GridEdge, RoutingGraph


@dataclass(slots=True)
class CostParams:
    """Tunable constants of the cost model.

    ``wire_weight`` and ``via_weight`` mirror the ISPD-2018 evaluation
    weights (0.5 per wire unit, 2 per via) the paper cites to explain why
    via reduction dominates.  ``slope`` is the logistic slope ``S``;
    ``use_penalty`` exists for the ablation study.
    """

    wire_weight: float = 0.5
    via_weight: float = 2.0
    slope: float = 1.0
    use_penalty: bool = True


class CostModel:
    """Evaluates Eq. 10 over a :class:`RoutingGraph`."""

    def __init__(self, graph: RoutingGraph, params: CostParams | None = None) -> None:
        self.graph = graph
        self.params = params or CostParams()
        # Normalize wire length to M2-pitch units so wire and via weights
        # are on the contest's common scale.
        pitch_layer = min(len(graph.tech.layers) - 1, 1)
        self._pitch = max(1, graph.tech.layers[pitch_layer].pitch)

    def penalty(self, edge: GridEdge) -> float:
        """Logistic congestion penalty in [0, 1]."""
        if not self.params.use_penalty:
            return 0.0
        demand = self.graph.demand(edge)
        capacity = self.graph.capacity(edge)
        x = self.params.slope * (demand - capacity)
        # Clamp to avoid overflow in exp for wildly congested edges.
        if x > 60.0:
            return 1.0
        if x < -60.0:
            return 0.0
        return 1.0 / (1.0 + math.exp(-x))

    def edge_cost(self, edge: GridEdge) -> float:
        """Eq. 10 cost of one edge."""
        if edge.kind is EdgeKind.VIA:
            return self.params.via_weight
        grid = self.graph.grid
        (l0, x0, y0), (_, x1, y1) = edge.endpoints(self.graph)
        dist = grid.manhattan_centers((x0, y0), (x1, y1)) / self._pitch
        return self.params.wire_weight * dist * (1.0 + self.penalty(edge))

    def path_cost(self, edges: list[GridEdge]) -> float:
        """Total cost of a route (a list of graph edges)."""
        return sum(self.edge_cost(edge) for edge in edges)

    def lower_bound(
        self, a: tuple[int, int, int], b: tuple[int, int, int]
    ) -> float:
        """Admissible A* heuristic: congestion-free cost from ``a`` to ``b``."""
        grid = self.graph.grid
        dist = grid.manhattan_centers((a[1], a[2]), (b[1], b[2])) / self._pitch
        vias = abs(a[0] - b[0])
        return self.params.wire_weight * dist + self.params.via_weight * vias

"""GCell grid and the 3D global-routing graph (Section III of the paper)."""

from repro.grid.gcellgrid import GCellGrid
from repro.grid.graph import EdgeKind, GridEdge, RoutingGraph
from repro.grid.cost import CostModel, CostParams
from repro.grid.field import CostField

__all__ = [
    "GCellGrid",
    "RoutingGraph",
    "GridEdge",
    "EdgeKind",
    "CostModel",
    "CostParams",
    "CostField",
]

"""CUGR-style 3D global routing.

Net decomposition via RSMT, L/Z pattern routing with dynamic-programming
layer assignment (the paper's "3D pattern route"), an A* maze fallback,
and a rip-up-and-reroute scheduler, all costed by Eq. 9/10.
"""

from repro.groute.patterns import pattern_paths_2d, runs_of_path
from repro.groute.pattern3d import PatternRouter3D
from repro.groute.maze import maze_route
from repro.groute.router import GlobalRouter, NetRoute

__all__ = [
    "pattern_paths_2d",
    "runs_of_path",
    "PatternRouter3D",
    "maze_route",
    "GlobalRouter",
    "NetRoute",
]

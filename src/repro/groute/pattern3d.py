"""The 3D pattern router (Algorithm 3's ``getPatternRoute3D``).

Takes a 2D GCell polyline, assigns one routing layer to every straight
run with a dynamic program, and materializes the chosen layers into
graph edges (wires plus the vias stitching runs and terminals together).
The DP cost is exactly the Eq. 10 edge cost under the current
demand/capacity state, so congested layers are avoided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid import CostModel, EdgeKind, GridEdge, RoutingGraph
from repro.groute.patterns import GPoint, runs_of_path


@dataclass(slots=True)
class Pattern3DResult:
    """A materialized 3D route: its edges, modeled cost, and end layer."""

    edges: list[GridEdge]
    cost: float
    end_layer: int = 0


class PatternRouter3D:
    """Layer assignment over 2D patterns."""

    def __init__(
        self,
        graph: RoutingGraph,
        cost_model: CostModel,
        min_layer: int = 0,
    ) -> None:
        self.graph = graph
        self.cost = cost_model
        self.min_layer = min_layer

    # ------------------------------------------------------------------ API

    def route(
        self,
        path: list[GPoint],
        src_layer: int,
        dst_layer: int | None,
    ) -> Pattern3DResult | None:
        """Assign layers to ``path`` connecting the two terminal layers.

        With ``dst_layer=None`` the far end is a Steiner junction whose
        layer is chosen freely by the DP (no terminal via stack there);
        the chosen layer is reported in ``end_layer``.  Returns ``None``
        when some run direction has no usable layer.
        """
        runs = runs_of_path(path)
        if not runs:
            # Both terminals share a GCell: a via stack suffices.
            gx, gy = path[0]
            edges = self._via_stack(gx, gy, src_layer, dst_layer if dst_layer is not None else src_layer)
            end = dst_layer if dst_layer is not None else src_layer
            return Pattern3DResult(
                edges=edges, cost=self.cost.path_cost(edges), end_layer=end
            )

        run_layers: list[list[int]] = []
        run_costs: list[dict[int, float]] = []
        for run in runs:
            horizontal = run[0][1] == run[1][1]
            layers = [
                layer.index
                for layer in self.graph.tech.layers
                if layer.index >= self.min_layer
                and layer.is_horizontal == horizontal
            ]
            if not layers:
                return None
            run_layers.append(layers)
            run_costs.append(
                {layer: self._run_cost(run, layer) for layer in layers}
            )

        via_w = self.cost.params.via_weight
        # DP over runs; state = chosen layer of the current run.
        best: dict[int, float] = {}
        back: list[dict[int, int]] = []
        for layer in run_layers[0]:
            best[layer] = run_costs[0][layer] + via_w * abs(layer - src_layer)
        for i in range(1, len(runs)):
            nxt: dict[int, float] = {}
            links: dict[int, int] = {}
            for layer in run_layers[i]:
                candidates = (
                    (best[prev] + via_w * abs(layer - prev), prev)
                    for prev in run_layers[i - 1]
                )
                value, prev = min(candidates)
                nxt[layer] = value + run_costs[i][layer]
                links[layer] = prev
            best = nxt
            back.append(links)

        if dst_layer is None:
            final_layer = min(best, key=lambda layer: best[layer])
        else:
            final_layer = min(
                best, key=lambda layer: best[layer] + via_w * abs(layer - dst_layer)
            )
        chosen = [final_layer]
        for links in reversed(back):
            chosen.append(links[chosen[-1]])
        chosen.reverse()

        edges = self._materialize(
            runs, chosen, src_layer, dst_layer if dst_layer is not None else chosen[-1]
        )
        return Pattern3DResult(
            edges=edges, cost=self.cost.path_cost(edges), end_layer=chosen[-1]
        )

    # -------------------------------------------------------------- helpers

    def _run_cost(self, run: tuple[GPoint, GPoint], layer: int) -> float:
        return sum(self.cost.edge_cost(e) for e in self._run_edges(run, layer))

    def _run_edges(self, run: tuple[GPoint, GPoint], layer: int) -> list[GridEdge]:
        (x0, y0), (x1, y1) = run
        edges: list[GridEdge] = []
        if y0 == y1:
            for gx in range(min(x0, x1), max(x0, x1)):
                edges.append(GridEdge(layer, gx, y0, EdgeKind.WIRE))
        else:
            for gy in range(min(y0, y1), max(y0, y1)):
                edges.append(GridEdge(layer, x0, gy, EdgeKind.WIRE))
        return edges

    def _via_stack(self, gx: int, gy: int, lo: int, hi: int) -> list[GridEdge]:
        if lo > hi:
            lo, hi = hi, lo
        return [GridEdge(layer, gx, gy, EdgeKind.VIA) for layer in range(lo, hi)]

    def _materialize(
        self,
        runs: list[tuple[GPoint, GPoint]],
        layers: list[int],
        src_layer: int,
        dst_layer: int,
    ) -> list[GridEdge]:
        edges: list[GridEdge] = []
        sx, sy = runs[0][0]
        edges += self._via_stack(sx, sy, src_layer, layers[0])
        for i, (run, layer) in enumerate(zip(runs, layers)):
            edges += self._run_edges(run, layer)
            if i + 1 < len(runs):
                bx, by = run[1]
                edges += self._via_stack(bx, by, layer, layers[i + 1])
        ex, ey = runs[-1][1]
        edges += self._via_stack(ex, ey, layers[-1], dst_layer)
        return edges

"""The 3D pattern router (Algorithm 3's ``getPatternRoute3D``).

Takes a 2D GCell polyline, assigns one routing layer to every straight
run with a dynamic program, and materializes the chosen layers into
graph edges (wires plus the vias stitching runs and terminals together).
The DP cost is exactly the Eq. 10 edge cost under the current
demand/capacity state, so congested layers are avoided.

When a :class:`repro.grid.field.CostField` is attached, each run cost is
two prefix-sum lookups (O(1) per run) instead of O(len) scalar
``edge_cost`` calls, and ``route_cost`` prices a candidate without
materializing any edges — the hot path of CR&P's candidate estimation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.grid import CostField, CostModel, EdgeKind, GridEdge, RoutingGraph
from repro.groute.patterns import GPoint, runs_of_path


@dataclass(slots=True)
class Pattern3DResult:
    """A materialized 3D route: its edges, modeled cost, and end layer."""

    edges: list[GridEdge]
    cost: float
    end_layer: int = 0


class PatternRouter3D:
    """Layer assignment over 2D patterns."""

    def __init__(
        self,
        graph: RoutingGraph,
        cost_model: CostModel,
        min_layer: int = 0,
        field: CostField | None = None,
    ) -> None:
        self.graph = graph
        self.cost = cost_model
        self.min_layer = min_layer
        self.field = field
        #: usable layers per run direction (True = horizontal), fixed by
        #: the tech stack so the DP never re-filters them per run
        self._dir_layers: dict[bool, list[int]] = {
            horizontal: [
                layer.index
                for layer in graph.tech.layers
                if layer.index >= min_layer
                and layer.is_horizontal == horizontal
            ]
            for horizontal in (True, False)
        }

    # ------------------------------------------------------------------ API

    def route(
        self,
        path: list[GPoint],
        src_layer: int,
        dst_layer: int | None,
    ) -> Pattern3DResult | None:
        """Assign layers to ``path`` connecting the two terminal layers.

        With ``dst_layer=None`` the far end is a Steiner junction whose
        layer is chosen freely by the DP (no terminal via stack there);
        the chosen layer is reported in ``end_layer``.  Returns ``None``
        when some run direction has no usable layer.
        """
        if self.field is not None:
            self.field.ensure()
        runs = runs_of_path(path)
        if not runs:
            # Both terminals share a GCell: a via stack suffices.
            gx, gy = path[0]
            edges = self._via_stack(gx, gy, src_layer, dst_layer if dst_layer is not None else src_layer)
            end = dst_layer if dst_layer is not None else src_layer
            return Pattern3DResult(
                edges=edges, cost=self._path_cost(edges), end_layer=end
            )

        dp = self._layer_dp(runs, src_layer)
        if dp is None:
            return None
        run_layers, best, back = dp

        via_w = self.cost.params.via_weight
        if dst_layer is None:
            final_layer = min(best, key=lambda layer: best[layer])
        else:
            final_layer = min(
                best, key=lambda layer: best[layer] + via_w * abs(layer - dst_layer)
            )
        chosen = [final_layer]
        for links in reversed(back):
            chosen.append(links[chosen[-1]])
        chosen.reverse()

        edges = self._materialize(
            runs, chosen, src_layer, dst_layer if dst_layer is not None else chosen[-1]
        )
        return Pattern3DResult(
            edges=edges, cost=self._path_cost(edges), end_layer=chosen[-1]
        )

    def route_cost(
        self,
        path: list[GPoint],
        src_layer: int,
        dst_layer: int | None,
    ) -> float | None:
        """Eq. 10 cost of the best layer assignment, without materializing.

        The DP value already equals the edge-sum of the route that
        :meth:`route` would build, so candidate estimation can rank
        patterns with no edge lists at all.  Returns ``None`` when some
        run direction has no usable layer.
        """
        if self.field is not None:
            self.field.ensure()
        via_w = self.cost.params.via_weight
        runs = runs_of_path(path)
        if not runs:
            end = dst_layer if dst_layer is not None else src_layer
            return via_w * abs(end - src_layer)
        dp = self._layer_dp(runs, src_layer)
        if dp is None:
            return None
        _, best, _ = dp
        if dst_layer is None:
            return min(best.values())
        return min(
            best[layer] + via_w * abs(layer - dst_layer) for layer in best
        )

    @contextmanager
    def using(
        self, cost_model: CostModel, field: CostField | None
    ) -> Iterator["PatternRouter3D"]:
        """Temporarily price with a different cost model *and* field.

        The ablation paths (penalty-free ECC estimation, the Fontana
        baseline) must swap both together: swapping only the scalar
        model would leave a field-equipped router pricing with the old
        penalty-on maps.
        """
        prev_cost, prev_field = self.cost, self.field
        self.cost, self.field = cost_model, field
        try:
            yield self
        finally:
            self.cost, self.field = prev_cost, prev_field

    # -------------------------------------------------------------- helpers

    def _layer_dp(
        self, runs: list[tuple[GPoint, GPoint]], src_layer: int
    ) -> tuple[list[list[int]], dict[int, float], list[dict[int, int]]] | None:
        """DP over runs; state = chosen layer of the current run.

        Returns the per-run candidate layers, the final best-cost map,
        and back pointers, or ``None`` if a run has no usable layer.
        """
        run_layers: list[list[int]] = []
        run_costs: list[dict[int, float]] = []
        for run in runs:
            layers = self._dir_layers[run[0][1] == run[1][1]]
            if not layers:
                return None
            run_layers.append(layers)
            run_costs.append(
                {layer: self._run_cost(run, layer) for layer in layers}
            )

        via_w = self.cost.params.via_weight
        best: dict[int, float] = {}
        back: list[dict[int, int]] = []
        for layer in run_layers[0]:
            best[layer] = run_costs[0][layer] + via_w * abs(layer - src_layer)
        for i in range(1, len(runs)):
            nxt: dict[int, float] = {}
            links: dict[int, int] = {}
            costs_i = run_costs[i]
            prev_layers = run_layers[i - 1]
            # Explicit min loop; candidate layers ascend, so strict `<`
            # keeps the lowest layer on ties exactly like min() over
            # (value, prev) tuples did.
            for layer in run_layers[i]:
                value = float("inf")
                prev = -1
                for p in prev_layers:
                    cand = best[p] + via_w * abs(layer - p)
                    if cand < value:
                        value = cand
                        prev = p
                nxt[layer] = value + costs_i[layer]
                links[layer] = prev
            best = nxt
            back.append(links)
        return run_layers, best, back

    def _path_cost(self, edges: list[GridEdge]) -> float:
        """Per-edge route cost — bit-identical with and without a field."""
        if self.field is not None:
            return self.field.path_cost(edges)
        return self.cost.path_cost(edges)

    def _run_cost(self, run: tuple[GPoint, GPoint], layer: int) -> float:
        (x0, y0), (x1, y1) = run
        field = self.field
        if field is not None:
            # Two prefix lookups; route()/route_cost() ensured freshness.
            if y0 == y1:
                return field.run_cost(layer, min(x0, x1), max(x0, x1), y0)
            return field.run_cost(layer, min(y0, y1), max(y0, y1), x0)
        # Scalar oracle fallback when no field is attached.
        return sum(self.cost.edge_cost(e) for e in self._run_edges(run, layer))  # repro: noqa:REPRO-P001

    def _run_edges(self, run: tuple[GPoint, GPoint], layer: int) -> list[GridEdge]:
        (x0, y0), (x1, y1) = run
        edges: list[GridEdge] = []
        if y0 == y1:
            for gx in range(min(x0, x1), max(x0, x1)):
                edges.append(GridEdge(layer, gx, y0, EdgeKind.WIRE))
        else:
            for gy in range(min(y0, y1), max(y0, y1)):
                edges.append(GridEdge(layer, x0, gy, EdgeKind.WIRE))
        return edges

    def _via_stack(self, gx: int, gy: int, lo: int, hi: int) -> list[GridEdge]:
        if lo > hi:
            lo, hi = hi, lo
        return [GridEdge(layer, gx, gy, EdgeKind.VIA) for layer in range(lo, hi)]

    def _materialize(
        self,
        runs: list[tuple[GPoint, GPoint]],
        layers: list[int],
        src_layer: int,
        dst_layer: int,
    ) -> list[GridEdge]:
        edges: list[GridEdge] = []
        sx, sy = runs[0][0]
        edges += self._via_stack(sx, sy, src_layer, layers[0])
        for i, (run, layer) in enumerate(zip(runs, layers)):
            edges += self._run_edges(run, layer)
            if i + 1 < len(runs):
                bx, by = run[1]
                edges += self._via_stack(bx, by, layer, layers[i + 1])
        ex, ey = runs[-1][1]
        edges += self._via_stack(ex, ey, layers[-1], dst_layer)
        return edges

"""A* maze routing over the 3D GCell graph.

The fallback when pattern routing cannot find an overflow-free path —
used by the rip-up-and-reroute passes.  The search is bounded to the
bounding box of the terminals plus a margin, which keeps RRR tractable
on large grids.

With a :class:`repro.grid.field.CostField` attached the inner loop reads
step costs straight out of the dense per-layer maps and generates
neighbors inline — no ``GridEdge`` construction, no per-edge ``demand()``
recomputation.  The dense maps are bit-identical to the scalar oracle
and neighbors are pushed in the same order, so both paths expand the
same nodes and return the same route.
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.grid import CostField, CostModel, EdgeKind, GridEdge, RoutingGraph
from repro.guard.deadline import DeadlineTicker
from repro.guard.faults import fault_point
from repro.obs import get_metrics

Node = tuple[int, int, int]  # (layer, gx, gy)

#: default search-window margin (gcells beyond the terminal bbox); the
#: parallel partitioner sizes RRR conflict regions from this bound
MAZE_MARGIN = 4


def maze_route(
    graph: RoutingGraph,
    cost_model: CostModel,
    sources: set[Node],
    targets: set[Node],
    margin: int = MAZE_MARGIN,
    overflow_penalty: float = 0.0,
    field: CostField | None = None,
) -> list[GridEdge] | None:
    """Cheapest path from any source to any target.

    ``overflow_penalty`` adds a hard surcharge to edges whose demand
    already meets capacity, steering RRR away from full edges entirely.
    Returns the edge list, or ``None`` when disconnected inside the
    search window.
    """
    if not sources or not targets:
        return None
    if sources & targets:
        return []
    # "disconnect" forces the no-path result; a "fail" fault raises here.
    if fault_point("groute.maze") is not None:
        return None
    if field is not None:
        return _maze_route_field(
            graph, cost_model, sources, targets, margin, overflow_penalty, field
        )
    return _maze_route_scalar(
        graph, cost_model, sources, targets, margin, overflow_penalty
    )


def _window(
    graph: RoutingGraph, sources: set[Node], targets: set[Node], margin: int
) -> tuple[int, int, int, int]:
    xs = [n[1] for n in sources | targets]
    ys = [n[2] for n in sources | targets]
    lo_x = max(0, min(xs) - margin)
    hi_x = min(graph.grid.nx - 1, max(xs) + margin)
    lo_y = max(0, min(ys) - margin)
    hi_y = min(graph.grid.ny - 1, max(ys) + margin)
    return lo_x, hi_x, lo_y, hi_y


def _maze_route_scalar(
    graph: RoutingGraph,
    cost_model: CostModel,
    sources: set[Node],
    targets: set[Node],
    margin: int,
    overflow_penalty: float,
) -> list[GridEdge] | None:
    """Reference A* pricing every step through the scalar oracle."""
    lo_x, hi_x, lo_y, hi_y = _window(graph, sources, targets, margin)

    def in_window(node: Node) -> bool:
        return lo_x <= node[1] <= hi_x and lo_y <= node[2] <= hi_y

    def heuristic(node: Node) -> float:
        return min(cost_model.lower_bound(node, t) for t in targets)

    tie = count()
    open_heap: list[tuple[float, int, Node]] = []
    g_score: dict[Node, float] = {}
    came_from: dict[Node, tuple[Node, GridEdge]] = {}
    for s in sources:
        g_score[s] = 0.0
        heapq.heappush(open_heap, (heuristic(s), next(tie), s))

    # Expansions are tallied locally and recorded once on exit so the
    # inner loop stays metric-free.
    expansions = 0
    ticker = DeadlineTicker("groute.maze", stride=64)
    try:
        while open_heap:
            ticker.tick()
            f, _, node = heapq.heappop(open_heap)
            g = g_score[node]
            if f > g + heuristic(node) + 1e-9:
                continue  # stale entry
            expansions += 1
            if node in targets:
                return _reconstruct(node, came_from)
            for neighbour, edge in graph.neighbors(node):
                if not in_window(neighbour):
                    continue
                step = cost_model.edge_cost(edge)  # repro: noqa:REPRO-P001
                if overflow_penalty > 0.0 and edge.kind.value == "wire":
                    if graph.demand(edge) >= graph.capacity(edge):
                        step += overflow_penalty
                tentative = g + step
                if tentative < g_score.get(neighbour, float("inf")) - 1e-12:
                    g_score[neighbour] = tentative
                    came_from[neighbour] = (node, edge)
                    heapq.heappush(
                        open_heap,
                        (tentative + heuristic(neighbour), next(tie), neighbour),
                    )
        return None
    finally:
        metrics = get_metrics()
        metrics.count("groute.maze_calls")
        metrics.observe("groute.maze_expansions", expansions)


def _maze_route_field(
    graph: RoutingGraph,
    cost_model: CostModel,
    sources: set[Node],
    targets: set[Node],
    margin: int,
    overflow_penalty: float,
    field: CostField,
) -> list[GridEdge] | None:
    """Dense-map A*: array step costs, inline neighbors, node-pair edges.

    Neighbor order matches :meth:`RoutingGraph.neighbors` (wire forward,
    wire backward, via up, via down) so the heap tie counter — and hence
    the returned path — is identical to the scalar reference.
    """
    lo_x, hi_x, lo_y, hi_y = _window(graph, sources, targets, margin)
    wire_cost = field.wire_cost_maps()  # refreshes the field once
    via_cost = field.via_cost
    overflow = None
    if overflow_penalty > 0.0:
        demand = field.demand_maps()
        overflow = [
            demand[layer] >= graph.wire_capacity[layer]
            for layer in range(graph.num_layers)
        ]
    horizontal = tuple(layer.is_horizontal for layer in graph.tech.layers)
    num_layers = graph.num_layers
    min_wire_layer = graph.min_wire_layer

    # The heuristic arithmetic mirrors CostModel.lower_bound operation
    # for operation, so f-values (and hence pop order) match the scalar
    # reference; the single-target case just skips the min().
    wire_w = cost_model.params.wire_weight
    via_w = cost_model.params.via_weight
    pitch = cost_model.pitch
    step_x, step_y = graph.grid.step_x, graph.grid.step_y
    if len(targets) == 1:
        t_layer, t_gx, t_gy = next(iter(targets))

        def heuristic(node: Node) -> float:
            dist = (
                abs(node[1] - t_gx) * step_x + abs(node[2] - t_gy) * step_y
            ) / pitch
            return wire_w * dist + via_w * abs(node[0] - t_layer)

    else:

        def heuristic(node: Node) -> float:
            return min(cost_model.lower_bound(node, t) for t in targets)

    tie = count()
    open_heap: list[tuple[float, int, Node]] = []
    g_score: dict[Node, float] = {}
    came_from: dict[Node, Node] = {}
    for s in sources:
        g_score[s] = 0.0
        heapq.heappush(open_heap, (heuristic(s), next(tie), s))

    heappush = heapq.heappush
    heappop = heapq.heappop
    g_score_get = g_score.get
    next_tie = tie.__next__
    inf = float("inf")
    expansions = 0
    ticker = DeadlineTicker("groute.maze", stride=64)
    try:
        while open_heap:
            ticker.tick()
            f, _, node = heappop(open_heap)
            g = g_score[node]
            if f > g + heuristic(node) + 1e-9:
                continue  # stale entry
            expansions += 1
            if node in targets:
                return _reconstruct_nodes(graph, node, came_from)
            layer, gx, gy = node

            def consider(neighbour: Node, step: float) -> None:
                tentative = g + step
                if tentative < g_score_get(neighbour, inf) - 1e-12:
                    g_score[neighbour] = tentative
                    came_from[neighbour] = node
                    heappush(
                        open_heap,
                        (tentative + heuristic(neighbour), next_tie(), neighbour),
                    )

            # Neighbor order matches RoutingGraph.neighbors: wire forward,
            # wire backward, via up, via down.
            if layer >= min_wire_layer:
                cost_row = wire_cost[layer]
                over_row = overflow[layer] if overflow is not None else None
                if horizontal[layer]:
                    if gx + 1 <= hi_x:
                        step = cost_row[gx, gy]
                        if over_row is not None and over_row[gx, gy]:
                            step += overflow_penalty
                        consider((layer, gx + 1, gy), step)
                    if gx - 1 >= lo_x:
                        step = cost_row[gx - 1, gy]
                        if over_row is not None and over_row[gx - 1, gy]:
                            step += overflow_penalty
                        consider((layer, gx - 1, gy), step)
                else:
                    if gy + 1 <= hi_y:
                        step = cost_row[gx, gy]
                        if over_row is not None and over_row[gx, gy]:
                            step += overflow_penalty
                        consider((layer, gx, gy + 1), step)
                    if gy - 1 >= lo_y:
                        step = cost_row[gx, gy - 1]
                        if over_row is not None and over_row[gx, gy - 1]:
                            step += overflow_penalty
                        consider((layer, gx, gy - 1), step)
            if layer + 1 < num_layers:
                consider((layer + 1, gx, gy), via_cost)
            if layer - 1 >= 0:
                consider((layer - 1, gx, gy), via_cost)
        return None
    finally:
        metrics = get_metrics()
        metrics.count("groute.maze_calls")
        metrics.observe("groute.maze_expansions", expansions)


def _edge_between(a: Node, b: Node) -> GridEdge:
    """The graph edge joining two adjacent nodes of a maze path."""
    if a[0] != b[0]:
        return GridEdge(min(a[0], b[0]), a[1], a[2], EdgeKind.VIA)
    if a[2] == b[2]:
        return GridEdge(a[0], min(a[1], b[1]), a[2], EdgeKind.WIRE)
    return GridEdge(a[0], a[1], min(a[2], b[2]), EdgeKind.WIRE)


def _reconstruct(
    node: Node, came_from: dict[Node, tuple[Node, GridEdge]]
) -> list[GridEdge]:
    edges: list[GridEdge] = []
    while node in came_from:
        node, edge = came_from[node]
        edges.append(edge)
    edges.reverse()
    return edges


def _reconstruct_nodes(
    graph: RoutingGraph, node: Node, came_from: dict[Node, Node]
) -> list[GridEdge]:
    """Rebuild the edge list of the fast path from its node chain."""
    edges: list[GridEdge] = []
    while node in came_from:
        parent = came_from[node]
        edges.append(_edge_between(parent, node))
        node = parent
    edges.reverse()
    return edges

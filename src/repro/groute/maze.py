"""A* maze routing over the 3D GCell graph.

The fallback when pattern routing cannot find an overflow-free path —
used by the rip-up-and-reroute passes.  The search is bounded to the
bounding box of the terminals plus a margin, which keeps RRR tractable
on large grids.
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.grid import CostModel, GridEdge, RoutingGraph
from repro.guard.deadline import check_deadline
from repro.guard.faults import fault_point
from repro.obs import get_metrics

Node = tuple[int, int, int]  # (layer, gx, gy)


def maze_route(
    graph: RoutingGraph,
    cost_model: CostModel,
    sources: set[Node],
    targets: set[Node],
    margin: int = 4,
    overflow_penalty: float = 0.0,
) -> list[GridEdge] | None:
    """Cheapest path from any source to any target.

    ``overflow_penalty`` adds a hard surcharge to edges whose demand
    already meets capacity, steering RRR away from full edges entirely.
    Returns the edge list, or ``None`` when disconnected inside the
    search window.
    """
    if not sources or not targets:
        return None
    if sources & targets:
        return []
    # "disconnect" forces the no-path result; a "fail" fault raises here.
    if fault_point("groute.maze") is not None:
        return None

    xs = [n[1] for n in sources | targets]
    ys = [n[2] for n in sources | targets]
    lo_x = max(0, min(xs) - margin)
    hi_x = min(graph.grid.nx - 1, max(xs) + margin)
    lo_y = max(0, min(ys) - margin)
    hi_y = min(graph.grid.ny - 1, max(ys) + margin)

    def in_window(node: Node) -> bool:
        return lo_x <= node[1] <= hi_x and lo_y <= node[2] <= hi_y

    def heuristic(node: Node) -> float:
        return min(cost_model.lower_bound(node, t) for t in targets)

    tie = count()
    open_heap: list[tuple[float, int, Node]] = []
    g_score: dict[Node, float] = {}
    came_from: dict[Node, tuple[Node, GridEdge]] = {}
    for s in sources:
        g_score[s] = 0.0
        heapq.heappush(open_heap, (heuristic(s), next(tie), s))

    # Expansions are tallied locally and recorded once on exit so the
    # inner loop stays metric-free.
    expansions = 0
    try:
        while open_heap:
            if expansions % 256 == 0:
                check_deadline("groute.maze")
            f, _, node = heapq.heappop(open_heap)
            g = g_score[node]
            if f > g + heuristic(node) + 1e-9:
                continue  # stale entry
            expansions += 1
            if node in targets:
                return _reconstruct(node, came_from)
            for neighbour, edge in graph.neighbors(node):
                if not in_window(neighbour):
                    continue
                step = cost_model.edge_cost(edge)
                if overflow_penalty > 0.0 and edge.kind.value == "wire":
                    if graph.demand(edge) >= graph.capacity(edge):
                        step += overflow_penalty
                tentative = g + step
                if tentative < g_score.get(neighbour, float("inf")) - 1e-12:
                    g_score[neighbour] = tentative
                    came_from[neighbour] = (node, edge)
                    heapq.heappush(
                        open_heap,
                        (tentative + heuristic(neighbour), next(tie), neighbour),
                    )
        return None
    finally:
        metrics = get_metrics()
        metrics.count("groute.maze_calls")
        metrics.observe("groute.maze_expansions", expansions)


def _reconstruct(
    node: Node, came_from: dict[Node, tuple[Node, GridEdge]]
) -> list[GridEdge]:
    edges: list[GridEdge] = []
    while node in came_from:
        node, edge = came_from[node]
        edges.append(edge)
    edges.reverse()
    return edges

"""The global-routing driver (the flow's CUGR stand-in).

Routes every net with FLUTE decomposition + 3D pattern routing, then
runs rip-up-and-reroute maze passes on overflowed edges.  Exposes the
queries CR&P needs: per-net route cost, congestion state, incremental
reroute of dirty nets after cell movement, and guide emission for the
detailed router.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.geom import Point, Rect
from repro.guard.deadline import DeadlineExceeded, check_deadline
from repro.db import Design, Net
from repro.flute import build_rsmt
from repro.grid import (
    CostField,
    CostModel,
    CostParams,
    EdgeKind,
    GCellGrid,
    GridEdge,
    RoutingGraph,
)
from repro.groute.maze import maze_route
from repro.groute.pattern3d import PatternRouter3D
from repro.groute.patterns import pattern_paths_2d
from repro.lefdef.guides import GuideRect
from repro.obs import get_metrics, get_tracer

Node = tuple[int, int, int]


@dataclass(slots=True)
class NetRoute:
    """The committed route of one net."""

    net: str
    edges: set[GridEdge] = field(default_factory=set)
    terminals: list[Node] = field(default_factory=list)

    def nodes(self, graph: RoutingGraph) -> set[Node]:
        """Every graph node the route touches (for incremental maze)."""
        result: set[Node] = set(self.terminals)
        for edge in self.edges:
            a, b = edge.endpoints(graph)
            result.add(a)
            result.add(b)
        return result

    def wirelength_dbu(self, grid: GCellGrid, graph: RoutingGraph) -> int:
        total = 0
        for edge in self.edges:
            if edge.kind is EdgeKind.WIRE:
                if graph.tech.layers[edge.layer].is_horizontal:
                    total += grid.step_x
                else:
                    total += grid.step_y
        return total

    def via_count(self) -> int:
        return sum(1 for e in self.edges if e.kind is EdgeKind.VIA)


class GlobalRouter:
    """Congestion-aware 3D global router over a design."""

    def __init__(
        self,
        design: Design,
        params: CostParams | None = None,
        target_gcells: int = 32,
        beta: float = 1.5,
        use_cost_field: bool = True,
    ) -> None:
        self.design = design
        #: constructor arguments, so ``repro.par`` workers can rebuild
        #: an identical router around the pickled design
        self.ctor_args = {
            "params": params,
            "target_gcells": target_gcells,
            "beta": beta,
            "use_cost_field": use_cost_field,
        }
        #: a bound :class:`repro.par.ParallelExecutor`, or ``None`` for
        #: the classic serial walk
        self.executor = None
        self.grid = GCellGrid.for_design(design, target_gcells=target_gcells)
        self.graph = RoutingGraph(self.grid, design.tech, beta=beta)
        self.graph.init_fixed_usage(design)
        self.cost = CostModel(self.graph, params)
        #: dense Eq. 9/10 kernel; ``use_cost_field=False`` selects the
        #: scalar reference path (same results, used by the parity tests)
        self.field: CostField | None = (
            CostField(self.graph, self.cost.params) if use_cost_field else None
        )
        self.pattern3d = PatternRouter3D(
            self.graph,
            self.cost,
            min_layer=self.graph.min_wire_layer,
            field=self.field,
        )
        self.routes: dict[str, NetRoute] = {}
        # Plain dict (not defaultdict): lookups must never materialize
        # empty entries, or the RRR scan grows monotonically.
        self._edge_nets: dict[GridEdge, set[str]] = {}
        #: O(dirty-nets) per-net cost cache, or ``None`` for the full-
        #: rescan oracle; toggled by :meth:`enable_incremental_cost`
        self.cost_cache = None

    # ------------------------------------------------------------ terminals

    def terminals_of(self, net: Net) -> list[Node]:
        """Distinct (layer, gx, gy) terminal nodes of a net."""
        nodes: list[Node] = []
        seen: set[Node] = set()
        for pin in net.pins:
            point = self.design.pin_point(pin)
            layer = self.design.pin_layer(pin)
            gx, gy = self.grid.gcell_of(point)
            node = (layer, gx, gy)
            if node not in seen:
                seen.add(node)
                nodes.append(node)
        return nodes

    # -------------------------------------------------------------- routing

    def route_all(self, rrr_passes: int = 3) -> None:
        """Route every net, then run rip-up-and-reroute on overflows.

        Deadline semantics: initial routing is mandatory, so a deadline
        expiring there propagates :class:`DeadlineExceeded`.  The RRR
        passes are an improvement loop and degrade gracefully — see
        :meth:`improve`.
        """
        tracer = get_tracer()
        with tracer.span("groute.initial"):
            order = sorted(
                self.design.nets.values(),
                key=lambda n: (self.design.net_hpwl(n), n.name),
            )
            if self.executor is not None:
                self._route_batched([net.name for net in order], "initial")
            else:
                for net in order:
                    check_deadline("groute.initial")
                    self.route_net(net.name)
        self.improve(rrr_passes)
        if self.field is not None:
            self.field.publish_metrics()

    def improve(self, rrr_passes: int = 3) -> int:
        """Run up to ``rrr_passes`` RRR passes; returns passes completed.

        A deadline expiring mid-pass stops the loop instead of raising:
        every committed route is still valid, just less optimized.  The
        early stop is visible as ``groute.rrr_deadline_stops``.
        """
        completed = 0
        with get_tracer().span("groute.rrr"):
            try:
                for _ in range(rrr_passes):
                    check_deadline("groute.rrr")
                    if not self._rrr_pass():
                        break
                    completed += 1
            except DeadlineExceeded:
                get_metrics().count("groute.rrr_deadline_stops")
        if self.field is not None:
            self.field.publish_metrics()
        return completed

    def route_net(self, net_name: str) -> NetRoute:
        """(Re)route one net with RSMT + 3D pattern routing."""
        if net_name in self.routes:
            self.rip_up(net_name)
        net = self.design.nets[net_name]
        terminals = self.terminals_of(net)
        route = NetRoute(net=net_name, terminals=terminals)
        if len(terminals) > 1:
            route.edges = self._route_tree(terminals)
        self._commit(route)
        get_metrics().count("groute.nets_routed")
        return route

    def _route_tree(self, terminals: list[Node]) -> set[GridEdge]:
        """Pattern-route the RSMT decomposition of the terminals."""
        points = [Point(t[1], t[2]) for t in terminals]
        tree = build_rsmt(points)
        # Tree point index -> known layer (terminals fixed, junctions free).
        layer_of: dict[int, int | None] = {}
        for index, point in enumerate(tree.points):
            layer_of[index] = None
        for terminal in terminals:
            for index, point in enumerate(tree.points):
                if (point.x, point.y) == (terminal[1], terminal[2]):
                    if layer_of[index] is None:
                        layer_of[index] = terminal[0]

        edges: set[GridEdge] = set()
        # Route tree edges rooted at point 0 so each segment starts from a
        # node whose layer is already decided.
        adjacency: dict[int, list[int]] = defaultdict(list)
        for a, b in tree.edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        visited = {0}
        if layer_of[0] is None:
            layer_of[0] = 0
        stack = [0]
        while stack:
            check_deadline("groute.tree")
            u = stack.pop()
            for v in adjacency[u]:
                if v in visited:
                    continue
                visited.add(v)
                src = (layer_of[u], tree.points[u].x, tree.points[u].y)
                dst_xy = (tree.points[v].x, tree.points[v].y)
                result = self._route_segment(src, dst_xy, layer_of[v])
                if result is not None:
                    edges.update(result[0])
                    if layer_of[v] is None:
                        layer_of[v] = result[1]
                elif layer_of[v] is None:
                    layer_of[v] = layer_of[u]
                stack.append(v)
        return edges

    def _route_segment(
        self,
        src: Node,
        dst_xy: tuple[int, int],
        dst_layer: int | None,
    ) -> tuple[list[GridEdge], int] | None:
        """Best pattern route for one 2-pin segment."""
        best = None
        for path in pattern_paths_2d((src[1], src[2]), dst_xy):
            result = self.pattern3d.route(path, src[0], dst_layer)
            if result is None:
                continue
            if best is None or result.cost < best.cost:
                best = result
        if best is None:
            return None
        return best.edges, best.end_layer

    # ------------------------------------------------------------ commit/rip

    def _commit(self, route: NetRoute) -> None:
        edges = sorted(route.edges)
        self.graph.apply_route(edges, sign=1)
        if self.executor is not None:
            self.executor.note_route(edges, 1)
        for edge in route.edges:
            self._edge_nets.setdefault(edge, set()).add(route.net)
        self.routes[route.net] = route
        if self.cost_cache is not None:
            self.cost_cache.note_commit(route.net, route.edges)

    def rip_up(self, net_name: str) -> None:
        route = self.routes.pop(net_name, None)
        if route is None:
            return
        get_metrics().count("groute.ripup_nets")
        edges = sorted(route.edges)
        self.graph.apply_route(edges, sign=-1)
        if self.executor is not None:
            self.executor.note_route(edges, -1)
        for edge in route.edges:
            users = self._edge_nets.get(edge)
            if users is not None:
                users.discard(net_name)
                if not users:
                    del self._edge_nets[edge]
        if self.cost_cache is not None:
            self.cost_cache.note_rip(net_name, route.edges)

    def reroute_nets(self, net_names: list[str]) -> None:
        """Rip up and pattern-reroute nets (CR&P's Update Database step)."""
        for name in net_names:
            self.rip_up(name)
        ordered = sorted(
            net_names,
            key=lambda n: (self.design.net_hpwl(self.design.nets[n]), n),
        )
        if self.executor is not None:
            self._route_batched(ordered, "reroute")
        else:
            for name in ordered:
                self.route_net(name)

    # ------------------------------------------------------ batched drivers

    def _net_tasks(self, names: list[str], expand: int) -> list:
        """Canonical-order :class:`ParTask` list for the partitioner."""
        from repro.par.partition import ParTask, region_of, union_rect

        nx, ny = self.grid.nx, self.grid.ny
        tasks = []
        for index, name in enumerate(names):
            terminals = self.terminals_of(self.design.nets[name])
            if terminals:
                rect = region_of(terminals, nx, ny, expand=expand)
            else:
                rect = (0, 0, 0, 0)
            route = self.routes.get(name)
            if route is not None and route.edges:
                # The committed route is ripped/re-added during maze
                # compute and rip-up at commit; claim its cells too so
                # spatially-entangled victims serialize across batches.
                xs: list[int] = []
                ys: list[int] = []
                for edge in route.edges:
                    a, b = edge.endpoints(self.graph)
                    xs.extend((a[1], b[1]))
                    ys.extend((a[2], b[2]))
                rect = union_rect(
                    rect,
                    (
                        max(0, min(xs) - 1),
                        max(0, min(ys) - 1),
                        min(nx - 1, max(xs) + 1),
                        min(ny - 1, max(ys) + 1),
                    ),
                )
            tasks.append(ParTask(name, index, rect))
        return tasks

    def _route_batched(self, names: list[str], stage: str) -> None:
        """Batched pattern routing: partition, compute, commit in order.

        Byte-identical to the serial walk: pattern routes never leave
        the terminal bbox, and the partitioner guarantees every
        serially-earlier overlapping net is committed in an earlier
        batch, so each net prices against exactly the demand state the
        serial walk would show it.
        """
        from repro.par.partition import partition

        tasks = self._net_tasks(names, expand=1)
        batches = partition(tasks, self.grid.nx, self.grid.ny)
        metrics = get_metrics()
        with get_tracer().span("par.route", stage=stage, batches=len(batches)):
            for batch in batches:
                check_deadline("par.batch")
                metrics.count("par.batches")
                results = self.executor.run_route_batch(
                    [task.name for task in batch]
                )
                self._commit_batch(batch, results, maze=False)

    def _maze_batched(self, names: list[str]) -> None:
        """Batched RRR: maze-compute victims in parallel, commit in order.

        Victims keep their old routes committed during compute (each
        worker rips its own net locally), so the batch computes from
        one well-defined snapshot; regions include the maze search
        window (terminal bbox + margin) and the old route's cells.
        """
        from repro.groute.maze import MAZE_MARGIN
        from repro.par.partition import partition

        tasks = self._net_tasks(names, expand=MAZE_MARGIN + 1)
        batches = partition(tasks, self.grid.nx, self.grid.ny)
        metrics = get_metrics()
        with get_tracer().span("par.route", stage="rrr", batches=len(batches)):
            for batch in batches:
                check_deadline("par.batch")
                metrics.count("par.batches")
                items = []
                for task in batch:
                    route = self.routes.get(task.name)
                    old = tuple(sorted(route.edges)) if route is not None else ()
                    items.append((task.name, old))
                results = self.executor.run_maze_batch(items)
                self._commit_batch(batch, results, maze=True)

    def _commit_batch(
        self, batch: list, results: dict[str, object], maze: bool
    ) -> None:
        """Apply one batch's results in canonical (serial) net order.

        A net is re-routed serially against live state when its
        computed route touches a GCell already dirtied by an earlier
        commit of this batch (``par.conflicts``) — the partitioner
        makes that structurally impossible for pattern routes, so this
        guards the maze path and induced-conflict tests — or when the
        worker hit its deadline before computing it (the serial path
        then follows the legacy deadline-degradation semantics).
        """
        metrics = get_metrics()
        dirty: set[tuple[int, int]] = set()
        for task in batch:
            result = results.get(task.name)
            conflict = False
            if result is not None and dirty:
                for edge in result[0]:
                    a, b = edge.endpoints(self.graph)
                    if (a[1], a[2]) in dirty or (b[1], b[2]) in dirty:
                        conflict = True
                        break
            if result is None or conflict:
                if conflict:
                    metrics.count("par.conflicts")
                if maze:
                    self._maze_reroute(task.name)
                else:
                    self.route_net(task.name)
                committed = self.routes[task.name].edges
            else:
                edges, terminals = result
                if maze:
                    self.rip_up(task.name)
                route = NetRoute(net=task.name, terminals=list(terminals))
                route.edges = set(edges)
                self._commit(route)
                if not maze:
                    metrics.count("groute.nets_routed")
                committed = route.edges
            for edge in committed:
                a, b = edge.endpoints(self.graph)
                dirty.add((a[1], a[2]))
                dirty.add((b[1], b[2]))

    # ----------------------------------------------------------------- RRR

    def _rrr_pass(self, max_nets: int = 200) -> bool:
        """One rip-up-and-reroute pass; True when it changed anything.

        With a cost field the overflow scan is one ``demand > capacity``
        mask per layer instead of a per-edge Python loop; overflowed
        edges without committed users contribute no victims either way,
        so both scans select the same nets.
        """
        victims: list[str] = []
        seen: set[str] = set()
        if self.field is not None:
            for edge in self.field.overflow_edges():
                users = self._edge_nets.get(edge)
                if not users:
                    continue
                for name in users:
                    if name not in seen:
                        seen.add(name)
                        victims.append(name)
        else:
            for edge, users in self._edge_nets.items():
                if edge.kind is not EdgeKind.WIRE:
                    continue
                if self.graph.demand(edge) > self.graph.capacity(edge):
                    for name in users:
                        if name not in seen:
                            seen.add(name)
                            victims.append(name)
        if not victims:
            return False
        metrics = get_metrics()
        metrics.count("groute.rrr_passes")
        metrics.count("groute.rrr_victims", min(len(victims), max_nets))
        victims.sort(
            key=lambda n: (self.design.net_hpwl(self.design.nets[n]), n)
        )
        if self.executor is not None:
            self._maze_batched(victims[:max_nets])
        else:
            for name in victims[:max_nets]:
                self._maze_reroute(name)
        return True

    def _maze_reroute(self, net_name: str) -> None:
        """Reroute one net terminal-by-terminal with overflow-averse A*.

        Deadline-safe: if the maze search runs out of budget mid-net,
        the remaining terminals are connected with cheap pattern routes,
        the route is committed (so accounting stays consistent), and the
        deadline propagates to stop the RRR loop.
        """
        self.rip_up(net_name)
        net = self.design.nets[net_name]
        terminals = self.terminals_of(net)
        route = NetRoute(net=net_name, terminals=terminals)
        deadline: DeadlineExceeded | None = None
        if len(terminals) > 1:
            connected: set[Node] = {terminals[0]}
            for terminal in terminals[1:]:
                path: list[GridEdge] | None
                if deadline is None:
                    try:
                        path = maze_route(
                            self.graph,
                            self.cost,
                            sources=set(connected),
                            targets={terminal},
                            overflow_penalty=10.0 * self.cost.params.via_weight,
                            field=self.field,
                        )
                    except DeadlineExceeded as exc:
                        deadline = exc
                        path = None
                else:
                    path = None
                if path is None:
                    get_metrics().count("groute.maze_fallbacks")
                    fallback = self._route_segment(
                        next(iter(connected)), (terminal[1], terminal[2]), terminal[0]
                    )
                    path = fallback[0] if fallback else []
                route.edges.update(path)
                connected.add(terminal)
                for edge in path:
                    a, b = edge.endpoints(self.graph)
                    connected.add(a)
                    connected.add(b)
        self._commit(route)
        if deadline is not None:
            raise deadline

    # ------------------------------------------------- snapshot & restore

    def copy_route(self, net_name: str) -> NetRoute | None:
        """A detached copy of a net's committed route (``None`` if unrouted).

        Used by :class:`repro.guard.IterationTransaction` to snapshot
        dirty nets before CR&P's Update-Database step.
        """
        route = self.routes.get(net_name)
        if route is None:
            return None
        return NetRoute(
            net=route.net, edges=set(route.edges), terminals=list(route.terminals)
        )

    def restore_route(self, net_name: str, route: NetRoute | None) -> None:
        """Replace a net's committed route with a snapshot (rollback)."""
        self.rip_up(net_name)
        if route is not None:
            self._commit(
                NetRoute(
                    net=route.net,
                    edges=set(route.edges),
                    terminals=list(route.terminals),
                )
            )

    def invalidate_cost_fields(self) -> None:
        """Force a full cost-field recompute on the next query.

        Graph mutations already notify the field, so this is a
        belt-and-braces hook for transaction rollback and for callers
        that poke the usage arrays directly (tests, invariant checkers).
        """
        if self.field is not None:
            self.field.note_all()
        if self.cost_cache is not None:
            self.cost_cache.note_all()
        if self.executor is not None:
            self.executor.note_desync()

    def accounting_errors(self) -> list[str]:
        """Check graph demand against the committed routes.

        Rebuilds the expected wire/via usage arrays from ``self.routes``
        and compares them with the incrementally-maintained graph state;
        a mismatch means a commit/rip-up bug (or a botched rollback).
        Returns human-readable mismatch descriptions, empty when clean.
        """
        expected_wire = [np.zeros_like(u) for u in self.graph.wire_usage]
        expected_via = [np.zeros_like(u) for u in self.graph.via_usage]
        for route in self.routes.values():
            for edge in route.edges:
                if edge.kind is EdgeKind.WIRE:
                    expected_wire[edge.layer][edge.gx, edge.gy] += 1
                else:
                    expected_via[edge.layer][edge.gx, edge.gy] += 1
        errors: list[str] = []
        for layer, (expected, actual) in enumerate(
            zip(expected_wire, self.graph.wire_usage)
        ):
            if not np.allclose(expected, actual):
                delta = float(np.abs(expected - actual).sum())
                errors.append(
                    f"wire demand mismatch on layer {layer} (|delta|={delta:g})"
                )
        for layer, (expected, actual) in enumerate(
            zip(expected_via, self.graph.via_usage)
        ):
            if not np.array_equal(expected, actual):
                delta = int(np.abs(expected - actual).sum())
                errors.append(
                    f"via demand mismatch below layer {layer + 1} (|delta|={delta})"
                )
        return errors

    # ------------------------------------------------------------- queries

    def enable_incremental_cost(self, enabled: bool = True) -> None:
        """Attach (or drop) the O(dirty-nets) per-net cost cache.

        With the cache on, :meth:`net_cost` serves bit-identical cached
        values and re-prices only nets whose cost a commit/rip-up can
        have changed; ``enabled=False`` restores the full-rescan oracle
        (the parity suite's ``use_fast_ecc=False`` arm).
        """
        if not enabled:
            self.cost_cache = None
            return
        if self.cost_cache is None:
            from repro.groute.costcache import NetCostCache

            self.cost_cache = NetCostCache(self)

    def net_cost(self, net_name: str) -> float:
        """Eq. 10 path cost of a net's current route."""
        if self.cost_cache is not None:
            return self.cost_cache.net_cost(net_name)
        return self._net_cost_fresh(net_name)

    def _net_cost_fresh(self, net_name: str) -> float:
        """Uncached :meth:`net_cost` (the oracle the cache must match)."""
        route = self.routes.get(net_name)
        if route is None:
            return 0.0
        if self.field is not None:
            return self.field.path_cost(sorted(route.edges))
        return self.cost.path_cost(sorted(route.edges))

    def total_route_cost(self) -> float:
        """Eq. 10 total over every net, summed in canonical design order.

        O(dirty) path_cost work when the incremental cache is enabled;
        identical bits either way (same addends, same association).
        """
        return sum(self.net_cost(name) for name in self.design.nets)

    def cell_cost(self, cell_name: str) -> float:
        """Total route cost of the nets on a cell (Algorithm 1 ordering)."""
        return sum(
            self.net_cost(net.name) for net in self.design.nets_of_cell(cell_name)
        )

    def total_wirelength_dbu(self) -> int:
        return self.graph.total_wire_dbu()

    def total_vias(self) -> int:
        return self.graph.total_vias()

    def total_overflow(self) -> float:
        return self.graph.overflow()

    def dirty_nets_for_cells(self, cell_names: list[str]) -> list[str]:
        """Nets needing reroute after the given cells moved."""
        dirty: dict[str, None] = {}
        for cell_name in cell_names:
            for net in self.design.nets_of_cell(cell_name):
                dirty.setdefault(net.name)
        return list(dirty)

    # -------------------------------------------------------------- guides

    def guides(self, expand: int = 1) -> dict[str, list[GuideRect]]:
        """Per-net route guides for the detailed router.

        Every wire edge contributes its two GCells on its layer, every
        via edge its GCell on both layers, and every terminal its GCell
        from its pin layer up to the lowest routed layer.  ``expand``
        grows each guide by that many GCells on every side, mirroring
        the slack detailed routers are given in practice.
        """
        result: dict[str, list[GuideRect]] = {}
        for net_name, route in self.routes.items():
            per_layer: dict[int, set[tuple[int, int]]] = defaultdict(set)
            for edge in route.edges:
                a, b = edge.endpoints(self.graph)
                per_layer[a[0]].add((a[1], a[2]))
                per_layer[b[0]].add((b[1], b[2]))
            for layer, gx, gy in route.terminals:
                per_layer[layer].add((gx, gy))
                per_layer[min(layer + 1, self.graph.num_layers - 1)].add((gx, gy))
            rects: list[GuideRect] = []
            for layer, gcells in sorted(per_layer.items()):
                for gx, gy in sorted(gcells):
                    lo = self.grid.rect_of(
                        max(0, gx - expand), max(0, gy - expand)
                    )
                    hi = self.grid.rect_of(
                        min(self.grid.nx - 1, gx + expand),
                        min(self.grid.ny - 1, gy + expand),
                    )
                    rects.append(GuideRect(layer, lo.union(hi)))
            result[net_name] = _merge_guides(rects)
        return result


def _merge_guides(rects: list[GuideRect]) -> list[GuideRect]:
    """Drop guide rects fully contained in another on the same layer."""
    kept: list[GuideRect] = []
    for g in sorted(rects, key=lambda g: (g.layer, -g.rect.area)):
        if any(
            k.layer == g.layer and k.rect.contains_rect(g.rect) for k in kept
        ):
            continue
        kept.append(g)
    return kept

"""2D pattern generation: L- and Z-shaped GCell paths.

A pattern is a polyline of GCell indices with axis-aligned runs.  The 3D
pattern router assigns a layer to each run afterwards.
"""

from __future__ import annotations

GPoint = tuple[int, int]


def pattern_paths_2d(
    a: GPoint, b: GPoint, num_z_samples: int = 3
) -> list[list[GPoint]]:
    """Candidate monotone paths from ``a`` to ``b``.

    Straight connections yield a single path; otherwise the two L-shapes
    plus up to ``num_z_samples`` Z-shapes per axis are produced.
    """
    ax, ay = a
    bx, by = b
    if a == b:
        return [[a]]
    if ax == bx or ay == by:
        return [[a, b]]
    paths: list[list[GPoint]] = [
        [a, (bx, ay), b],  # horizontal first
        [a, (ax, by), b],  # vertical first
    ]
    lo_x, hi_x = sorted((ax, bx))
    for mid_x in _samples(lo_x, hi_x, num_z_samples):
        if mid_x in (ax, bx):
            continue
        paths.append([a, (mid_x, ay), (mid_x, by), b])
    lo_y, hi_y = sorted((ay, by))
    for mid_y in _samples(lo_y, hi_y, num_z_samples):
        if mid_y in (ay, by):
            continue
        paths.append([a, (ax, mid_y), (bx, mid_y), b])
    return paths


def _samples(lo: int, hi: int, count: int) -> list[int]:
    """Up to ``count`` interior values spread across ``(lo, hi)``."""
    interior = hi - lo - 1
    if interior <= 0:
        return []
    if interior <= count:
        return list(range(lo + 1, hi))
    step = (hi - lo) / (count + 1)
    values = {lo + max(1, int(round(step * (i + 1)))) for i in range(count)}
    return sorted(v for v in values if lo < v < hi)


def runs_of_path(path: list[GPoint]) -> list[tuple[GPoint, GPoint]]:
    """Non-degenerate straight runs of a polyline."""
    runs: list[tuple[GPoint, GPoint]] = []
    for p, q in zip(path[:-1], path[1:]):
        if p != q:
            runs.append((p, q))
    return runs

"""O(dirty-nets) route-cost accounting for the global router.

:class:`NetCostCache` keeps the Eq. 10 cost of every committed route so
the full-design total that CR&P's guard pre-cost, convergence loop, and
labeling step repeatedly ask for re-prices only nets whose cost can
actually have changed.

Soundness argument (mirrors the :class:`repro.grid.field.CostField`
staleness discipline): a committed net's cost is the sum of a flat
``via_weight`` per via edge plus the dense wire-cost map value of each
wire edge.  A route commit or rip-up changes the wire-cost map only on
the (layer, line) pairs the field marks dirty — the mutated wire edge's
own line, and for a mutated via the two adjacent wire layers' lines
through that GCell (the Eq. 9 ``delta_e`` term).  A cached net cost is
therefore stale iff one of those dirty lines carries one of the net's
own wire edges; the cache keeps a line -> nets index over committed
wire edges and marks exactly those nets (plus the mutated net itself)
stale.  Because the field's line recompute is deterministic — same
usage arrays in, same float64s out — a *non-stale* cached value is
bit-identical to a fresh rescan, and the canonical-order re-sum of
cached float64s in ``design.nets`` order is bit-identical to the full
O(all-nets) scan (same addends, same association).

Out-of-band mutations (guard rollback's belt-and-braces, tests poking
usage arrays) arrive via :meth:`GlobalRouter.invalidate_cost_fields`,
which calls :meth:`note_all` — values are dropped wholesale while the
membership index is kept (it derives from ``router.routes``, which
commit/rip-up notifications keep in sync even across rollback, since
``restore_route`` replays through the same two methods).
"""

from __future__ import annotations

from repro.grid import EdgeKind
from repro.obs import get_metrics


class NetCostCache:
    """Per-net Eq. 10 cost cache with line-granular staleness tracking."""

    __slots__ = (
        "router",
        "_horizontal",
        "_num_layers",
        "_cost",
        "_stale",
        "_line_nets",
        "hits",
        "rescans",
    )

    def __init__(self, router) -> None:
        self.router = router
        self._horizontal = tuple(
            layer.is_horizontal for layer in router.graph.tech.layers
        )
        self._num_layers = router.graph.num_layers
        #: net name -> cached Eq. 10 cost (float64, bitwise-fresh)
        self._cost: dict[str, float] = {}
        #: nets whose cached value may be stale
        self._stale: set[str] = set()
        #: (layer, line) -> committed nets with a wire edge on that line
        self._line_nets: dict[tuple[int, int], set[str]] = {}
        self.hits = 0
        self.rescans = 0
        # The cache may be enabled on an already-routed router: adopt
        # the committed routes into the membership index (values fill
        # lazily on first query).
        for name, route in router.routes.items():
            self._register(name, route.edges)

    # ---------------------------------------------------------- bookkeeping

    def _wire_line(self, layer: int, gx: int, gy: int) -> tuple[int, int]:
        return (layer, gy if self._horizontal[layer] else gx)

    def _dirty_lines(self, edges) -> set[tuple[int, int]]:
        """(layer, line) pairs whose wire-cost values the edges perturb."""
        lines: set[tuple[int, int]] = set()
        num_layers = self._num_layers
        for edge in edges:
            if edge.kind is EdgeKind.WIRE:
                lines.add(self._wire_line(edge.layer, edge.gx, edge.gy))
            else:
                for wire_layer in (edge.layer, edge.layer + 1):
                    if 0 <= wire_layer < num_layers:
                        lines.add(
                            self._wire_line(wire_layer, edge.gx, edge.gy)
                        )
        return lines

    def _register(self, name: str, edges) -> None:
        for edge in edges:
            if edge.kind is EdgeKind.WIRE:
                self._line_nets.setdefault(
                    self._wire_line(edge.layer, edge.gx, edge.gy), set()
                ).add(name)

    def _unregister(self, name: str, edges) -> None:
        for edge in edges:
            if edge.kind is EdgeKind.WIRE:
                key = self._wire_line(edge.layer, edge.gx, edge.gy)
                users = self._line_nets.get(key)
                if users is not None:
                    users.discard(name)
                    if not users:
                        del self._line_nets[key]

    def _touch(self, name: str, edges) -> None:
        """Mark the mutated net and every line-sharing net stale."""
        stale = self._stale
        line_nets = self._line_nets
        for key in self._dirty_lines(edges):
            users = line_nets.get(key)
            if users:
                stale.update(users)
        stale.add(name)

    # ------------------------------------------------------- notifications

    def note_commit(self, name: str, edges) -> None:
        """A route was committed (called after ``router.routes`` updates).

        Single pass over the edges: collect the dirty lines and enrol
        the net's wire edges in the membership index as we go (the
        staleness sweep runs after, so order within the pass is moot).
        """
        horizontal = self._horizontal
        num_layers = self._num_layers
        line_nets = self._line_nets
        dirty: set[tuple[int, int]] = set()
        for edge in edges:
            if edge.kind is EdgeKind.WIRE:
                layer = edge.layer
                key = (layer, edge.gy if horizontal[layer] else edge.gx)
                dirty.add(key)
                users = line_nets.get(key)
                if users is None:
                    line_nets[key] = {name}
                else:
                    users.add(name)
            else:
                for layer in (edge.layer, edge.layer + 1):
                    if 0 <= layer < num_layers:
                        dirty.add(
                            (layer, edge.gy if horizontal[layer] else edge.gx)
                        )
        stale = self._stale
        for key in dirty:  # repro: noqa:REPRO-D002 — only set.update targets, order-independent by construction
            users = line_nets.get(key)
            if users:
                stale.update(users)
        stale.add(name)

    def note_rip(self, name: str, edges) -> None:
        """A route was ripped up (called after ``router.routes`` updates)."""
        self._touch(name, edges)
        self._unregister(name, edges)

    def note_all(self) -> None:
        """Out-of-band mutation: drop every cached value, keep membership."""
        self._cost.clear()
        self._stale.clear()

    # ------------------------------------------------------------- queries

    def net_cost(self, name: str) -> float:
        """Cached Eq. 10 cost, re-priced only when stale or unseen."""
        value = self._cost.get(name)
        if value is not None and name not in self._stale:
            self.hits += 1
            return value
        self.rescans += 1
        value = self.router._net_cost_fresh(name)
        self._cost[name] = value
        self._stale.discard(name)
        return value

    # ------------------------------------------------------------- metrics

    def publish_metrics(self) -> None:
        """Flush tallies as ``crp.cost_*`` metric deltas."""
        metrics = get_metrics()
        if not metrics.recording:
            return
        metrics.count("crp.cost_rescans", self.rescans)
        metrics.count("crp.cost_cache_hits", self.hits)
        self.rescans = 0
        self.hits = 0

"""ISPD-2018 route-guide file I/O.

The contest's ``.guide`` format lists, per net, axis-aligned rectangles
on named metal layers that the detailed router must stay within::

    net1234
    (
    0 0 3000 3000 Metal1
    0 0 3000 6000 Metal2
    )
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom import Rect
from repro.tech import Technology


@dataclass(frozen=True, slots=True)
class GuideRect:
    """One guide rectangle on a routing layer."""

    layer: int
    rect: Rect


def write_guides(guides: dict[str, list[GuideRect]], tech: Technology) -> str:
    """Serialize per-net guides in the contest format."""
    out: list[str] = []
    for net_name, rects in guides.items():
        out.append(net_name)
        out.append("(")
        for g in rects:
            r = g.rect
            out.append(f"{r.lx} {r.ly} {r.ux} {r.uy} {tech.layers[g.layer].name}")
        out.append(")")
    return "\n".join(out) + "\n"


def parse_guides(text: str, tech: Technology) -> dict[str, list[GuideRect]]:
    """Parse contest-format guide text into per-net guide lists."""
    guides: dict[str, list[GuideRect]] = {}
    current: str | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "(":
            continue
        if line == ")":
            current = None
            continue
        parts = line.split()
        if len(parts) == 1:
            current = parts[0]
            guides.setdefault(current, [])
            continue
        if current is None:
            raise ValueError(f"guide rect outside net block: {line!r}")
        lx, ly, ux, uy = (int(p) for p in parts[:4])
        layer = tech.layer_by_name(parts[4]).index
        guides[current].append(GuideRect(layer, Rect(lx, ly, ux, uy)))
    return guides

"""LEF/DEF and route-guide readers and writers.

This implements the subset of the LEF/DEF 5.8 grammar the ISPD-2018
benchmarks exercise: technology LEF (UNITS, SITE, LAYER, VIA, MACRO) and
design DEF (DIEAREA, ROW, TRACKS, GCELLGRID, COMPONENTS, PINS, NETS,
BLOCKAGES), plus the contest's ``.guide`` route-guide format.
"""

from repro.lefdef.lexer import tokenize
from repro.lefdef.lef_parser import parse_lef, write_lef
from repro.lefdef.def_parser import parse_def, write_def
from repro.lefdef.guides import GuideRect, parse_guides, write_guides

__all__ = [
    "tokenize",
    "parse_lef",
    "write_lef",
    "parse_def",
    "write_def",
    "GuideRect",
    "parse_guides",
    "write_guides",
]

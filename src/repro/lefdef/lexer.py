"""A whitespace tokenizer shared by the LEF and DEF parsers.

LEF/DEF are whitespace-separated keyword languages; statements end with a
``;`` token.  Comments start with ``#`` and run to end of line.
"""

from __future__ import annotations


def tokenize(text: str) -> list[str]:
    """Split LEF/DEF source into tokens, dropping comments.

    ``;`` is always its own token even when glued to the previous word,
    which is common in hand-written DEF.
    """
    tokens: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].replace(";", " ; ")
        tokens.extend(line.split())
    return tokens


class TokenStream:
    """Cursor over a token list with LEF/DEF-shaped helpers."""

    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str | None:
        if self._pos >= len(self._tokens):
            return None
        return self._tokens[self._pos]

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ValueError("unexpected end of input")
        self._pos += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token != expected:
            raise ValueError(f"expected {expected!r}, got {token!r} at {self._pos}")

    def next_int(self) -> int:
        return int(round(float(self.next())))

    def next_float(self) -> float:
        return float(self.next())

    def skip_statement(self) -> None:
        """Consume tokens up to and including the next ``;``."""
        while self.next() != ";":
            pass

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

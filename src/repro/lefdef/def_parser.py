"""DEF 5.8 (subset) reader and writer.

Covers the design constructs the ISPD-2018 benchmarks use: ``DIEAREA``,
``ROW``, ``TRACKS``, ``GCELLGRID``, ``COMPONENTS``, ``PINS``, ``NETS``,
and ``BLOCKAGES``.  DEF coordinates are already in DBU.
"""

from __future__ import annotations

from repro.geom import Orientation, Point, Rect
from repro.db import Blockage, Cell, Design, IOPin, Net, NetPin, Row
from repro.db.design import GCellGridSpec
from repro.lefdef.lexer import TokenStream, tokenize
from repro.tech import PinDirection, Technology


def parse_def(text: str, tech: Technology) -> Design:
    """Parse DEF source into a :class:`Design` bound to ``tech``."""
    stream = TokenStream(tokenize(text))
    name = "design"
    die = Rect(0, 0, 1, 1)
    rows: list[tuple] = []
    gcell: dict[str, tuple[int, int, int]] = {}
    components: list[tuple] = []
    pins: list[tuple] = []
    nets: list[tuple] = []
    blockages: list[Blockage] = []

    while not stream.at_end():
        token = stream.next()
        if token == "DESIGN":
            name = stream.next()
            stream.expect(";")
        elif token == "DIEAREA":
            p0 = _parse_point(stream)
            p1 = _parse_point(stream)
            stream.expect(";")
            die = Rect.from_points(p0, p1)
        elif token == "ROW":
            rows.append(_parse_row(stream))
        elif token == "GCELLGRID":
            axis = stream.next()
            origin = stream.next_int()
            stream.expect("DO")
            count = stream.next_int()
            stream.expect("STEP")
            step = stream.next_int()
            stream.expect(";")
            gcell[axis] = (origin, count, step)
        elif token == "COMPONENTS":
            components = _parse_components(stream)
        elif token == "PINS":
            pins = _parse_pins(stream, tech)
        elif token == "NETS":
            nets = _parse_nets(stream)
        elif token == "BLOCKAGES":
            blockages = _parse_blockages(stream, tech)
        elif token == "END" and stream.peek() == "DESIGN":
            break
        elif token in ("VERSION", "DIVIDERCHAR", "BUSBITCHARS", "UNITS", "TRACKS"):
            stream.skip_statement()

    design = Design(name, tech, die)
    for row_name, site_name, ox, oy, orient, num in rows:
        design.add_row(
            Row(row_name, tech.sites[site_name], ox, oy, num, Orientation(orient))
        )
    if "X" in gcell and "Y" in gcell:
        gx, gy = gcell["X"], gcell["Y"]
        design.gcell_grid = GCellGridSpec(
            origin_x=gx[0],
            origin_y=gy[0],
            step_x=gx[2],
            step_y=gy[2],
            nx=max(1, gx[1] - 1),
            ny=max(1, gy[1] - 1),
        )
    for comp_name, macro_name, x, y, orient, fixed in components:
        design.add_cell(
            Cell(
                name=comp_name,
                macro=tech.macros[macro_name],
                x=x,
                y=y,
                orient=Orientation(orient),
                fixed=fixed,
            )
        )
    for pin_name, direction, layer, rect, x, y in pins:
        design.add_iopin(
            IOPin(
                name=pin_name,
                point=Point(x, y),
                layer=layer,
                rect=rect.translated(x, y),
                direction=direction,
            )
        )
    for net_name, terminals in nets:
        net = Net(net_name)
        for cell_name, pin_name in terminals:
            net.add_pin(NetPin(cell_name, pin_name))
        design.add_net(net)
    for blockage in blockages:
        design.add_blockage(blockage)
    return design


def _parse_point(stream: TokenStream) -> Point:
    stream.expect("(")
    x = stream.next_int()
    y = stream.next_int()
    stream.expect(")")
    return Point(x, y)


def _parse_row(stream: TokenStream) -> tuple:
    row_name = stream.next()
    site_name = stream.next()
    ox = stream.next_int()
    oy = stream.next_int()
    orient = stream.next()
    stream.expect("DO")
    num_x = stream.next_int()
    stream.expect("BY")
    stream.next_int()  # rows are 1 site tall
    stream.expect("STEP")
    stream.next_int()
    stream.next_int()
    stream.expect(";")
    return (row_name, site_name, ox, oy, orient, num_x)


def _parse_components(stream: TokenStream) -> list[tuple]:
    stream.next_int()
    stream.expect(";")
    components: list[tuple] = []
    while True:
        token = stream.next()
        if token == "END":
            stream.expect("COMPONENTS")
            return components
        if token != "-":
            raise ValueError(f"bad COMPONENTS entry: {token!r}")
        comp_name = stream.next()
        macro_name = stream.next()
        fixed = False
        x = y = 0
        orient = "N"
        while stream.peek() != ";":
            stream.expect("+")
            kind = stream.next()
            if kind in ("PLACED", "FIXED"):
                fixed = kind == "FIXED"
                point = _parse_point(stream)
                x, y = point.x, point.y
                orient = stream.next()
            elif kind == "SOURCE":
                stream.next()
            else:
                raise ValueError(f"unsupported COMPONENTS attr {kind!r}")
        stream.expect(";")
        components.append((comp_name, macro_name, x, y, orient, fixed))


def _parse_pins(stream: TokenStream, tech: Technology) -> list[tuple]:
    stream.next_int()
    stream.expect(";")
    pins: list[tuple] = []
    while True:
        token = stream.next()
        if token == "END":
            stream.expect("PINS")
            return pins
        pin_name = stream.next()
        direction = PinDirection.INPUT
        layer = 0
        rect = Rect(0, 0, 0, 0)
        x = y = 0
        while stream.peek() != ";":
            stream.expect("+")
            kind = stream.next()
            if kind == "NET":
                stream.next()
            elif kind == "DIRECTION":
                direction = PinDirection(stream.next())
            elif kind == "USE":
                stream.next()
            elif kind == "LAYER":
                layer = tech.layer_by_name(stream.next()).index
                p0 = _parse_point(stream)
                p1 = _parse_point(stream)
                rect = Rect.from_points(p0, p1)
            elif kind in ("PLACED", "FIXED"):
                point = _parse_point(stream)
                x, y = point.x, point.y
                stream.next()  # orientation
            else:
                raise ValueError(f"unsupported PINS attr {kind!r}")
        stream.expect(";")
        pins.append((pin_name, direction, layer, rect, x, y))


def _parse_nets(stream: TokenStream) -> list[tuple]:
    stream.next_int()
    stream.expect(";")
    nets: list[tuple] = []
    while True:
        token = stream.next()
        if token == "END":
            stream.expect("NETS")
            return nets
        net_name = stream.next()
        terminals: list[tuple[str | None, str]] = []
        while stream.peek() == "(":
            stream.expect("(")
            owner = stream.next()
            pin_name = stream.next()
            stream.expect(")")
            if owner == "PIN":
                terminals.append((None, pin_name))
            else:
                terminals.append((owner, pin_name))
        while stream.peek() != ";":
            stream.expect("+")
            stream.next()  # USE SIGNAL etc.
            if stream.peek() not in ("+", ";"):
                stream.next()
        stream.expect(";")
        nets.append((net_name, terminals))


def _parse_blockages(stream: TokenStream, tech: Technology) -> list[Blockage]:
    stream.next_int()
    stream.expect(";")
    blockages: list[Blockage] = []
    while True:
        token = stream.next()
        if token == "END":
            stream.expect("BLOCKAGES")
            return blockages
        kind = stream.next()
        if kind == "LAYER":
            layer = tech.layer_by_name(stream.next()).index
        elif kind == "PLACEMENT":
            layer = -1
        else:
            raise ValueError(f"unsupported BLOCKAGES kind {kind!r}")
        stream.expect("RECT")
        p0 = _parse_point(stream)
        p1 = _parse_point(stream)
        stream.expect(";")
        blockages.append(Blockage(layer, Rect.from_points(p0, p1)))


# --------------------------------------------------------------------- writer


def write_def(design: Design) -> str:
    """Emit ``design`` as DEF text that :func:`parse_def` round-trips."""
    tech = design.tech
    out: list[str] = [
        "VERSION 5.8 ;",
        f"DESIGN {design.name} ;",
        f"UNITS DISTANCE MICRONS {tech.dbu_per_micron} ;",
        f"DIEAREA ( {design.die.lx} {design.die.ly} ) "
        f"( {design.die.ux} {design.die.uy} ) ;",
    ]
    for row in design.rows:
        out.append(
            f"ROW {row.name} {row.site.name} {row.origin_x} {row.origin_y} "
            f"{row.orient.value} DO {row.num_sites} BY 1 "
            f"STEP {row.site.width} 0 ;"
        )
    grid = design.gcell_grid
    if grid is not None:
        out.append(
            f"GCELLGRID X {grid.origin_x} DO {grid.nx + 1} STEP {grid.step_x} ;"
        )
        out.append(
            f"GCELLGRID Y {grid.origin_y} DO {grid.ny + 1} STEP {grid.step_y} ;"
        )
    out.append(f"COMPONENTS {len(design.cells)} ;")
    for cell in design.cells.values():
        status = "FIXED" if cell.fixed else "PLACED"
        out.append(
            f"  - {cell.name} {cell.macro.name} + {status} "
            f"( {cell.x} {cell.y} ) {cell.orient.value} ;"
        )
    out.append("END COMPONENTS")
    out.append(f"PINS {len(design.iopins)} ;")
    for pin in design.iopins.values():
        layer = tech.layers[pin.layer]
        local = pin.rect.translated(-pin.point.x, -pin.point.y)
        out.append(
            f"  - {pin.name} + NET {pin.name} + DIRECTION {pin.direction.value} "
            f"+ LAYER {layer.name} ( {local.lx} {local.ly} ) "
            f"( {local.ux} {local.uy} ) "
            f"+ PLACED ( {pin.point.x} {pin.point.y} ) N ;"
        )
    out.append("END PINS")
    out.append(f"NETS {len(design.nets)} ;")
    for net in design.nets.values():
        terms = " ".join(
            f"( PIN {p.pin} )" if p.cell is None else f"( {p.cell} {p.pin} )"
            for p in net.pins
        )
        out.append(f"  - {net.name} {terms} + USE SIGNAL ;")
    out.append("END NETS")
    if design.blockages:
        out.append(f"BLOCKAGES {len(design.blockages)} ;")
        for blk in design.blockages:
            r = blk.rect
            if blk.is_placement:
                out.append(
                    f"  - PLACEMENT RECT ( {r.lx} {r.ly} ) ( {r.ux} {r.uy} ) ;"
                )
            else:
                out.append(
                    f"  - LAYER {tech.layers[blk.layer].name} "
                    f"RECT ( {r.lx} {r.ly} ) ( {r.ux} {r.uy} ) ;"
                )
        out.append("END BLOCKAGES")
    out.append("END DESIGN")
    return "\n".join(out) + "\n"

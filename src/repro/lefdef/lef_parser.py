"""LEF 5.8 (subset) reader and writer.

The parser covers the constructs the ISPD-2018 technology LEFs use:
``UNITS``, ``SITE``, routing/cut ``LAYER``, default ``VIA``, and ``MACRO``
with ``PIN``/``PORT``/``RECT`` and ``OBS``.  Lengths in LEF are microns;
everything is converted to integer DBU using ``DATABASE MICRONS``.
"""

from __future__ import annotations

from repro.geom import Rect
from repro.lefdef.lexer import TokenStream, tokenize
from repro.tech import (
    Layer,
    LayerDirection,
    Macro,
    MacroPin,
    PinDirection,
    PinShape,
    Site,
    Technology,
    ViaDef,
)


def parse_lef(text: str, name: str = "tech") -> Technology:
    """Parse LEF source into a :class:`Technology`."""
    stream = TokenStream(tokenize(text))
    tech = Technology(name=name)
    routing_index: dict[str, int] = {}
    while not stream.at_end():
        token = stream.next()
        if token == "UNITS":
            _parse_units(stream, tech)
        elif token == "SITE":
            _parse_site(stream, tech)
        elif token == "LAYER":
            _parse_layer(stream, tech, routing_index)
        elif token == "VIA":
            _parse_via(stream, tech, routing_index)
        elif token == "MACRO":
            _parse_macro(stream, tech, routing_index)
        elif token == "END" and stream.peek() == "LIBRARY":
            break
        elif token in ("VERSION", "BUSBITCHARS", "DIVIDERCHAR", "MANUFACTURINGGRID"):
            stream.skip_statement()
        # anything else (PROPERTYDEFINITIONS etc.) is skipped token-by-token
    return tech


def _dbu(tech: Technology, microns: float) -> int:
    return int(round(microns * tech.dbu_per_micron))


def _parse_units(stream: TokenStream, tech: Technology) -> None:
    while True:
        token = stream.next()
        if token == "END":
            stream.expect("UNITS")
            return
        if token == "DATABASE":
            stream.expect("MICRONS")
            tech.dbu_per_micron = stream.next_int()
            stream.expect(";")


def _parse_site(stream: TokenStream, tech: Technology) -> None:
    name = stream.next()
    width = height = 0
    while True:
        token = stream.next()
        if token == "END":
            stream.expect(name)
            break
        if token == "SIZE":
            w = stream.next_float()
            stream.expect("BY")
            h = stream.next_float()
            stream.expect(";")
            width, height = _dbu(tech, w), _dbu(tech, h)
        elif token in ("SYMMETRY", "CLASS"):
            stream.skip_statement()
    tech.add_site(Site(name, width, height))


def _parse_layer(
    stream: TokenStream, tech: Technology, routing_index: dict[str, int]
) -> None:
    name = stream.next()
    fields: dict[str, float] = {}
    layer_type = ""
    direction = LayerDirection.HORIZONTAL
    while True:
        token = stream.next()
        if token == "END":
            stream.expect(name)
            break
        if token == "TYPE":
            layer_type = stream.next()
            stream.expect(";")
        elif token == "DIRECTION":
            direction = LayerDirection(stream.next())
            stream.expect(";")
        elif token in ("PITCH", "WIDTH", "SPACING", "AREA", "OFFSET"):
            fields[token] = stream.next_float()
            stream.expect(";")
        else:
            stream.skip_statement()
    if layer_type != "ROUTING":
        return  # cut/masterslice layers carry no state we model
    index = len(tech.layers)
    routing_index[name] = index
    pitch = _dbu(tech, fields.get("PITCH", 0.2))
    tech.add_layer(
        Layer(
            name=name,
            index=index,
            direction=direction,
            pitch=pitch,
            width=_dbu(tech, fields.get("WIDTH", 0.06)),
            spacing=_dbu(tech, fields.get("SPACING", 0.06)),
            min_area=int(round(fields.get("AREA", 0.0) * tech.dbu_per_micron**2)),
            offset=_dbu(tech, fields.get("OFFSET", 0.0)) or pitch // 2,
        )
    )


def _parse_via(
    stream: TokenStream, tech: Technology, routing_index: dict[str, int]
) -> None:
    name = stream.next()
    if stream.peek() == "DEFAULT":
        stream.next()
    shapes: dict[str, Rect] = {}
    current_layer = ""
    while True:
        token = stream.next()
        if token == "END":
            stream.expect(name)
            break
        if token == "LAYER":
            current_layer = stream.next()
            stream.expect(";")
        elif token == "RECT":
            lx = _dbu(tech, stream.next_float())
            ly = _dbu(tech, stream.next_float())
            ux = _dbu(tech, stream.next_float())
            uy = _dbu(tech, stream.next_float())
            stream.expect(";")
            shapes[current_layer] = Rect(lx, ly, ux, uy)
        else:
            stream.skip_statement()
    routing_layers = sorted(
        (routing_index[lname] for lname in shapes if lname in routing_index)
    )
    if len(routing_layers) >= 2:
        bottom = routing_layers[0]
        bottom_name = tech.layers[bottom].name
        top_name = tech.layers[routing_layers[-1]].name
        tech.add_via(
            ViaDef(
                name=name,
                bottom=bottom,
                bottom_shape=shapes[bottom_name],
                top_shape=shapes[top_name],
            )
        )


def _parse_macro(
    stream: TokenStream, tech: Technology, routing_index: dict[str, int]
) -> None:
    name = stream.next()
    macro = Macro(name=name, width=0, height=0)
    while True:
        token = stream.next()
        if token == "END":
            stream.expect(name)
            break
        if token == "SIZE":
            w = stream.next_float()
            stream.expect("BY")
            h = stream.next_float()
            stream.expect(";")
            macro.width, macro.height = _dbu(tech, w), _dbu(tech, h)
        elif token == "SITE":
            macro.site_name = stream.next()
            stream.expect(";")
        elif token == "PIN":
            macro.add_pin(_parse_macro_pin(stream, tech, routing_index))
        elif token == "OBS":
            macro.obstructions.extend(_parse_obs(stream, tech, routing_index))
        elif token in ("CLASS", "ORIGIN", "FOREIGN", "SYMMETRY"):
            stream.skip_statement()
    tech.add_macro(macro)


def _parse_macro_pin(
    stream: TokenStream, tech: Technology, routing_index: dict[str, int]
) -> MacroPin:
    name = stream.next()
    pin = MacroPin(name=name, direction=PinDirection.INPUT)
    while True:
        token = stream.next()
        if token == "END":
            stream.expect(name)
            return pin
        if token == "DIRECTION":
            pin.direction = PinDirection(stream.next())
            stream.expect(";")
        elif token == "PORT":
            pin.shapes.extend(_parse_port(stream, tech, routing_index))
        elif token in ("USE", "SHAPE", "ANTENNAGATEAREA", "ANTENNADIFFAREA"):
            stream.skip_statement()


def _parse_port(
    stream: TokenStream, tech: Technology, routing_index: dict[str, int]
) -> list[PinShape]:
    shapes: list[PinShape] = []
    current_layer = -1
    while True:
        token = stream.next()
        if token == "END":
            return shapes
        if token == "LAYER":
            current_layer = routing_index.get(stream.next(), -1)
            stream.expect(";")
        elif token == "RECT":
            lx = _dbu(tech, stream.next_float())
            ly = _dbu(tech, stream.next_float())
            ux = _dbu(tech, stream.next_float())
            uy = _dbu(tech, stream.next_float())
            stream.expect(";")
            if current_layer >= 0:
                shapes.append(PinShape(current_layer, Rect(lx, ly, ux, uy)))
        else:
            stream.skip_statement()


def _parse_obs(
    stream: TokenStream, tech: Technology, routing_index: dict[str, int]
) -> list[PinShape]:
    # OBS bodies share the PORT grammar (LAYER/RECT lists ending at END).
    return _parse_port(stream, tech, routing_index)


# --------------------------------------------------------------------- writer


def write_lef(tech: Technology) -> str:
    """Emit ``tech`` as LEF text that :func:`parse_lef` round-trips."""
    dbu = tech.dbu_per_micron

    def um(value: int) -> str:
        return f"{value / dbu:.4f}"

    out: list[str] = [
        "VERSION 5.8 ;",
        "UNITS",
        f"  DATABASE MICRONS {dbu} ;",
        "END UNITS",
    ]
    for site in tech.sites.values():
        out += [
            f"SITE {site.name}",
            "  CLASS CORE ;",
            f"  SIZE {um(site.width)} BY {um(site.height)} ;",
            f"END {site.name}",
        ]
    for layer in tech.layers:
        out += [
            f"LAYER {layer.name}",
            "  TYPE ROUTING ;",
            f"  DIRECTION {layer.direction.value} ;",
            f"  PITCH {um(layer.pitch)} ;",
            f"  WIDTH {um(layer.width)} ;",
            f"  SPACING {um(layer.spacing)} ;",
            f"  AREA {layer.min_area / dbu**2:.6f} ;",
            f"  OFFSET {um(layer.offset)} ;",
            f"END {layer.name}",
        ]
    for via in tech.vias:
        bottom = tech.layers[via.bottom]
        top = tech.layers[via.top]
        b, t = via.bottom_shape, via.top_shape
        out += [
            f"VIA {via.name} DEFAULT",
            f"  LAYER {bottom.name} ;",
            f"    RECT {um(b.lx)} {um(b.ly)} {um(b.ux)} {um(b.uy)} ;",
            f"  LAYER {top.name} ;",
            f"    RECT {um(t.lx)} {um(t.ly)} {um(t.ux)} {um(t.uy)} ;",
            f"END {via.name}",
        ]
    for macro in tech.macros.values():
        out += [
            f"MACRO {macro.name}",
            "  CLASS CORE ;",
            f"  SIZE {um(macro.width)} BY {um(macro.height)} ;",
        ]
        if macro.site_name:
            out.append(f"  SITE {macro.site_name} ;")
        for pin in macro.pins.values():
            out += [
                f"  PIN {pin.name}",
                f"    DIRECTION {pin.direction.value} ;",
                "    PORT",
            ]
            for shape in pin.shapes:
                layer = tech.layers[shape.layer]
                r = shape.rect
                out.append(f"      LAYER {layer.name} ;")
                out.append(
                    f"        RECT {um(r.lx)} {um(r.ly)} {um(r.ux)} {um(r.uy)} ;"
                )
            out += ["    END", f"  END {pin.name}"]
        if macro.obstructions:
            out.append("  OBS")
            for shape in macro.obstructions:
                layer = tech.layers[shape.layer]
                r = shape.rect
                out.append(f"    LAYER {layer.name} ;")
                out.append(
                    f"      RECT {um(r.lx)} {um(r.ly)} {um(r.ux)} {um(r.uy)} ;"
                )
            out.append("  END")
        out.append(f"END {macro.name}")
    out.append("END LIBRARY")
    return "\n".join(out) + "\n"

"""One driver for every source-level analysis, and the baseline gate.

:func:`run_source_analysis` is what both entry points —
``python -m repro.analyze`` and ``crp analyze`` — call: the per-file
linter, the interprocedural dataflow passes, and the REPRO-U001
unused-suppression sweep (which must run last, over the merged
used-suppression map of everything before it).

The committed ``ANALYZE_baseline.json`` is the report document of a
clean run over ``src/``: :func:`update_baseline` regenerates it
byte-stably (atomic write, sorted keys at every level), and
:func:`check_baseline` is the CI gate — byte comparison first, then a
two-sided semantic diff (new findings AND baseline entries that no
longer fire both fail) plus a rule-table diff, so drift in either
direction is visible in the job summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.dataflow.engine import DataflowConfig, run_dataflow
from repro.analyze.dataflow.ruleset import register_dataflow_rules
from repro.analyze.findings import (
    Finding,
    Severity,
    load_report,
    report_document,
    write_report,
)
from repro.analyze.linter import (
    LintConfig,
    iter_python_files,
    lint_paths,
    unused_suppression_findings,
)
from repro.analyze.rules import rule_table

BASELINE_NAME = "ANALYZE_baseline.json"


@dataclass(slots=True)
class SourceAnalysis:
    """Combined outcome of linter + dataflow + unused-suppression."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: deterministic dataflow statistics ({} when dataflow was skipped)
    dataflow_stats: dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def ok(self) -> bool:
        return self.errors == 0


def run_source_analysis(
    paths: list[str | Path] | None = None,
    *,
    lint_config: LintConfig | None = None,
    dataflow: bool = True,
    dataflow_config: DataflowConfig | None = None,
    relative_to: str | Path | None = ".",
) -> SourceAnalysis:
    """Run every source-level pass over ``paths`` (default ``src``)."""
    register_dataflow_rules()
    paths = list(paths) if paths is not None else ["src"]
    out = SourceAnalysis()

    lint = lint_paths(paths, lint_config, relative_to=relative_to)
    out.findings.extend(lint.findings)
    out.files_scanned = lint.files_scanned
    out.suppressed = lint.suppressed
    out.parse_errors = list(lint.parse_errors)
    used: dict[str, set[tuple[int, str]]] = {
        path: set(pairs) for path, pairs in lint.used_suppressions.items()
    }

    if dataflow:
        flow = run_dataflow(paths, dataflow_config, relative_to=relative_to)
        out.findings.extend(flow.findings)
        out.suppressed += flow.suppressed
        out.dataflow_stats = dict(flow.stats)
        for path, pairs in flow.used_suppressions.items():
            used.setdefault(path, set()).update(pairs)

    # U001 last: it needs the final merged used-suppression map
    sources: dict[str, str] = {}
    for file_path in iter_python_files(paths):
        report_path = file_path
        if relative_to is not None:
            try:
                report_path = file_path.resolve().relative_to(
                    Path(relative_to).resolve()
                )
            except ValueError:
                report_path = file_path
        try:
            sources[Path(report_path).as_posix()] = file_path.read_text()
        except OSError:
            continue  # already a parse_errors entry from the linter
    out.findings.extend(unused_suppression_findings(sources, used))

    # --select/--ignore apply uniformly, dataflow findings included
    if lint_config is not None:
        if lint_config.select:
            out.findings = [
                f for f in out.findings if f.rule in lint_config.select
            ]
        if lint_config.ignore:
            out.findings = [
                f for f in out.findings if f.rule not in lint_config.ignore
            ]

    out.findings.sort(key=Finding.sort_key)
    return out


def analysis_report(analysis: SourceAnalysis) -> dict[str, object]:
    """The deterministic SARIF-lite document for one analysis run."""
    extra: dict[str, object] = {}
    if analysis.dataflow_stats:
        extra["dataflow"] = dict(sorted(analysis.dataflow_stats.items()))
    return report_document(
        analysis.findings,
        tool="repro.analyze",
        files_scanned=analysis.files_scanned,
        suppressed=analysis.suppressed,
        rule_table=rule_table(),
        extra=extra,
    )


def _render_document(document: dict[str, object]) -> str:
    return json.dumps(document, indent=1, sort_keys=False) + "\n"


def update_baseline(
    baseline_path: str | Path = BASELINE_NAME,
    paths: list[str | Path] | None = None,
    *,
    relative_to: str | Path | None = ".",
) -> SourceAnalysis:
    """Regenerate the committed baseline (atomic, sorted, byte-stable)."""
    analysis = run_source_analysis(paths, relative_to=relative_to)
    write_report(baseline_path, analysis_report(analysis))
    return analysis


def _finding_keys(findings: list[Finding]) -> set[tuple]:
    return {
        (f.path, f.line, f.rule, f.severity.value, f.message)
        for f in findings
    }


def check_baseline(
    baseline_path: str | Path = BASELINE_NAME,
    paths: list[str | Path] | None = None,
    *,
    relative_to: str | Path | None = ".",
) -> tuple[bool, list[str]]:
    """Two-sided baseline gate; returns (ok, human-readable diff lines).

    Fails on: a missing/unreadable baseline, any current finding absent
    from the baseline (*regression*), any baseline finding that no
    longer fires (*stale baseline* — the fix must be banked by
    regenerating), and any rule-table drift.  Byte-identical documents
    short-circuit to ok.
    """
    baseline_path = Path(baseline_path)
    analysis = run_source_analysis(paths, relative_to=relative_to)
    document = analysis_report(analysis)
    rendered = _render_document(document)
    try:
        committed = baseline_path.read_text()
    except OSError as exc:
        return False, [f"baseline unreadable: {exc}"]
    if committed == rendered:
        return True, []

    lines: list[str] = []
    try:
        base_findings, base_doc = load_report(baseline_path)
    except (ValueError, KeyError) as exc:
        return False, [f"baseline unparsable: {exc}"]
    current = _finding_keys(analysis.findings)
    baseline = _finding_keys(base_findings)
    for key in sorted(current - baseline):
        lines.append(
            f"NEW     {key[2]} {key[3]} at {key[0]}:{key[1]} — {key[4]}"
        )
    for key in sorted(baseline - current):
        lines.append(
            f"GONE    {key[2]} {key[3]} at {key[0]}:{key[1]} — {key[4]}"
        )
    base_rules = dict(base_doc.get("rules", {}))
    cur_rules = rule_table()
    for rid in sorted(set(base_rules) | set(cur_rules)):
        old, new = base_rules.get(rid), cur_rules.get(rid)
        if old == new:
            continue
        if old is None:
            lines.append(f"RULE+   {rid}: {new}")
        elif new is None:
            lines.append(f"RULE-   {rid}: {old}")
        else:
            lines.append(f"RULE~   {rid}: {old!r} -> {new!r}")
    if not lines:
        lines.append(
            "document drift without finding/rule changes (summary or "
            "stats fields differ) — regenerate with --update-baseline"
        )
    lines.append(
        "baseline drift: regenerate with "
        "`python -m repro.analyze --update-baseline` and commit the diff"
    )
    return False, lines

"""Fault-site and deadline coverage checks (REPRO-G004/G005).

Both close interprocedural gaps in the per-file guard rules:

* **REPRO-G004** — an ``except FaultInjected``/``except
  DeadlineExceeded`` handler is only meaningful if its try body can
  actually raise that exception: transitively reaching a
  ``fault_point`` (resp. ``check_deadline``/``tick``/
  ``deadline_scope``) call.  A handler over a body that provably
  cannot raise is either a dropped guard call or dead code.  Opaque
  (unresolved) calls in the try body get the benefit of the doubt.

* **REPRO-G005** — REPRO-G001 demands a deadline check *syntactically
  inside* unbounded loops under the solver paths.  This pass follows
  the call graph instead: every unbounded ``while`` in any function
  reachable from ``run_flow`` (over plain call edges — threads and
  processes own their budgets) must reach a tick either in its own
  body or through a callee.  This both extends coverage beyond the
  G001 path scope and un-flags loops whose tick lives one call down.
"""

from __future__ import annotations

import ast

from repro.analyze.dataflow.callgraph import (
    CallIndex,
    _own_nodes,
    propagate_flag,
    reachable,
)
from repro.analyze.dataflow.project import Project
from repro.analyze.dataflow.ruleset import register_dataflow_rules
from repro.analyze.findings import Finding
from repro.analyze.rules import RULES, _call_name

_TICK_NAMES = frozenset(("check_deadline", "tick"))
# fault_point counts: FaultPlan.fail() can arm a caller-supplied
# exception class, so an injected fault may BE a DeadlineExceeded
_DEADLINE_RAISERS = frozenset(
    ("check_deadline", "tick", "deadline_scope", "DeadlineTicker",
     "fault_point")
)
_FAULT_RAISERS = frozenset(("fault_point",))


def _direct_flag(project: Project, names: frozenset[str]) -> dict[str, bool]:
    """qualname -> does the function body call one of ``names`` directly."""
    out: dict[str, bool] = {}
    for info in project.functions_sorted():
        hit = False
        for node in _own_nodes(info):
            if isinstance(node, ast.Call):
                if _call_name(node).split(".")[-1] in names:
                    hit = True
                    break
        out[info.qualname] = hit
    return out


def coverage_findings(
    project: Project,
    index: CallIndex,
    *,
    flow_entries: tuple[str, ...] = ("run_flow",),
) -> list[Finding]:
    register_dataflow_rules()
    findings = _handler_findings(project, index)
    findings.extend(_loop_findings(project, index, flow_entries))
    findings.sort(key=Finding.sort_key)
    return findings


# ----------------------------------------------------------- REPRO-G004


def _handler_kind(type_node: ast.expr | None) -> str | None:
    """"fault"/"deadline" when the handler names a guard exception."""
    if type_node is None:
        return None
    nodes = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    for node in nodes:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name == "FaultInjected":
            return "fault"
        if name == "DeadlineExceeded":
            return "deadline"
    return None


def _body_can_raise(
    body: list[ast.stmt],
    sites: dict[int, str | None],
    raises_flag: dict[str, bool],
    raiser_names: frozenset[str],
    exc_name: str,
) -> bool:
    """Can this try body (transitively) raise the guard exception?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # a nested def's body does not run inside the try
                continue
            if isinstance(node, ast.Raise) and node.exc is not None:
                for sub in ast.walk(node.exc):
                    name = None
                    if isinstance(sub, ast.Name):
                        name = sub.id
                    elif isinstance(sub, ast.Attribute):
                        name = sub.attr
                    if name == exc_name:
                        return True
            if not isinstance(node, ast.Call):
                continue
            short = _call_name(node).split(".")[-1]
            if short in raiser_names:
                return True
            callee = sites.get(id(node))
            if callee is None:
                return True  # opaque call: benefit of the doubt
            if raises_flag.get(callee, False):
                return True
    return False


def _handler_findings(project: Project, index: CallIndex) -> list[Finding]:
    fault_flag = propagate_flag(
        index, _direct_flag(project, _FAULT_RAISERS)
    )
    deadline_flag = propagate_flag(
        index, _direct_flag(project, _DEADLINE_RAISERS)
    )
    spec = RULES["REPRO-G004"]
    findings: list[Finding] = []
    for info in project.functions_sorted():
        sites = {
            id(site.node): site.callee
            for site in index.calls.get(info.qualname, ())
        }
        for node in _own_nodes(info):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                kind = _handler_kind(handler.type)
                if kind is None:
                    continue
                if kind == "fault":
                    flag, raisers, exc = (
                        fault_flag,
                        _FAULT_RAISERS,
                        "FaultInjected",
                    )
                else:
                    flag, raisers, exc = (
                        deadline_flag,
                        _DEADLINE_RAISERS,
                        "DeadlineExceeded",
                    )
                if _body_can_raise(node.body, sites, flag, raisers, exc):
                    continue
                findings.append(
                    Finding(
                        rule=spec.id,
                        severity=spec.severity_for(info.path),
                        path=info.path,
                        line=handler.lineno,
                        message=(
                            f"`except {exc}` handler in "
                            f"`{info.bare_name}()` guards a try body "
                            "that cannot reach any "
                            + (
                                "registered `fault_point` call"
                                if kind == "fault"
                                else "deadline check"
                            )
                        ),
                        hint=spec.hint,
                    )
                )
    return findings


# ----------------------------------------------------------- REPRO-G005


def _is_bounded(test: ast.expr) -> bool:
    """Same heuristic as REPRO-G001: any comparison is an explicit bound."""
    return any(isinstance(n, ast.Compare) for n in ast.walk(test))


def _ticks_syntactically(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            if _call_name(sub).split(".")[-1] in _TICK_NAMES:
                return True
    return False


def _loop_findings(
    project: Project, index: CallIndex, flow_entries: tuple[str, ...]
) -> list[Finding]:
    entries: set[str] = set()
    for name in flow_entries:
        entries.update(project.functions_named(name))
    if not entries:
        return []
    flow_side = reachable(index, entries)
    tick_flag = propagate_flag(index, _direct_flag(project, _TICK_NAMES))
    spec = RULES["REPRO-G005"]
    findings: list[Finding] = []
    for qual in sorted(flow_side):
        info = project.functions.get(qual)
        if info is None:
            continue
        sites = {
            id(site.node): site.callee
            for site in index.calls.get(qual, ())
        }

        # while loops in this function, tracking ancestor-loop cover
        # exactly like REPRO-G001 (an enclosing loop that ticks
        # re-checks between inner runs)
        loops: list[tuple[ast.While, bool]] = []

        def visit(node: ast.AST, covered: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_covered = covered
                if isinstance(child, (ast.While, ast.For)):
                    child_covered = covered or self_ticks(child)
                    if isinstance(child, ast.While):
                        loops.append((child, covered))
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # nested defs are separate functions
                visit(child, child_covered)

        def self_ticks(loop: ast.AST) -> bool:
            if _ticks_syntactically(loop):
                return True
            for sub in ast.walk(loop):
                if isinstance(sub, ast.Call):
                    callee = sites.get(id(sub))
                    if callee is not None and tick_flag.get(callee, False):
                        return True
            return False

        visit(info.node, False)
        for loop, covered in loops:
            if _is_bounded(loop.test):
                continue
            if covered or self_ticks(loop):
                continue
            findings.append(
                Finding(
                    rule=spec.id,
                    severity=spec.severity_for(info.path),
                    path=info.path,
                    line=loop.lineno,
                    message=(
                        f"unbounded `while` loop in `{info.bare_name}()` "
                        "is reachable from "
                        f"{'/'.join(sorted(flow_entries))} but never "
                        "reaches `check_deadline`/`DeadlineTicker.tick`, "
                        "even through callees"
                    ),
                    hint=spec.hint,
                )
            )
    return findings

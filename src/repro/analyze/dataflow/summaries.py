"""Per-function taint summaries: the lattice and the abstract executor.

The determinism taint pass models four taint kinds:

* ``rng`` — values derived from the shared global RNG, an unseeded
  ``random.Random()``/``numpy default_rng()``, ``uuid4``/``urandom``.
* ``set-order`` — sequences whose *order* came from iterating a set.
* ``fs-order`` — sequences ordered by a filesystem listing.
* ``wall-clock`` — ``time.time()``/``datetime.now()`` readings
  (monotonic/perf_counter are measurement clocks, not sources).

Labels travel through a small abstract interpreter executed over each
function body: assignments, container element-flow (append/comprehension
/iteration), branch joins, and two-pass loop bodies.  Besides concrete
:class:`Taint` labels, two symbolic labels make summaries composable:

* ``ParamFlow(i)`` — the value of parameter *i* flows here.
* ``ParamOrder(i)`` — the *iteration order* of parameter *i* flows
  here (the caller decides whether that order is deterministic).

A function's :class:`Summary` records which labels reach its return
value and which reach a **sink** — route/placement commits, the
``repro.par`` mutation log, metrics/quality digests, and checkpoint
payloads.  The fixpoint in :mod:`repro.analyze.dataflow.taint` iterates
summaries to convergence so taint crosses any number of call
boundaries in both directions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.analyze.dataflow.callgraph import CallIndex, CallSite
from repro.analyze.dataflow.project import FunctionInfo, Project
from repro.analyze.rules import (
    _call_name,
    _is_set_annotation,
    _is_set_expr,
)

# --------------------------------------------------------------- labels


class Taint(NamedTuple):
    """A concrete taint source: what kind, and where it entered."""

    kind: str  # "rng" | "set-order" | "fs-order" | "wall-clock"
    path: str
    line: int
    detail: str


class ParamFlow(NamedTuple):
    index: int


class ParamOrder(NamedTuple):
    index: int


Label = object  # Taint | ParamFlow | ParamOrder

ORDER_KINDS = ("set-order", "fs-order")

_EMPTY: frozenset = frozenset()


def _is_order_label(label: Label) -> bool:
    if isinstance(label, ParamOrder):
        return True
    return isinstance(label, Taint) and label.kind in ORDER_KINDS


def _strip_order(labels: frozenset) -> frozenset:
    return frozenset(l for l in labels if not _is_order_label(l))


# ---------------------------------------------------------------- sinks

#: sink call name (last dotted component) -> category
SINK_NAMES = {
    "apply_route": "commit",
    "move_cell": "commit",
    "note_route": "commit",
    "routes_digest": "digest",
    "positions_digest": "digest",
    "sha256": "digest",
    "sha1": "digest",
    "md5": "digest",
    "evaluate": "digest",
    "save_boundary": "ckpt",
    "save_checkpoint": "ckpt",
}

#: obs registry methods whose *value* arguments are digest material
_METRIC_METHODS = ("count", "gauge", "observe")

#: sink categories whose mere invocation inside a loop body makes the
#: loop's iteration order observable (the commit-order hazard)
ORDER_SENSITIVE_SINKS = ("commit", "digest", "ckpt")


def sink_of(site: CallSite) -> tuple[str, list[tuple[int | None, ast.expr]]] | None:
    """Classify a call site as a sink: (category, [(arg index, expr)]).

    Index ``None`` marks keyword arguments (matched to parameters only
    when the callee is resolved).
    """
    short = site.dotted.split(".")[-1]
    node = site.node
    args: list[tuple[int | None, ast.expr]] = []
    if short in SINK_NAMES:
        args = [(i, a) for i, a in enumerate(node.args)]
        args += [(None, kw.value) for kw in node.keywords]
        return SINK_NAMES[short], args
    if short in _METRIC_METHODS and isinstance(node.func, ast.Attribute):
        from repro.analyze.rules import _obs_receiver

        if _obs_receiver(node.func.value):
            args = [(i, a) for i, a in enumerate(node.args) if i >= 1]
            args += [(None, kw.value) for kw in node.keywords]
            return "metric", args
    return None


# --------------------------------------------------------------- sources

_FS_LISTING = ("listdir", "iterdir", "glob", "rglob", "scandir")
_ORDER_SAFE = (
    "sorted", "set", "frozenset", "min", "max", "sum", "any", "all", "len",
)
_MUTATORS = ("append", "add", "extend", "insert", "update", "setdefault")


def canonical_call(module_imports: dict[str, str], dotted: str) -> str:
    """Expand the leading import alias: ``np.random.rand`` -> ``numpy...``."""
    if not dotted:
        return dotted
    head, _, rest = dotted.partition(".")
    target = module_imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def source_kind(
    module_imports: dict[str, str], node: ast.Call
) -> tuple[str, str] | None:
    """(taint kind, detail) when this call is a nondeterminism source."""
    canonical = canonical_call(module_imports, _call_name(node))
    short = canonical.split(".")[-1]
    if canonical == "random.Random" or canonical == "random.SystemRandom":
        if not node.args and not node.keywords:
            return "rng", "unseeded random.Random()"
        return None
    if canonical.startswith("random."):
        return "rng", f"global RNG call `{canonical}()`"
    if canonical.startswith("numpy.random."):
        if short == "default_rng" and (node.args or node.keywords):
            return None
        return "rng", f"global NumPy RNG call `{canonical}()`"
    if canonical in ("os.urandom", "uuid.uuid4") or canonical.startswith(
        "secrets."
    ):
        return "rng", f"entropy source `{canonical}()`"
    if canonical == "time.time" or canonical in (
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    ):
        return "wall-clock", f"wall-clock read `{canonical}()`"
    if short in _FS_LISTING:
        return "fs-order", f"filesystem listing `{_call_name(node)}()`"
    return None


# -------------------------------------------------------------- summary


@dataclass(frozen=True, slots=True)
class Summary:
    """Composable facts about one function, for its callers."""

    return_taint: frozenset = _EMPTY  # Taint labels reaching the return
    param_to_return: frozenset = _EMPTY  # param indices whose value returns
    param_order_to_return: frozenset = _EMPTY  # indices iterated into return
    param_sinks: frozenset = _EMPTY  # (index, category) value-into-sink
    param_order_sinks: frozenset = _EMPTY  # (index, category) order-into-sink
    reaches: frozenset = _EMPTY  # sink categories invoked transitively


EMPTY_SUMMARY = Summary()


class Hit(NamedTuple):
    """One taint-to-sink flow, ready to become a finding."""

    label: Taint
    category: str
    sink: str  # human description of the sink call
    func: str  # qualname of the function containing the sink-side call
    path: str  # file of the sink-side call
    line: int  # line of the sink-side call


@dataclass(slots=True)
class FunctionFacts:
    """Everything one abstract execution of a function produced."""

    summary: Summary = field(default_factory=lambda: EMPTY_SUMMARY)
    hits: dict = field(default_factory=dict)  # dedupe key -> Hit


# ------------------------------------------------- the abstract executor


class FunctionAnalysis:
    """Abstractly execute one function body under current summaries."""

    def __init__(
        self,
        info: FunctionInfo,
        project: Project,
        index: CallIndex,
        summaries: dict[str, Summary],
    ) -> None:
        self.info = info
        self.project = project
        self.module = project.modules[info.module]
        self.summaries = summaries
        self.sites: dict[int, CallSite] = {
            id(site.node): site for site in index.calls.get(info.qualname, ())
        }
        self.params: list[str] = [
            a.arg
            for a in (
                info.node.args.posonlyargs
                + info.node.args.args
                + info.node.args.kwonlyargs
            )
        ]
        self.set_names = self._collect_set_names()
        self.returns: set = set()
        self.param_sinks: set = set()
        self.param_order_sinks: set = set()
        self.reaches: set = set()
        self.hits: dict = {}

    # ------------------------------------------------------------ set-ness

    def _collect_set_names(self) -> set[str]:
        """Names that are set-typed in this function (locals + params)."""
        names: set[str] = set()
        args = self.info.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if _is_set_annotation(a.annotation):
                names.add(a.arg)
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation) or (
                    node.value is not None and _is_set_expr(node.value)
                ):
                    names.add(node.target.id)
        return names

    def _is_set_valued(self, node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        return isinstance(node, ast.Name) and node.id in self.set_names

    # ------------------------------------------------------------ driver

    def run(self) -> FunctionFacts:
        env: dict[str, frozenset] = {
            name: frozenset([ParamFlow(i)])
            for i, name in enumerate(self.params)
        }
        self._exec_block(self.info.node.body, env)
        summary = Summary(
            return_taint=frozenset(
                l for l in self.returns if isinstance(l, Taint)
            ),
            param_to_return=frozenset(
                l.index for l in self.returns if isinstance(l, ParamFlow)
            ),
            param_order_to_return=frozenset(
                l.index for l in self.returns if isinstance(l, ParamOrder)
            ),
            param_sinks=frozenset(self.param_sinks),
            param_order_sinks=frozenset(self.param_order_sinks),
            reaches=frozenset(self.reaches),
        )
        facts = FunctionFacts(summary=summary)
        facts.hits = self.hits
        return facts

    # --------------------------------------------------------- statements

    def _exec_block(self, stmts: list[ast.stmt], env: dict) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self.etaint(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, labels, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self.etaint(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            labels = self.etaint(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = env.get(stmt.target.id, _EMPTY) | labels
            else:
                self._assign(stmt.target, labels, env)
        elif isinstance(stmt, (ast.Return,)):
            if stmt.value is not None:
                self.returns |= self.etaint(stmt.value, env)
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                if value.value is not None:
                    self.returns |= self.etaint(value.value, env)
            else:
                self.etaint(value, env)
        elif isinstance(stmt, ast.For):
            self._exec_loop(stmt, env)
        elif isinstance(stmt, ast.While):
            self.etaint(stmt.test, env)
            before = dict(env)
            for _ in range(2):
                self._exec_block(stmt.body, env)
            self._join_into(env, before)
            self._exec_block(stmt.orelse, env)
        elif isinstance(stmt, ast.If):
            self.etaint(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            env.clear()
            env.update(then_env)
            self._join_into(env, else_env)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env)
            for handler in stmt.handlers:
                self._exec_block(handler.body, env)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                labels = self.etaint(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, labels, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pass  # nested functions are analyzed as functions of their own
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.etaint(stmt.exc, env)
        elif isinstance(stmt, (ast.Assert,)):
            self.etaint(stmt.test, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)

    def _exec_loop(self, stmt: ast.For, env: dict) -> None:
        iter_labels = self.etaint(stmt.iter, env)
        fresh = self._iteration_labels(stmt.iter, iter_labels)
        self._assign(stmt.target, iter_labels | fresh, env)
        self._check_loop_order(stmt, iter_labels | fresh)
        before = dict(env)
        for _ in range(2):
            self._exec_block(stmt.body, env)
        self._join_into(env, before)
        self._exec_block(stmt.orelse, env)

    def _join_into(self, env: dict, other: dict) -> None:
        for key, labels in other.items():
            env[key] = env.get(key, _EMPTY) | labels

    def _assign(self, target: ast.expr, labels: frozenset, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, labels, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, labels, env)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # a[k] = v / a.x = v taints the base container (element flow)
            base = target.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                env[base.id] = env.get(base.id, _EMPTY) | labels

    # --------------------------------------------------------- iteration

    def _iteration_labels(
        self, iter_expr: ast.expr, iter_labels: frozenset
    ) -> frozenset:
        """Fresh labels created by iterating ``iter_expr`` unsorted."""
        fresh: set = set()
        if self._is_set_valued(iter_expr):
            fresh.add(
                Taint(
                    "set-order",
                    self.info.path,
                    getattr(iter_expr, "lineno", 0),
                    "unsorted set iteration",
                )
            )
        for label in iter_labels:
            if isinstance(label, ParamFlow):
                fresh.add(ParamOrder(label.index))
        return frozenset(fresh)

    def _body_sink_categories(self, loop: ast.AST) -> set[str]:
        """Order-sensitive sink categories the loop body can reach."""
        categories: set[str] = set()
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            site = self.sites.get(id(node))
            if site is None:
                continue
            sink = sink_of(site)
            if sink is not None and sink[0] in ORDER_SENSITIVE_SINKS:
                categories.add(sink[0])
            if site.callee is not None:
                summary = self.summaries.get(site.callee, EMPTY_SUMMARY)
                categories |= {
                    cat
                    for cat in summary.reaches
                    if cat in ORDER_SENSITIVE_SINKS
                }
        return categories

    def _check_loop_order(self, loop: ast.For, labels: frozenset) -> None:
        """An unordered iteration whose body commits leaks its order."""
        order_labels = [
            l for l in labels if isinstance(l, Taint) and l.kind in ORDER_KINDS
        ]
        param_orders = [l for l in labels if isinstance(l, ParamOrder)]
        if not order_labels and not param_orders:
            return
        for category in sorted(self._body_sink_categories(loop)):
            for label in order_labels:
                self._record_hit(
                    label,
                    category,
                    "loop-body state mutation",
                    loop.lineno,
                )
            for label in param_orders:
                self.param_order_sinks.add((label.index, category))

    # ------------------------------------------------------- expressions

    def etaint(self, node: ast.expr, env: dict) -> frozenset:
        """Labels carried by this expression's value (side-effect: hits)."""
        if isinstance(node, ast.Name):
            return env.get(node.id, _EMPTY)
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            return self.etaint(node.value, env)
        if isinstance(node, ast.Subscript):
            return self.etaint(node.value, env) | self.etaint(node.slice, env)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = _EMPTY
            for element in node.elts:
                out |= self.etaint(element, env)
            return out
        if isinstance(node, ast.Set):
            out = _EMPTY
            for element in node.elts:
                out |= self.etaint(element, env)
            return _strip_order(out)
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self.etaint(key, env)
            for value in node.values:
                out |= self.etaint(value, env)
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            labels = self._eval_comp(node, env)
            if isinstance(node, ast.SetComp):
                labels = _strip_order(labels)
            return labels
        if isinstance(node, ast.DictComp):
            return self._eval_comp(node, env)
        if isinstance(node, ast.BoolOp):
            out = _EMPTY
            for value in node.values:
                out |= self.etaint(value, env)
            return out
        if isinstance(node, ast.BinOp):
            return self.etaint(node.left, env) | self.etaint(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return self.etaint(node.operand, env)
        if isinstance(node, ast.Compare):
            out = self.etaint(node.left, env)
            for comparator in node.comparators:
                out |= self.etaint(comparator, env)
            return out
        if isinstance(node, ast.IfExp):
            self.etaint(node.test, env)
            return self.etaint(node.body, env) | self.etaint(node.orelse, env)
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                out |= self.etaint(value, env)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.etaint(node.value, env)
        if isinstance(node, ast.Starred):
            return self.etaint(node.value, env)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                labels = self.etaint(node.value, env)
                self.returns |= labels
            return _EMPTY
        if isinstance(node, ast.Await):
            return self.etaint(node.value, env)
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(node, ast.NamedExpr):
            labels = self.etaint(node.value, env)
            self._assign(node.target, labels, env)
            return labels
        return _EMPTY

    def _eval_comp(self, node: ast.expr, env: dict) -> frozenset:
        scratch = dict(env)
        fresh = _EMPTY
        for gen in node.generators:
            glabels = self.etaint(gen.iter, scratch)
            gfresh = self._iteration_labels(gen.iter, glabels)
            fresh |= gfresh
            fresh |= frozenset(l for l in glabels if _is_order_label(l))
            self._assign(gen.target, glabels | gfresh, scratch)
            for cond in gen.ifs:
                self.etaint(cond, scratch)
        if isinstance(node, ast.DictComp):
            out = self.etaint(node.key, scratch) | self.etaint(
                node.value, scratch
            )
        else:
            out = self.etaint(node.elt, scratch)
        return out | fresh

    # -------------------------------------------------------------- calls

    def _eval_call(self, node: ast.Call, env: dict) -> frozenset:
        arg_labels: list[frozenset] = [
            self.etaint(a, env) for a in node.args
        ]
        kw_labels: list[tuple[str | None, frozenset, ast.expr]] = [
            (kw.arg, self.etaint(kw.value, env), kw.value)
            for kw in node.keywords
        ]
        site = self.sites.get(id(node))
        dotted = site.dotted if site is not None else _call_name(node)
        short = dotted.split(".")[-1]

        # container mutators: x.append(v) taints x with v's labels
        if short in _MUTATORS and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name):
                added = _EMPTY
                for labels in arg_labels:
                    added |= labels
                for _, labels, _ in kw_labels:
                    added |= labels
                if added:
                    env[base.id] = env.get(base.id, _EMPTY) | added

        # sinks (both direct and via the resolved callee's summary)
        if site is not None:
            self._check_sink(site, node, arg_labels, kw_labels)

        # sources
        kind = source_kind(self.module.imports, node)
        if kind is not None:
            return frozenset(
                [Taint(kind[0], self.info.path, node.lineno, kind[1])]
            )

        # order sanitizers (rng/wall-clock survive sorting; order dies)
        if short in _ORDER_SAFE and isinstance(node.func, ast.Name):
            out = _EMPTY
            for labels in arg_labels:
                out |= labels
            return _strip_order(out)

        # list()/tuple() of a set materializes hash order
        if (
            short in ("list", "tuple")
            and isinstance(node.func, ast.Name)
            and node.args
            and self._is_set_valued(node.args[0])
        ):
            out = frozenset(
                [
                    Taint(
                        "set-order",
                        self.info.path,
                        node.lineno,
                        f"`{short}()` of a set",
                    )
                ]
            )
            for labels in arg_labels:
                out |= labels
            return out

        callee = site.callee if site is not None else None
        if callee is not None and callee in self.summaries:
            return self._eval_resolved_call(
                node, callee, arg_labels, kw_labels
            )

        # unresolved: conservatively pass argument + receiver taint through
        out = _EMPTY
        for labels in arg_labels:
            out |= labels
        for _, labels, _ in kw_labels:
            out |= labels
        if isinstance(node.func, ast.Attribute):
            out |= self.etaint(node.func.value, env)
        return out

    def _callee_param_index(self, callee: str, name: str | None) -> int | None:
        if name is None:
            return None
        info = self.project.functions.get(callee)
        if info is None:
            return None
        args = info.node.args
        names = [
            a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
        ]
        try:
            return names.index(name)
        except ValueError:
            return None

    def _eval_resolved_call(
        self,
        node: ast.Call,
        callee: str,
        arg_labels: list[frozenset],
        kw_labels: list[tuple[str | None, frozenset, ast.expr]],
    ) -> frozenset:
        summary = self.summaries[callee]
        callee_info = self.project.functions.get(callee)
        offset = 1 if callee_info is not None and callee_info.cls else 0
        result: set = set(summary.return_taint)
        self.reaches |= summary.reaches

        pairs: list[tuple[int | None, frozenset, ast.expr]] = [
            (i + offset, labels, node.args[i])
            for i, labels in enumerate(arg_labels)
        ]
        for name, labels, expr in kw_labels:
            pairs.append(
                (self._callee_param_index(callee, name), labels, expr)
            )

        callee_short = callee.rsplit(".", 1)[-1]
        for index, labels, expr in pairs:
            if index is None:
                continue
            if index in summary.param_to_return:
                result |= labels
            if index in summary.param_order_to_return:
                if self._is_set_valued(expr):
                    result.add(
                        Taint(
                            "set-order",
                            self.info.path,
                            expr.lineno,
                            f"set iterated (unsorted) by `{callee_short}()`",
                        )
                    )
                result |= {l for l in labels if _is_order_label(l)}
            for sink_index, category in summary.param_sinks:
                if sink_index != index:
                    continue
                for label in labels:
                    if isinstance(label, Taint):
                        self._record_hit(
                            label,
                            category,
                            f"`{callee_short}()`",
                            node.lineno,
                        )
                    elif isinstance(label, ParamFlow):
                        self.param_sinks.add((label.index, category))
                    elif isinstance(label, ParamOrder):
                        self.param_order_sinks.add((label.index, category))
            for sink_index, category in summary.param_order_sinks:
                if sink_index != index:
                    continue
                if self._is_set_valued(expr):
                    self._record_hit(
                        Taint(
                            "set-order",
                            self.info.path,
                            expr.lineno,
                            f"set iterated (unsorted) by `{callee_short}()`",
                        ),
                        category,
                        f"`{callee_short}()`",
                        node.lineno,
                    )
                for label in labels:
                    if _is_order_label(label) and isinstance(label, Taint):
                        self._record_hit(
                            label,
                            category,
                            f"`{callee_short}()`",
                            node.lineno,
                        )
                    elif isinstance(label, ParamFlow):
                        self.param_order_sinks.add((label.index, category))
                    elif isinstance(label, ParamOrder):
                        self.param_order_sinks.add((label.index, category))
        return frozenset(result)

    def _check_sink(
        self,
        site: CallSite,
        node: ast.Call,
        arg_labels: list[frozenset],
        kw_labels: list[tuple[str | None, frozenset, ast.expr]],
    ) -> None:
        sink = sink_of(site)
        if sink is None:
            return
        category, _ = sink
        self.reaches.add(category)
        sink_desc = f"`{site.dotted}()`"
        all_labels: list[tuple[frozenset, ast.expr]] = []
        if category == "metric":
            all_labels = [
                (labels, node.args[i])
                for i, labels in enumerate(arg_labels)
                if i >= 1
            ]
        else:
            all_labels = [
                (labels, node.args[i]) for i, labels in enumerate(arg_labels)
            ]
        all_labels += [(labels, expr) for _, labels, expr in kw_labels]
        for labels, _expr in all_labels:
            for label in labels:
                if isinstance(label, Taint):
                    self._record_hit(label, category, sink_desc, node.lineno)
                elif isinstance(label, ParamFlow):
                    self.param_sinks.add((label.index, category))
                elif isinstance(label, ParamOrder):
                    self.param_order_sinks.add((label.index, category))

    def _record_hit(
        self, label: Taint, category: str, sink: str, line: int
    ) -> None:
        key = (label, category, self.info.qualname, line)
        if key not in self.hits:
            self.hits[key] = Hit(
                label=label,
                category=category,
                sink=sink,
                func=self.info.qualname,
                path=self.info.path,
                line=line,
            )

"""The summary fixpoint and the determinism taint findings.

Summaries start at bottom (:data:`EMPTY_SUMMARY`) and are recomputed
with a caller-directed worklist: whenever a function's summary grows,
every resolved caller is re-analyzed.  The lattice is finite (labels
are drawn from the program's source sites and parameter indices) and
the transfer functions are monotone, so the loop terminates; a
generous iteration cap guards against resolution pathologies anyway.

At convergence, each function's recorded :class:`~repro.analyze.
dataflow.summaries.Hit` set is consistent with the final summaries,
and every hit becomes one ``REPRO-T0xx`` finding anchored at the
*source* line (where the taint entered), with the sink's location in
the message — that is where the fix (seeding, sorting) belongs, and
where a ``# repro: noqa`` suppression is expected.
"""

from __future__ import annotations

from collections import deque

from repro.analyze.dataflow.callgraph import CallIndex
from repro.analyze.dataflow.project import Project
from repro.analyze.dataflow.ruleset import TAINT_RULES, register_dataflow_rules
from repro.analyze.dataflow.summaries import (
    EMPTY_SUMMARY,
    FunctionAnalysis,
    FunctionFacts,
    Hit,
    Summary,
)
from repro.analyze.findings import Finding
from repro.analyze.rules import RULES


def compute_summaries(
    project: Project, index: CallIndex
) -> tuple[dict[str, Summary], dict[str, FunctionFacts], int]:
    """Worklist fixpoint; returns (summaries, facts, analyses run)."""
    summaries: dict[str, Summary] = {
        qual: EMPTY_SUMMARY for qual in project.functions
    }
    facts: dict[str, FunctionFacts] = {}
    callers: dict[str, set[str]] = {}
    for caller, sites in index.calls.items():
        for site in sites:
            if site.callee is not None:
                callers.setdefault(site.callee, set()).add(caller)

    work: deque[str] = deque(sorted(project.functions))
    queued = set(work)
    runs = 0
    cap = max(1, len(project.functions)) * 50  # termination backstop
    while work and runs < cap:
        qual = work.popleft()
        queued.discard(qual)
        runs += 1
        info = project.functions[qual]
        result = FunctionAnalysis(info, project, index, summaries).run()
        facts[qual] = result
        if result.summary != summaries[qual]:
            summaries[qual] = result.summary
            for caller in sorted(callers.get(qual, ())):
                if caller not in queued:
                    work.append(caller)
                    queued.add(caller)
    return summaries, facts, runs


def taint_findings(facts: dict[str, FunctionFacts]) -> list[Finding]:
    """One finding per distinct (source, sink) taint flow."""
    register_dataflow_rules()
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for qual in sorted(facts):
        for hit in facts[qual].hits.values():
            findings.extend(_hit_finding(hit, seen))
    findings.sort(key=Finding.sort_key)
    return findings


def _hit_finding(hit: Hit, seen: set[tuple]) -> list[Finding]:
    rule_id = TAINT_RULES[hit.label.kind]
    key = (
        rule_id,
        hit.label.path,
        hit.label.line,
        hit.category,
        hit.path,
        hit.line,
    )
    if key in seen:
        return []
    seen.add(key)
    spec = RULES[rule_id]
    where = f"{hit.path}:{hit.line}"
    if hit.path == hit.label.path:
        where = f"line {hit.line}"
    message = (
        f"{hit.label.detail} flows into {hit.category} sink "
        f"{hit.sink} ({where}, via `{hit.func.rsplit('.', 1)[-1]}()`)"
    )
    return [
        Finding(
            rule=rule_id,
            severity=spec.severity_for(hit.label.path),
            path=hit.label.path,
            line=hit.label.line,
            message=message,
            hint=spec.hint,
        )
    ]

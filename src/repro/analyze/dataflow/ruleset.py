"""Rule registrations for the interprocedural dataflow passes.

These rules have no per-file checker — their findings come from the
whole-program passes in :mod:`repro.analyze.dataflow` — so they are
entered into :data:`repro.analyze.rules.RULES` (for severities, hints,
and the report rule table) but never into ``CHECKERS``.  Registration
is idempotent and happens when :mod:`repro.analyze` is imported, so
the rule table is identical whether or not the dataflow passes run.
"""

from __future__ import annotations

from repro.analyze.findings import Severity
from repro.analyze.rules import RULES, Rule

#: taint kind (see summaries.Taint) -> rule ID
TAINT_RULES = {
    "rng": "REPRO-T001",
    "set-order": "REPRO-T002",
    "fs-order": "REPRO-T003",
    "wall-clock": "REPRO-T004",
}

DATAFLOW_RULES: tuple[Rule, ...] = (
    Rule(
        id="REPRO-T001",
        severity=Severity.ERROR,
        summary="value derived from a global or unseeded RNG flows "
        "(interprocedurally) into a commit/digest/checkpoint sink",
        hint="thread a seeded `random.Random(seed)` through the call "
        "chain; the taint enters at the reported line",
    ),
    Rule(
        id="REPRO-T002",
        severity=Severity.ERROR,
        summary="set-iteration order flows (interprocedurally) into a "
        "commit/digest/checkpoint sink",
        hint="iterate `sorted(the_set)` at the reported source line — "
        "hash order must never reach committed state",
    ),
    Rule(
        id="REPRO-T003",
        severity=Severity.ERROR,
        summary="filesystem listing order flows (interprocedurally) "
        "into a commit/digest/checkpoint sink",
        hint="wrap the listing in `sorted(...)` before it feeds any "
        "committed or digested state",
    ),
    Rule(
        id="REPRO-T004",
        severity=Severity.ERROR,
        summary="wall-clock reading flows (interprocedurally) into a "
        "commit/digest/checkpoint payload",
        hint="keep `time.time()`/`datetime.now()` values out of "
        "digests and checkpoint payloads; derive payload fields from "
        "logical counters (monotonic measurements are fine)",
    ),
    Rule(
        id="REPRO-X002",
        severity=Severity.ERROR,
        summary="code reachable from a pool-worker entry point writes "
        "module-level state outside the mutation-log/shared-Array "
        "discipline",
        hint="route the write through the task result + parent commit "
        "stage, or move the state into `WorkerState`; module globals "
        "silently diverge between parent and workers",
    ),
    Rule(
        id="REPRO-X003",
        severity=Severity.ERROR,
        summary="a multiprocessing queue endpoint is consumed from "
        "more than one parent-side function",
        hint="keep each mp queue single-consumer (one `.get()` site "
        "per process side); competing consumers interleave "
        "nondeterministically",
    ),
    Rule(
        id="REPRO-G004",
        severity=Severity.WARNING,
        summary="handler for FaultInjected/DeadlineExceeded whose try "
        "body cannot reach any `fault_point`/`check_deadline` call",
        hint="either the guard call was dropped from the protected "
        "region or the handler is dead — re-wire the fault site or "
        "delete the handler",
    ),
    Rule(
        id="REPRO-G005",
        severity=Severity.ERROR,
        summary="unbounded loop on a call path from `run_flow` never "
        "reaches a deadline tick, even transitively",
        hint="call `check_deadline(\"<site>\")` (or ensure a callee "
        "does) inside the loop body; REPRO-G001 only sees the "
        "syntactic loop body, this rule follows calls",
    ),
    Rule(
        id="REPRO-U001",
        severity=Severity.WARNING,
        summary="`# repro: noqa` comment no longer suppresses anything",
        hint="delete the stale suppression (or fix the rule ID typo); "
        "stale noqa comments hide future regressions",
    ),
)


def register_dataflow_rules() -> None:
    """Idempotently add the dataflow rule records to the registry."""
    for spec in DATAFLOW_RULES:
        if spec.id not in RULES:
            RULES[spec.id] = spec

"""The dataflow driver: load, resolve, fixpoint, check, suppress.

One call to :func:`run_dataflow` runs every interprocedural pass over
a file set and returns findings that have already been through the
same ``# repro: noqa`` suppression discipline as the per-file linter
(suppressions are honored at the finding's *anchor* line — the taint
source for ``REPRO-T``, the write/handler/loop for the others).  The
run is observable under ``analyze.dataflow.*`` metrics and an
``analyze.dataflow`` span, mirroring the linter's ``analyze.*``
conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.dataflow.callgraph import build_call_index
from repro.analyze.dataflow.coverage import coverage_findings
from repro.analyze.dataflow.project import Project
from repro.analyze.dataflow.races import race_findings
from repro.analyze.dataflow.ruleset import register_dataflow_rules
from repro.analyze.dataflow.summaries import Summary
from repro.analyze.dataflow.taint import compute_summaries, taint_findings
from repro.analyze.findings import Finding, Severity
from repro.analyze.linter import iter_python_files, suppressions
from repro.obs import get_metrics, get_tracer


@dataclass(frozen=True, slots=True)
class DataflowConfig:
    """Entry-point and exemption knobs for the interprocedural passes."""

    #: bare names whose functions root the deadline-coverage pass
    flow_entries: tuple[str, ...] = ("run_flow",)
    #: bare names that run in pool worker processes (plus Process targets)
    worker_entries: tuple[str, ...] = ("worker_main",)
    #: module prefixes whose module-level state is process-local by design
    process_local_modules: tuple[str, ...] = ("repro.obs", "repro.guard")


@dataclass(slots=True)
class DataflowResult:
    """Aggregate outcome of one dataflow run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    #: path -> {(line, rule)} suppressions that absorbed a finding
    used_suppressions: dict[str, set[tuple[int, str]]] = field(
        default_factory=dict
    )
    #: files that failed to parse, as (path, message)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: final per-function summaries (exposed for tests/debugging)
    summaries: dict[str, Summary] = field(default_factory=dict)
    #: deterministic run statistics for the report document
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)


def run_dataflow(
    paths: list[str | Path],
    config: DataflowConfig | None = None,
    *,
    relative_to: str | Path | None = None,
) -> DataflowResult:
    """Run every interprocedural pass over the ``.py`` files in paths."""
    register_dataflow_rules()
    config = config or DataflowConfig()
    result = DataflowResult()
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span("analyze.dataflow"):
        files = iter_python_files(paths)
        project = Project.load(files, relative_to=relative_to)
        result.parse_errors = list(project.parse_errors)
        index = build_call_index(project)
        summaries, facts, runs = compute_summaries(project, index)
        result.summaries = summaries

        raw: list[Finding] = taint_findings(facts)
        raw.extend(
            race_findings(
                project,
                index,
                worker_entries=config.worker_entries,
                process_local_modules=config.process_local_modules,
            )
        )
        raw.extend(
            coverage_findings(
                project, index, flow_entries=config.flow_entries
            )
        )
        result.findings, result.suppressed = _apply_noqa(
            raw, project, result.used_suppressions
        )
        result.findings.sort(key=Finding.sort_key)
        result.stats = {
            "modules": len(project.modules),
            "functions": len(project.functions),
            "call_edges": index.total_edges(),
            "resolved_edges": index.resolved_edges(),
            "summary_runs": runs,
        }
        metrics.count("analyze.dataflow.modules", len(project.modules))
        metrics.count("analyze.dataflow.functions", len(project.functions))
        metrics.count("analyze.dataflow.summary_runs", runs)
        metrics.count("analyze.dataflow.findings", len(result.findings))
        metrics.count("analyze.dataflow.suppressed", result.suppressed)
    return result


def _apply_noqa(
    raw: list[Finding],
    project: Project,
    used: dict[str, set[tuple[int, str]]],
) -> tuple[list[Finding], int]:
    """Drop findings suppressed at their anchor line; record usage."""
    noqa_by_path: dict[str, dict[int, frozenset[str] | None]] = {}
    for path, module in project.modules_by_path.items():
        noqa_by_path[path] = suppressions(module.source)
    kept: list[Finding] = []
    dropped = 0
    for finding in raw:
        noqa = noqa_by_path.get(finding.path, {})
        spec = noqa.get(finding.line, frozenset())
        if spec is None or (spec and finding.rule in spec):
            dropped += 1
            used.setdefault(finding.path, set()).add(
                (finding.line, finding.rule)
            )
        else:
            kept.append(finding)
    return kept, dropped

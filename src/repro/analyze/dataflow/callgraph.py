"""Call graph construction, reachability, and flag closure.

Built once per run from the :class:`~repro.analyze.dataflow.project.
Project` and shared by every interprocedural pass.  Three edge kinds
are kept apart because the passes weigh them differently:

* **call** edges — ordinary call expressions.  Deadline coverage
  follows only these: work behind a call stays on the caller's thread
  and under its deadline stack.
* **thread** edges — ``Thread(target=f)``.  The race pass follows them
  (a thread started in a worker still runs in the worker process);
  deadline coverage does not (daemon threads are not budgeted).
* **process** edges — ``Process(target=f)``.  These are the worker
  *entry points* of the race pass and a hard boundary for everything
  else (a child process inherits neither the deadline stack nor the
  parent's mutable state).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analyze.dataflow.project import FunctionInfo, Project
from repro.analyze.rules import _call_name


@dataclass(slots=True)
class CallSite:
    """One call expression inside a function."""

    node: ast.Call
    dotted: str  # best-effort dotted spelling at the call site
    callee: str | None  # resolved project qualname, when resolution worked


@dataclass(slots=True)
class CallIndex:
    """Every function's outgoing edges, plus spawn (thread/process) edges."""

    calls: dict[str, list[CallSite]] = field(default_factory=dict)
    #: caller qualname -> [(kind, target qualname)]; kind "thread"/"process"
    spawns: dict[str, list[tuple[str, str]]] = field(default_factory=dict)

    def callees(self, qualname: str) -> list[str]:
        return sorted(
            {
                site.callee
                for site in self.calls.get(qualname, ())
                if site.callee is not None
            }
        )

    def resolved_edges(self) -> int:
        return sum(
            1
            for sites in self.calls.values()
            for site in sites
            if site.callee is not None
        )

    def total_edges(self) -> int:
        return sum(len(sites) for sites in self.calls.values())


_SPAWN_CTORS = ("Thread", "Process")


def build_call_index(project: Project) -> CallIndex:
    """Resolve every call site in every project function."""
    index = CallIndex()
    for info in project.functions_sorted():
        module = project.modules[info.module]
        sites: list[CallSite] = []
        spawns: list[tuple[str, str]] = []
        for node in _own_nodes(info):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            sites.append(
                CallSite(
                    node=node,
                    dotted=dotted,
                    callee=project.resolve_call(module, info, node),
                )
            )
            short = dotted.split(".")[-1]
            if short in _SPAWN_CTORS:
                for kw in node.keywords:
                    if kw.arg != "target":
                        continue
                    target = project.resolve_ref(module, info, kw.value)
                    if target is not None:
                        kind = "thread" if short == "Thread" else "process"
                        spawns.append((kind, target))
        index.calls[info.qualname] = sites
        if spawns:
            index.spawns[info.qualname] = spawns
    return index


def _own_nodes(info: FunctionInfo):
    """Walk a function's nodes, pruning nested function definitions.

    Nested defs are indexed as functions of their own; attributing
    their calls to the enclosing function would double-count edges and
    wrongly extend the caller's reachability.
    """
    stack = list(ast.iter_child_nodes(info.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def reachable(
    index: CallIndex,
    entries: set[str],
    *,
    follow_threads: bool = False,
    follow_processes: bool = False,
) -> set[str]:
    """Transitive closure of ``entries`` over the chosen edge kinds."""
    seen = set(entries)
    work = sorted(entries)
    while work:
        current = work.pop()
        nexts = list(index.callees(current))
        for kind, target in index.spawns.get(current, ()):
            if (kind == "thread" and follow_threads) or (
                kind == "process" and follow_processes
            ):
                nexts.append(target)
        for target in nexts:
            if target not in seen:
                seen.add(target)
                work.append(target)
    return seen


def propagate_flag(index: CallIndex, direct: dict[str, bool]) -> dict[str, bool]:
    """Or-closure of a per-function boolean over **call** edges.

    ``out[f]`` is True when ``direct[f]`` is True or any transitively
    called project function's is.  Deterministic worklist fixpoint.
    """
    out = dict(direct)
    # reverse edges: callee -> callers
    callers: dict[str, list[str]] = {}
    for caller, sites in index.calls.items():
        for site in sites:
            if site.callee is not None:
                callers.setdefault(site.callee, []).append(caller)
    work = sorted(q for q, v in out.items() if v)
    while work:
        current = work.pop()
        for caller in sorted(set(callers.get(current, ()))):
            if not out.get(caller, False):
                out[caller] = True
                work.append(caller)
    return out

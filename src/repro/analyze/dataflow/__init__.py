"""Interprocedural determinism & concurrency analysis (``REPRO-T/X/G/U``).

Layered on the per-file linter: a module-resolved project model
(:mod:`.project`), a call graph with thread/process spawn edges
(:mod:`.callgraph`), summary-based taint fixpoint (:mod:`.summaries`,
:mod:`.taint`), cross-process race checks (:mod:`.races`), and guard
coverage checks (:mod:`.coverage`), driven by :func:`run_dataflow`
(:mod:`.engine`).  See DESIGN.md "Interprocedural analysis".
"""

from repro.analyze.dataflow.callgraph import (
    CallIndex,
    build_call_index,
    propagate_flag,
    reachable,
)
from repro.analyze.dataflow.engine import (
    DataflowConfig,
    DataflowResult,
    run_dataflow,
)
from repro.analyze.dataflow.project import Project
from repro.analyze.dataflow.ruleset import (
    DATAFLOW_RULES,
    register_dataflow_rules,
)
from repro.analyze.dataflow.summaries import Summary
from repro.analyze.dataflow.taint import compute_summaries, taint_findings

register_dataflow_rules()

__all__ = [
    "CallIndex",
    "DATAFLOW_RULES",
    "DataflowConfig",
    "DataflowResult",
    "Project",
    "Summary",
    "build_call_index",
    "compute_summaries",
    "propagate_flag",
    "reachable",
    "register_dataflow_rules",
    "run_dataflow",
    "taint_findings",
]

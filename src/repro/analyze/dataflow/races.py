"""Cross-process race checks for the ``repro.par`` pool (REPRO-X00x).

The pool's correctness argument (PR 6) is a *discipline*, not a lock:
workers replicate parent state by replaying an append-only mutation
log, report results through one queue, and publish liveness through a
shared ``Array`` slot.  Anything else that crosses the process
boundary is a silent divergence.  Two interprocedural checks enforce
the discipline:

* **REPRO-X002** — from every worker entry point (``Process(target=
  ...)`` spawn targets plus configured names), following call *and*
  thread edges, no reachable function may write module-level state:
  ``global``-declared rebinds, mutator-method calls, or subscript/
  attribute stores on module variables.  Workers that cache through
  module globals diverge from the parent (and from ``spawn`` siblings)
  invisibly.  Modules that are process-local by design (``repro.obs``,
  ``repro.guard`` context registries) are exempt.

* **REPRO-X003** — each multiprocessing queue endpoint must have a
  single consumer function per process side.  Two functions competing
  on one ``.get()`` endpoint interleave nondeterministically, which is
  exactly the commit-order hazard the single ``_collect`` stage exists
  to prevent.
"""

from __future__ import annotations

import ast

from repro.analyze.dataflow.callgraph import CallIndex, _own_nodes, reachable
from repro.analyze.dataflow.project import FunctionInfo, Project
from repro.analyze.dataflow.ruleset import register_dataflow_rules
from repro.analyze.findings import Finding
from repro.analyze.rules import RULES, _call_name

#: method calls that mutate their receiver in place
_WRITE_METHODS = frozenset(
    (
        "append", "add", "extend", "insert", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort",
        "reverse", "appendleft", "extendleft",
    )
)

_QUEUE_CTORS = frozenset(("Queue", "SimpleQueue", "JoinableQueue"))


def worker_entry_points(
    project: Project, index: CallIndex, names: tuple[str, ...]
) -> set[str]:
    """Qualnames that begin executing in a pool worker process."""
    entries: set[str] = set()
    for name in names:
        entries.update(project.functions_named(name))
    for spawns in index.spawns.values():
        for kind, target in spawns:
            if kind == "process":
                entries.add(target)
    return entries


def race_findings(
    project: Project,
    index: CallIndex,
    *,
    worker_entries: tuple[str, ...] = ("worker_main",),
    process_local_modules: tuple[str, ...] = ("repro.obs", "repro.guard"),
) -> list[Finding]:
    register_dataflow_rules()
    findings = _module_state_findings(
        project, index, worker_entries, process_local_modules
    )
    findings.extend(_queue_consumer_findings(project, index))
    findings.sort(key=Finding.sort_key)
    return findings


# ----------------------------------------------------------- REPRO-X002


def _module_state_findings(
    project: Project,
    index: CallIndex,
    worker_entries: tuple[str, ...],
    process_local_modules: tuple[str, ...],
) -> list[Finding]:
    entries = worker_entry_points(project, index, worker_entries)
    worker_side = reachable(
        index, entries, follow_threads=True, follow_processes=True
    )
    spec = RULES["REPRO-X002"]
    findings: list[Finding] = []
    for qual in sorted(worker_side):
        info = project.functions.get(qual)
        if info is None:
            continue
        module = project.modules[info.module]
        if any(
            module.name == prefix or module.name.startswith(prefix + ".")
            for prefix in process_local_modules
        ):
            continue
        for line, description in _module_writes(info, module.module_vars):
            findings.append(
                Finding(
                    rule=spec.id,
                    severity=spec.severity_for(info.path),
                    path=info.path,
                    line=line,
                    message=(
                        f"{description} in `{qual.rsplit('.', 1)[-1]}()`, "
                        "which is reachable from worker entry point(s) "
                        f"{', '.join(sorted(e.rsplit('.', 1)[-1] for e in entries))}"
                    ),
                    hint=spec.hint,
                )
            )
    return findings


def _module_writes(
    info: FunctionInfo, module_vars: set[str]
) -> list[tuple[int, str]]:
    """(line, description) for each module-level write in one function."""
    declared_global: set[str] = set()
    shadowed: set[str] = set()
    args = info.node.args
    for a in (
        args.posonlyargs
        + args.args
        + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        shadowed.add(a.arg)
    nodes = list(_own_nodes(info))
    for node in nodes:
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            shadowed.add(node.id)
    shadowed -= declared_global

    writes: list[tuple[int, str]] = []

    def is_module_ref(expr: ast.expr) -> str | None:
        if not isinstance(expr, ast.Name):
            return None
        name = expr.id
        if name in declared_global:
            return name
        if name in module_vars and name not in shadowed:
            return name
        return None

    for node in nodes:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    writes.append(
                        (
                            node.lineno,
                            f"rebinds module global `{target.id}`",
                        )
                    )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = is_module_ref(target.value)
                    if name is not None:
                        writes.append(
                            (
                                node.lineno,
                                f"stores into module-level `{name}`",
                            )
                        )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _WRITE_METHODS:
                name = is_module_ref(node.func.value)
                if name is not None:
                    writes.append(
                        (
                            node.lineno,
                            f"mutates module-level `{name}` via "
                            f"`.{node.func.attr}()`",
                        )
                    )
    return sorted(set(writes))


# ----------------------------------------------------------- REPRO-X003


def _queue_consumer_findings(
    project: Project, index: CallIndex
) -> list[Finding]:
    """Each mp queue endpoint must be drained by one function only."""
    # queue endpoints: self-attribute or module-level names bound to a
    # Queue constructor anywhere in the project
    endpoints: set[str] = set()
    for info in project.functions_sorted():
        for node in _own_nodes(info):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Call)
                and _call_name(node.value).split(".")[-1] in _QUEUE_CTORS
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ):
                    endpoints.add(target.attr)
                elif isinstance(target, ast.Name):
                    endpoints.add(target.id)
    if not endpoints:
        return []

    # consumers: functions calling `.get(...)` on an endpoint name
    consumers: dict[str, dict[str, int]] = {}  # endpoint -> qual -> line
    for info in project.functions_sorted():
        for node in _own_nodes(info):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
            ):
                continue
            receiver = node.func.value
            name = None
            if isinstance(receiver, ast.Attribute):
                name = receiver.attr
            elif isinstance(receiver, ast.Name):
                name = receiver.id
            if name in endpoints:
                sites = consumers.setdefault(name, {})
                if info.qualname not in sites:
                    sites[info.qualname] = node.lineno

    spec = RULES["REPRO-X003"]
    findings: list[Finding] = []
    for endpoint in sorted(consumers):
        sites = consumers[endpoint]
        if len(sites) < 2:
            continue
        names = sorted(sites)
        for qual in names:
            info = project.functions[qual]
            others = ", ".join(
                f"`{q.rsplit('.', 1)[-1]}()`" for q in names if q != qual
            )
            findings.append(
                Finding(
                    rule=spec.id,
                    severity=spec.severity_for(info.path),
                    path=info.path,
                    line=sites[qual],
                    message=(
                        f"queue `{endpoint}` is also consumed by {others}; "
                        "competing `.get()` sites interleave "
                        "nondeterministically"
                    ),
                    hint=spec.hint,
                )
            )
    findings.sort(key=Finding.sort_key)
    return findings

"""Module-resolved project model: files -> modules -> functions -> calls.

The interprocedural passes need a *whole-program* view that the
per-file linter deliberately avoids: which function a call lands in,
which functions a worker process can reach, whether a loop's callee
eventually polls the deadline stack.  :class:`Project` parses every
file once, assigns dotted module names (``src/repro/par/worker.py`` ->
``repro.par.worker``), indexes functions by qualified name
(``repro.groute.router.GlobalRouter.route_all``), and resolves call
expressions back to those qualified names.

Resolution is *best-effort and unsound by design* (documented in
DESIGN.md): it follows imports (including ``as`` aliases and
function-level imports), local and nested functions, ``self.``/``cls.``
method calls within the defining class, and — for attribute calls like
``router.route_all()`` — a light local type inference: constructor
assignments (``router = GlobalRouter(design)``), parameter/variable
annotations (including string annotations and ``X | None`` unions),
``self.attr`` assignments inside a class, and cross-object attribute
stores whose both sides have known types (``router.executor = self``).
A unique-bare-name heuristic catches the remainder: when exactly one
project function has that name (and the name is not generic), the call
resolves to it.  Ambiguous or foreign (stdlib) calls stay unresolved
and the dataflow passes treat them conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.rules import _call_name

#: an inferred nominal type: (module name, class name)
ClassKey = tuple[str, str]

#: bare method names too generic for the unique-name heuristic — these
#: collide with stdlib container/queue/thread APIs, so a lone project
#: function with one of these names must not capture every `obj.get()`
GENERIC_NAMES = frozenset(
    (
        "get", "put", "set", "add", "pop", "append", "extend", "update",
        "insert", "remove", "clear", "copy", "sort", "reverse", "index",
        "count", "join", "split", "start", "close", "open", "read",
        "write", "run", "next", "send", "keys", "values", "items",
        "wait", "release", "acquire", "is_set", "empty", "full",
        "format", "strip", "encode", "decode", "render",
    )
)


@dataclass(slots=True)
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str  # "<module>.<Class>.<name>" or "<module>.<name>"
    module: str
    path: str  # posix report path of the defining file
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  # enclosing class name, for methods
    parent: str | None = None  # enclosing function qualname, for nested defs
    #: local name -> qualname of functions nested directly inside
    nested: dict[str, str] = field(default_factory=dict)

    @property
    def bare_name(self) -> str:
        return self.node.name


@dataclass(slots=True)
class ModuleInfo:
    """One parsed source module."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: local name -> dotted import target ("parworker" -> "repro.par.worker")
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level callable name -> qualname (functions only)
    top_functions: dict[str, str] = field(default_factory=dict)
    #: class name -> {method name -> qualname}
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: names bound by module-level assignments (worker-divergence state)
    module_vars: set[str] = field(default_factory=set)


def _module_name(file_path: Path, roots: list[Path]) -> str:
    """Dotted module name for ``file_path`` relative to the scan roots.

    A ``src`` component marks a layout root; otherwise the innermost
    scan root anchors the name.  ``pkg/__init__.py`` names ``pkg``.
    """
    resolved = file_path.resolve()
    rel: Path | None = None
    for root in sorted(roots, key=lambda r: -len(str(r))):
        try:
            rel = resolved.relative_to(root.resolve())
            break
        except ValueError:
            continue
    if rel is None:
        rel = Path(file_path.name)
    parts = list(rel.with_suffix("").parts)
    while "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else rel.stem


def _own_function_nodes(func: ast.AST):
    """Walk a function's own nodes, pruning nested function bodies."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _collect_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    """Local binding -> dotted target, for every import in the module.

    Function-level imports are hoisted to module granularity — an
    overapproximation that keeps resolution simple and errs toward
    resolving more calls, never fewer.
    """
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                out[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = module_name.split(".")
                # level 1 = current package, 2 = its parent, ...
                anchor = anchor[: len(anchor) - node.level]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return out


class Project:
    """Whole-program index: modules, functions, and call resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_path: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._by_bare: dict[str, list[str]] = {}
        self.parse_errors: list[tuple[str, str]] = []
        #: class name -> [(module, class)] across the whole project
        self._classes_by_name: dict[str, list[ClassKey]] = {}
        #: (module, class) -> {attr name -> inferred (module, class)}
        self.attr_types: dict[ClassKey, dict[str, ClassKey]] = {}
        #: function qualname -> {local name -> inferred (module, class)}
        self._local_types: dict[str, dict[str, ClassKey]] = {}

    # ------------------------------------------------------------- loading

    @classmethod
    def load(
        cls,
        files: list[Path],
        *,
        relative_to: str | Path | None = None,
    ) -> "Project":
        project = cls()
        roots = [Path(relative_to)] if relative_to is not None else [Path(".")]
        for file_path in sorted(files):
            report_path = file_path
            if relative_to is not None:
                try:
                    report_path = file_path.resolve().relative_to(
                        Path(relative_to).resolve()
                    )
                except ValueError:
                    report_path = file_path
            posix = Path(report_path).as_posix()
            try:
                source = file_path.read_text()
                tree = ast.parse(source, filename=str(file_path))
            except (OSError, SyntaxError) as exc:
                project.parse_errors.append((posix, str(exc)))
                continue
            name = _module_name(file_path, roots)
            module = ModuleInfo(
                name=name, path=posix, source=source, tree=tree
            )
            module.imports = _collect_imports(tree, name)
            project._index_module(module)
            project.modules[name] = module
            project.modules_by_path[posix] = module
        project._infer_types()
        return project

    def _index_module(self, module: ModuleInfo) -> None:
        def register(info: FunctionInfo) -> None:
            self.functions[info.qualname] = info
            self._by_bare.setdefault(info.bare_name, []).append(info.qualname)

        def walk_body(
            body: list[ast.stmt],
            prefix: str,
            cls: str | None,
            parent: FunctionInfo | None,
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{stmt.name}"
                    info = FunctionInfo(
                        qualname=qual,
                        module=module.name,
                        path=module.path,
                        node=stmt,
                        cls=cls,
                        parent=parent.qualname if parent else None,
                    )
                    register(info)
                    if parent is not None:
                        parent.nested[stmt.name] = qual
                    if cls is None and parent is None:
                        module.top_functions[stmt.name] = qual
                    if cls is not None and parent is None:
                        module.classes.setdefault(cls, {})[stmt.name] = qual
                    walk_body(stmt.body, qual, None, info)
                elif isinstance(stmt, ast.ClassDef):
                    if parent is None and cls is None:
                        module.classes.setdefault(stmt.name, {})
                        self._classes_by_name.setdefault(
                            stmt.name, []
                        ).append((module.name, stmt.name))
                        walk_body(
                            stmt.body, f"{prefix}.{stmt.name}", stmt.name, None
                        )
                elif parent is None and cls is None:
                    targets: list[ast.expr] = []
                    if isinstance(stmt, ast.Assign):
                        targets = stmt.targets
                    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                        targets = [stmt.target]
                    for target in targets:
                        for sub in ast.walk(target):
                            if isinstance(sub, ast.Name):
                                module.module_vars.add(sub.id)

        walk_body(module.tree.body, module.name, None, None)

    # ------------------------------------------------------ type inference

    def resolve_class(self, module: ModuleInfo, dotted: str) -> ClassKey | None:
        """Resolve a (possibly dotted) class reference to its defining
        module, chasing package re-exports."""
        if not dotted:
            return None
        parts = dotted.split(".")
        if len(parts) == 1:
            name = parts[0]
            if name in module.classes:
                return (module.name, name)
            target = module.imports.get(name)
            if target is not None:
                return self._class_from_full(target)
            keys = self._classes_by_name.get(name, ())
            if len(keys) == 1:
                return keys[0]
            return None
        head, rest = parts[0], ".".join(parts[1:])
        target = module.imports.get(head)
        full = f"{target}.{rest}" if target is not None else dotted
        return self._class_from_full(full)

    def _class_from_full(self, full: str, _depth: int = 0) -> ClassKey | None:
        """Match ``pkg.mod.Class`` against known classes, chasing the
        ``from .mod import Class`` re-export chain through ``__init__``s."""
        if _depth > 8 or "." not in full:
            return None
        mod_name, cls_name = full.rsplit(".", 1)
        mod = self.modules.get(mod_name)
        if mod is None:
            return None
        if cls_name in mod.classes:
            return (mod_name, cls_name)
        target = mod.imports.get(cls_name)
        if target is not None and target != full:
            return self._class_from_full(target, _depth + 1)
        return None

    def _annotation_class(
        self, module: ModuleInfo, ann: ast.expr | None
    ) -> ClassKey | None:
        """Class named by an annotation: handles strings, ``Optional[X]``
        subscripts, and ``X | None`` unions."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Name):
            return self.resolve_class(module, ann.id)
        if isinstance(ann, ast.Attribute):
            parts: list[str] = []
            node: ast.expr = ann
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name):
                parts.append(node.id)
                return self.resolve_class(module, ".".join(reversed(parts)))
            return None
        if isinstance(ann, ast.Subscript):
            base = ann.value
            if isinstance(base, ast.Name) and base.id == "Optional":
                return self._annotation_class(module, ann.slice)
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self._annotation_class(
                module, ann.left
            ) or self._annotation_class(module, ann.right)
        return None

    def _value_class(
        self,
        module: ModuleInfo,
        locals_map: dict[str, ClassKey],
        value: ast.expr,
    ) -> ClassKey | None:
        """Type of an assigned value: a constructor call or a typed name."""
        if isinstance(value, ast.Call):
            return self.resolve_class(module, _call_name(value))
        if isinstance(value, ast.Name):
            return locals_map.get(value.id)
        return None

    def _infer_types(self) -> None:
        """Populate per-function local types and per-class attr types.

        Pass 1 seeds locals from parameter annotations, ``self``, and
        constructor assignments, and collects ``self.attr`` types.
        Pass 2 handles cross-object stores (``router.executor = self``)
        once every function's locals are known.  First writer (in
        sorted function order) wins, which keeps the maps deterministic.
        """
        own_stmts: dict[str, list[ast.stmt]] = {}
        for info in self.functions_sorted():
            module = self.modules[info.module]
            locals_map: dict[str, ClassKey] = {}
            if info.cls is not None:
                locals_map["self"] = (info.module, info.cls)
            args = info.node.args
            for a in args.posonlyargs + args.args + args.kwonlyargs:
                key = self._annotation_class(module, a.annotation)
                if key is not None:
                    locals_map[a.arg] = key
            stmts = [
                n
                for n in _own_function_nodes(info.node)
                if isinstance(n, (ast.Assign, ast.AnnAssign))
            ]
            own_stmts[info.qualname] = stmts
            for stmt in stmts:
                if isinstance(stmt, ast.AnnAssign):
                    key = self._annotation_class(module, stmt.annotation)
                    if key is None and stmt.value is not None:
                        key = self._value_class(module, locals_map, stmt.value)
                    targets = [stmt.target]
                else:
                    key = self._value_class(module, locals_map, stmt.value)
                    targets = list(stmt.targets)
                if key is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        locals_map.setdefault(target.id, key)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and info.cls is not None
                    ):
                        self.attr_types.setdefault(
                            (info.module, info.cls), {}
                        ).setdefault(target.attr, key)
            self._local_types[info.qualname] = locals_map
        # pass 2: `obj.attr = value` where both obj and value are typed
        for info in self.functions_sorted():
            module = self.modules[info.module]
            locals_map = self._local_types[info.qualname]
            for stmt in own_stmts[info.qualname]:
                if not isinstance(stmt, ast.Assign):
                    continue
                key = self._value_class(module, locals_map, stmt.value)
                if key is None:
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id != "self"
                        and target.value.id in locals_map
                    ):
                        self.attr_types.setdefault(
                            locals_map[target.value.id], {}
                        ).setdefault(target.attr, key)

    def _method_of(self, key: ClassKey, name: str) -> str | None:
        mod = self.modules.get(key[0])
        if mod is None:
            return None
        return mod.classes.get(key[1], {}).get(name)

    def _resolve_typed(
        self, caller: FunctionInfo | None, parts: list[str]
    ) -> str | None:
        """Resolve ``obj.attr...method()`` through inferred local types."""
        if caller is None or len(parts) < 2:
            return None
        locals_map = self._local_types.get(caller.qualname, {})
        key = locals_map.get(parts[0])
        for attr in parts[1:-1]:
            if key is None:
                return None
            key = self.attr_types.get(key, {}).get(attr)
        if key is None:
            return None
        return self._method_of(key, parts[-1])

    # ---------------------------------------------------------- resolution

    def resolve_dotted(self, module: ModuleInfo, dotted: str) -> str | None:
        """Resolve an import-rooted dotted name to a function qualname."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._lookup_qualified(full)

    def _lookup_qualified(self, full: str) -> str | None:
        """Match a fully dotted path against known functions/methods."""
        if full in self.functions:
            return full
        # "<module>.<Class>" as a call means the constructor.
        parts = full.rsplit(".", 1)
        if len(parts) == 2:
            mod = self.modules.get(parts[0])
            if mod is not None and parts[1] in mod.classes:
                init = mod.classes[parts[1]].get("__init__")
                return init
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        caller: FunctionInfo | None,
        call: ast.Call,
    ) -> str | None:
        """Qualified name of the function this call lands in, if known."""
        return self.resolve_path(module, caller, _call_name(call))

    def resolve_ref(
        self,
        module: ModuleInfo,
        caller: FunctionInfo | None,
        expr: ast.expr,
    ) -> str | None:
        """Resolve a bare function *reference* (e.g. a ``target=`` arg)."""
        parts: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        return self.resolve_path(module, caller, ".".join(reversed(parts)))

    def resolve_path(
        self,
        module: ModuleInfo,
        caller: FunctionInfo | None,
        dotted: str,
    ) -> str | None:
        """Shared resolution over a dotted name (see class docstring)."""
        if not dotted:
            return None
        parts = dotted.split(".")
        if len(parts) == 1:
            name = parts[0]
            # nested function in the enclosing chain
            scope = caller
            while scope is not None:
                if name in scope.nested:
                    return scope.nested[name]
                scope = (
                    self.functions.get(scope.parent) if scope.parent else None
                )
            # sibling method called bare inside a class body? (rare) — skip
            if name in module.top_functions:
                return module.top_functions[name]
            if name in module.classes:
                return module.classes[name].get("__init__")
            resolved = self.resolve_dotted(module, name)
            if resolved is not None:
                return resolved
            return self._unique_bare(name)
        if parts[0] in ("self", "cls") and caller is not None and caller.cls:
            methods = module.classes.get(caller.cls, {})
            if len(parts) == 2 and parts[1] in methods:
                return methods[parts[1]]
        resolved = self._resolve_typed(caller, parts)
        if resolved is not None:
            return resolved
        resolved = self.resolve_dotted(module, dotted)
        if resolved is not None:
            return resolved
        return self._unique_bare(parts[-1])

    def _unique_bare(self, name: str) -> str | None:
        """The one project function with this bare name, if unambiguous."""
        if name in GENERIC_NAMES or name.startswith("__"):
            return None
        candidates = self._by_bare.get(name, ())
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ------------------------------------------------------------ queries

    def functions_sorted(self) -> list[FunctionInfo]:
        return [self.functions[q] for q in sorted(self.functions)]

    def functions_named(self, bare: str) -> list[str]:
        """Every qualname whose final component is ``bare`` (sorted)."""
        return sorted(self._by_bare.get(bare, ()))
